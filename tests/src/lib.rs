//! This crate exists only to host the cross-crate integration tests in
//! `tests/tests/`; it exports nothing.
