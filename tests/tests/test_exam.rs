//! End-to-end exam scenario tests (experiment E10): the scripted trainee makes
//! progress through the licensing course and the scoring pipeline reacts.

use crane_sim::{CraneSimulator, OperatorKind, SimulatorConfig};

fn config(operator: OperatorKind) -> SimulatorConfig {
    SimulatorConfig {
        operator,
        exam_frames: 0,
        display_width: 64,
        display_height: 48,
        ..SimulatorConfig::default()
    }
}

#[test]
fn exam_operator_drives_the_crane_to_the_testing_ground() {
    let mut simulator = CraneSimulator::new(config(OperatorKind::Exam)).unwrap();
    let start = simulator.snapshot().crane.chassis_position;
    // Up to ~100 simulated seconds at the 16 fps executive rate.
    let mut reached_lifting = false;
    for _ in 0..16 {
        simulator.run_frames(100).unwrap();
        let snap = simulator.snapshot();
        if snap.scenario.phase != "Driving" {
            reached_lifting = true;
            break;
        }
    }
    let snap = simulator.snapshot();
    let travelled = snap.crane.chassis_position.distance(start);
    assert!(travelled > 40.0, "crane only travelled {travelled:.1} m");
    assert!(
        reached_lifting || snap.crane.chassis_position.z > 30.0,
        "crane never approached the testing ground: {:?} (phase {})",
        snap.crane.chassis_position,
        snap.scenario.phase
    );
    // The instructor's status window tracks the drive.
    assert!(snap.status_window.boom_raise_deg > 0.0);
    assert_eq!(snap.status_window.score, snap.scenario.score);
}

#[test]
fn idle_operator_never_loses_points_and_stays_near_the_start() {
    let mut simulator = CraneSimulator::new(config(OperatorKind::Idle)).unwrap();
    simulator.run_frames(300).unwrap();
    let snap = simulator.snapshot();
    assert_eq!(snap.scenario.score, 100.0);
    assert_eq!(snap.scenario.bar_hits, 0);
    assert_eq!(snap.scenario.phase, "Driving");
    // With nobody at the controls the crane may creep on the rolling terrain
    // (there is no parking brake in the model) but it never gets anywhere near
    // the testing ground a hundred metres away.
    let start = simulator.course().start_position;
    assert!(snap.crane.chassis_position.distance(start) < 60.0);
}

#[test]
fn reckless_operator_eventually_triggers_alarms_and_keeps_score_bounded() {
    let mut simulator = CraneSimulator::new(config(OperatorKind::Reckless)).unwrap();
    simulator.run_frames(600).unwrap();
    let snap = simulator.snapshot();
    assert!(snap.scenario.score >= 0.0 && snap.scenario.score <= 100.0);
    assert!(
        !snap.alarm_events.is_empty(),
        "a reckless operator should have tripped at least one alarm"
    );
    // The audio module keeps producing output throughout.
    assert!(snap.audio_rms > 0.0);
}
