//! Session recycling must be invisible: a simulator reset with
//! [`CraneSimulator::reset_for_session`] has to replay a freshly built one
//! bit for bit — telemetry trace, LAN and fault counters, frame-sync
//! barriers, scores, everything the per-frame digest captures.

use cod_net::{FaultPlan, Micros};
use crane_sim::{CraneSimulator, FrameDigest, OperatorKind, SimulatorConfig, TelemetryTrace};

fn config(operator: OperatorKind, seed: u64) -> SimulatorConfig {
    SimulatorConfig {
        operator,
        display_width: 64,
        display_height: 48,
        exam_frames: 0,
        seed,
        ..SimulatorConfig::default()
    }
}

/// Runs `frames` frames, recording the bit-exact per-frame digest trace.
fn trace_frames(sim: &mut CraneSimulator, frames: usize) -> TelemetryTrace {
    let mut trace = TelemetryTrace::new();
    for _ in 0..frames {
        let record = sim.step_frame().expect("frame runs");
        let snapshot = sim.snapshot();
        let lan = sim.cluster().lan_stats();
        trace.record(FrameDigest::capture(record.frame, record.now, &snapshot, &lan));
    }
    trace
}

#[test]
fn reset_replays_a_fresh_build_bit_for_bit() {
    let seed = 0xA11CE;
    // Reference: a fresh simulator running 40 frames.
    let mut fresh = CraneSimulator::new(config(OperatorKind::Exam, seed)).unwrap();
    let fresh_trace = trace_frames(&mut fresh, 40);

    // Candidate: same build, a session of different length runs first, then
    // the rack is recycled for the reference seed.
    let mut recycled = CraneSimulator::new(config(OperatorKind::Exam, 0xDEAD)).unwrap();
    trace_frames(&mut recycled, 73);
    recycled.reset_for_session(seed).unwrap();
    let recycled_trace = trace_frames(&mut recycled, 40);

    assert_eq!(
        fresh_trace.first_divergence(&recycled_trace),
        None,
        "recycled session diverged from the fresh build"
    );
    assert_eq!(fresh_trace.fingerprint(), recycled_trace.fingerprint());
    assert_eq!(fresh.report(), recycled.report());
}

#[test]
fn reset_clears_faulty_session_state() {
    let seed = 7;
    let mut fresh = CraneSimulator::new(config(OperatorKind::Idle, seed)).unwrap();
    let fresh_trace = trace_frames(&mut fresh, 30);

    // First session runs under heavy injected faults; the plan and its
    // counters must not leak into the next session.
    let mut recycled = CraneSimulator::new(config(OperatorKind::Idle, 3)).unwrap();
    recycled.set_fault_plan(FaultPlan::seeded(11).with_drop_probability(0.2));
    trace_frames(&mut recycled, 50);
    assert!(recycled.cluster().lan_stats().fault_drops > 0, "faults must have fired");

    recycled.reset_for_session(seed).unwrap();
    assert_eq!(recycled.cluster().lan_stats(), Default::default(), "LAN counters leaked");
    let recycled_trace = trace_frames(&mut recycled, 30);
    assert_eq!(fresh_trace.first_divergence(&recycled_trace), None);
}

#[test]
fn reset_restores_frame_sync_barriers_and_telemetry() {
    let mut sim = CraneSimulator::new(config(OperatorKind::Idle, 21)).unwrap();
    sim.run_frames(25).unwrap();
    let before = sim.snapshot();
    assert!(before.channel_frames_swapped.iter().any(|s| *s > 0), "lock-step never progressed");

    sim.reset_for_session(21).unwrap();
    let after = sim.snapshot();
    assert_eq!(after, Default::default(), "telemetry leaked across the reset");
    assert_eq!(sim.cluster().metrics().frames_run, 0, "executive metrics leaked");

    // The barrier restarts from frame zero and runs again.
    sim.run_frames(25).unwrap();
    let resumed = sim.snapshot();
    assert_eq!(resumed.channel_frames_swapped, before.channel_frames_swapped);
}

#[test]
fn reset_with_a_new_seed_stays_deterministic() {
    // The session seed feeds the LAN jitter and vibration models; whatever it
    // changes, a reset to the same seed must replay the exact same session.
    let mut sim = CraneSimulator::new(config(OperatorKind::Exam, 1)).unwrap();
    trace_frames(&mut sim, 30);
    sim.reset_for_session(2).unwrap();
    let second = trace_frames(&mut sim, 30);
    sim.reset_for_session(2).unwrap();
    let third = trace_frames(&mut sim, 30);
    assert_eq!(second.first_divergence(&third), None, "same seed must replay exactly");
}

#[test]
fn fault_plans_installed_after_reset_replay_exactly() {
    let run = |warm: bool| {
        let mut sim = CraneSimulator::new(config(OperatorKind::Idle, 5)).unwrap();
        if warm {
            sim.set_fault_plan(FaultPlan::seeded(99).with_drop_probability(0.5));
            trace_frames(&mut sim, 20);
            sim.reset_for_session(5).unwrap();
        }
        sim.set_fault_plan(FaultPlan::seeded(13).with_drop_probability(0.05));
        trace_frames(&mut sim, 40)
    };
    let fresh = run(false);
    let recycled = run(true);
    assert_eq!(fresh.first_divergence(&recycled), None);
    assert_eq!(fresh.fingerprint(), recycled.fingerprint());
}

#[test]
fn reports_of_identical_sessions_are_equal_even_with_micros_now() {
    // `Micros` time rewinds to the session epoch on reset; frame records and
    // reports must agree exactly with a fresh build.
    let mut fresh = CraneSimulator::new(config(OperatorKind::Reckless, 31)).unwrap();
    let fresh_first = fresh.step_frame().unwrap();

    let mut recycled = CraneSimulator::new(config(OperatorKind::Reckless, 31)).unwrap();
    recycled.run_frames(11).unwrap();
    recycled.reset_for_session(31).unwrap();
    let recycled_first = recycled.step_frame().unwrap();

    assert_eq!(fresh_first, recycled_first, "first frame after reset differs");
    assert_eq!(fresh_first.now, recycled_first.now, "session epoch mismatch");
    assert!(fresh_first.now > Micros::ZERO);
}
