//! Self-audit of the determinism linter, two ways.
//!
//! 1. **Fixture tree** — a synthetic crate containing *exactly one*
//!    violation per rule (R1..R6), each wrapped in decoys that must NOT
//!    fire: the same banned text inside string literals, comments and a
//!    waived line. Proves every rule is detectable and reported exactly
//!    once with the right id.
//! 2. **The workspace itself** — parses the checked-in `audit.toml` and
//!    audits the real tree, asserting it is audit-clean. This makes
//!    `cargo test` a standing witness of the gate CI enforces with
//!    `cod_audit --quick`.

use std::path::Path;

use cod_audit::{audit_tree, AuditConfig, Rule};

/// One fixture file per rule. Each source embeds decoys (strings, comments,
/// waived lines) that the lexer must keep inert, leaving exactly one hard
/// violation at a known line.
const FIXTURES: &[(&str, Rule, &str)] = &[
    (
        "src/clock.rs",
        Rule::WallClock,
        r#"//! Decoy: Instant::now() and SystemTime in a doc comment.
pub fn banned() -> std::time::Instant {
    let s = "Instant::now() inside a string literal";
    let _ = s;
    let w = std::time::SystemTime::UNIX_EPOCH; // audit:allow(wall-clock): fixture waiver.
    let _ = w;
    panic!()
}
"#,
    ),
    (
        "src/map.rs",
        Rule::UnorderedCollections,
        r#"/* Decoy: HashMap in a block comment
   /* nested: HashSet */
   still commented */
pub fn banned(m: &std::collections::HashMap<u32, u32>) -> usize {
    let raw = r#banned_name; // A raw identifier, not a raw string.
    m.len() + raw
}
"#,
    ),
    (
        "src/rng.rs",
        Rule::AmbientRandomness,
        r##"pub fn banned() {
    let decoy = r#"thread_rng() from_entropy inside a raw string "fence" "#;
    let _ = decoy;
    let _rng = rand::thread_rng();
}
"##,
    ),
    (
        "src/raw.rs",
        Rule::UndocumentedUnsafe,
        r#"pub fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees p is valid; this one must pass.
    let fine = unsafe { *p };
    let banned = unsafe { *p };
    fine + banned
}
"#,
    ),
    (
        "src/spawn.rs",
        Rule::ThreadSpawn,
        r#"pub fn banned() {
    let not_a_spawn = "std::thread::spawn in a string";
    let _ = not_a_spawn; // and thread::spawn in a comment
    std::thread::spawn(|| {}).join().unwrap();
}
"#,
    ),
    (
        "src/report.rs",
        Rule::AmbientEnv,
        r#"pub fn banned() -> String {
    let decoy = 'e'; // A char literal, then std::env in this comment only.
    let _ = decoy;
    std::env::var("HOME").unwrap_or_default()
}
"#,
    ),
];

/// The line (1-based) of each fixture's single hard violation.
fn expected_line(rule: Rule) -> usize {
    match rule {
        Rule::WallClock => 2,
        Rule::UnorderedCollections => 4,
        Rule::AmbientRandomness => 4,
        Rule::UndocumentedUnsafe => 4,
        Rule::ThreadSpawn => 4,
        Rule::AmbientEnv => 4,
    }
}

fn write_fixture_tree(root: &Path) {
    std::fs::create_dir_all(root.join("src")).expect("mkdir fixture src");
    for (path, _, source) in FIXTURES {
        std::fs::write(root.join(path), source).expect("write fixture");
    }
}

fn fixture_config() -> AuditConfig {
    AuditConfig::parse("roots = [\"src\"]\n[rule.ambient-env]\npaths = [\"src/report.rs\"]\n")
        .expect("fixture config parses")
}

#[test]
fn every_rule_fires_exactly_once_on_the_fixture_tree() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("audit_fixture");
    write_fixture_tree(&root);
    let report = audit_tree(&root, &fixture_config()).expect("fixture audit runs");

    assert_eq!(report.files_checked, FIXTURES.len());
    assert!(!report.clean());
    let violations: Vec<_> = report.violations().collect();
    assert_eq!(
        violations.len(),
        FIXTURES.len(),
        "one violation per rule, nothing from the decoys: {violations:#?}"
    );
    for (path, rule, _) in FIXTURES {
        let of_rule: Vec<_> = violations.iter().filter(|f| f.rule == *rule).collect();
        assert_eq!(of_rule.len(), 1, "rule {} must fire exactly once", rule.id());
        assert_eq!(of_rule[0].path, *path);
        assert_eq!(of_rule[0].line, expected_line(*rule), "rule {}", rule.id());
    }
    // The R1 fixture's waived line is counted as waived, not as a pass.
    let per_rule = report.per_rule();
    assert_eq!(per_rule[0].2, 1, "one waived wall-clock hit expected");
}

#[test]
fn fixture_audit_json_is_deterministic() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("audit_fixture_det");
    write_fixture_tree(&root);
    let config = fixture_config();
    let a = audit_tree(&root, &config).expect("first run").to_json().to_pretty();
    let b = audit_tree(&root, &config).expect("second run").to_json().to_pretty();
    assert_eq!(a, b, "AUDIT_cod.json bytes must not vary run to run");
    assert!(a.contains("\"clean\": false"));
}

#[test]
fn the_workspace_itself_is_audit_clean() {
    // tests/ sits directly under the repo root.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("repo root").to_owned();
    let config_text =
        std::fs::read_to_string(repo_root.join("audit.toml")).expect("checked-in audit.toml");
    let config = AuditConfig::parse(&config_text).expect("audit.toml parses");
    assert!(
        config.roots.contains(&"crates".to_owned()) && config.roots.contains(&"vendor".to_owned()),
        "the audit must cover the workspace sources"
    );
    let report = audit_tree(&repo_root, &config).expect("workspace audit runs");
    let violations: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{}: {} {}", f.path, f.line, f.rule.id(), f.message))
        .collect();
    assert!(
        violations.is_empty(),
        "workspace determinism audit failed:\n{}",
        violations.join("\n")
    );
    assert!(report.files_checked > 100, "suspiciously small walk: {}", report.files_checked);
}
