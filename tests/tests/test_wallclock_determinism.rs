//! Determinism under the work-stealing executor: the same seeded workload
//! served at 1, 2, 4 and 8 worker threads must produce a byte-identical
//! serialized fleet report and digest-identical per-session telemetry.
//!
//! The wall-clock executor hands whole shards to whichever worker steals
//! them first, so thread scheduling decides *when* a shard is stepped —
//! never what it computes, what order results are folded in, or what the
//! sessions' telemetry traces record. These tests pin that contract on the
//! fleets where it is hardest to keep: heterogeneous racks with preemption
//! and live migration, and tiered bursts with live retiering, including
//! thread counts well above the shard count (8 threads on 2 shards leaves
//! most workers stealing scraps).

use std::collections::BTreeMap;

use cod_fleet::{
    run_fleet, run_fleet_timed, ExecutionMode, FleetConfig, PlacementPolicy, ShardConfig,
    WorkloadConfig,
};
use cod_testkit::wallclock_equivalence_check;

/// Thread counts swept by every test, deliberately straddling the shard
/// count on both sides.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A heterogeneous fleet under pressure: speeds far apart, preemption and
/// migration on, so the executor must reproduce the outcome of the runs
/// where scheduling pressure is most tempting to leak.
fn hetero_config(seed: u64) -> FleetConfig {
    FleetConfig {
        shards: 2,
        shard: ShardConfig {
            slots: 2,
            batch_frames: 8,
            pool_per_shape: 1,
            ..ShardConfig::default()
        },
        shard_speeds: vec![2.0, 0.5],
        placement: PlacementPolicy::SpeedWeighted,
        preemption: true,
        migration: true,
        tiering: false,
        max_pending: 8,
        workload: WorkloadConfig {
            sessions: 16,
            seed,
            base_frames: 32,
            mean_interarrival_ticks: 1,
        },
        execution: ExecutionMode::Modeled,
        obs: Default::default(),
    }
}

/// A tiered burst: every session at the door at once, live retiering on.
fn tiered_burst_config(seed: u64) -> FleetConfig {
    let mut config = hetero_config(seed);
    config.shard_speeds = Vec::new();
    config.preemption = false;
    config.migration = false;
    config.tiering = true;
    config.max_pending = 4;
    config.workload.mean_interarrival_ticks = 0;
    config
}

/// Per-session telemetry digests keyed by session id.
fn telemetry_digests(config: &FleetConfig) -> BTreeMap<u64, u64> {
    run_fleet(config).expect("fleet drains").sessions.iter().map(|s| (s.id, s.telemetry)).collect()
}

#[test]
fn hetero_report_is_byte_identical_at_every_thread_count() {
    let (modeled, divergences) =
        wallclock_equivalence_check(&hetero_config(0xC0D), &THREADS).unwrap();
    assert!(modeled.preempted > 0, "the workload must exercise preemption");
    assert!(modeled.migrated > 0, "the workload must exercise migration");
    for (threads, divergence) in divergences {
        assert_eq!(
            divergence, None,
            "the serialized report diverged from the modeled run under {threads} threads"
        );
    }
}

#[test]
fn tiered_burst_report_is_byte_identical_at_every_thread_count() {
    let (modeled, divergences) =
        wallclock_equivalence_check(&tiered_burst_config(0xC0D), &THREADS).unwrap();
    assert!(modeled.demoted > 0, "the burst must exercise live demotion");
    assert!(modeled.promoted > 0, "the drain must exercise live promotion");
    for (threads, divergence) in divergences {
        assert_eq!(
            divergence, None,
            "the serialized report diverged from the modeled run under {threads} threads"
        );
    }
}

#[test]
fn telemetry_digests_are_identical_at_every_thread_count() {
    let reference = telemetry_digests(&hetero_config(0xC0D));
    assert!(!reference.is_empty(), "the workload must complete sessions");
    assert!(
        reference.values().any(|&digest| digest != 0),
        "telemetry digests must witness real traces"
    );
    for threads in THREADS {
        let mut config = hetero_config(0xC0D);
        config.execution = ExecutionMode::WallClock { threads };
        assert_eq!(
            telemetry_digests(&config),
            reference,
            "per-session telemetry digests diverged under {threads} threads"
        );
    }
}

#[test]
fn worker_instrumentation_is_present_and_non_degenerate() {
    // The per-worker counters are observability, not outcome: they must be
    // sized to the pool, show the pool actually worked (and, with more
    // workers than shards, actually stole), and stay empty when no pool ran.
    let mut config = hetero_config(0xC0D);
    config.execution = ExecutionMode::WallClock { threads: 4 };
    let (outcome, stats) = run_fleet_timed(&config).unwrap();
    assert!(outcome.completed > 0);
    assert_eq!(stats.worker_steals.len(), 4, "one steal counter per worker");
    assert_eq!(stats.worker_idle_spins.len(), 4, "one idle counter per worker");
    // Every shard task enters through the injector and every local deque is
    // drained by the end of a tick, so each tick's first acquisition is an
    // injector take — the pool must record at least one steal per tick.
    assert!(
        stats.worker_steals.iter().sum::<u64>() >= stats.ticks,
        "4 workers on 2 shards must be stealing (ticks {}): {:?}",
        stats.ticks,
        stats.worker_steals
    );
    assert!(
        stats.worker_idle_spins.iter().sum::<u64>() > 0,
        "4 workers on 2 shards cannot all stay busy: {:?}",
        stats.worker_idle_spins
    );

    let modeled = run_fleet_timed(&hetero_config(0xC0D)).unwrap().1;
    assert!(modeled.worker_steals.is_empty(), "no pool, no steal counters");
    assert!(modeled.worker_idle_spins.is_empty(), "no pool, no idle counters");
}

#[test]
fn different_seeds_still_produce_different_telemetry() {
    // The digest gate above would be vacuous if every workload digested to
    // the same bytes; two different seeds must disagree somewhere.
    let a = telemetry_digests(&hetero_config(1));
    let b = telemetry_digests(&hetero_config(2));
    assert_ne!(
        a.values().collect::<Vec<_>>(),
        b.values().collect::<Vec<_>>(),
        "telemetry digests must depend on the workload"
    );
}
