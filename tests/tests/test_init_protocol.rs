//! Integration tests of the Communication Backbone initialization protocol
//! across many computers (experiment E4) — subscription broadcast, channel
//! establishment, dynamic join, and behaviour over a lossy LAN.

use cod_cb::{CbKernel, ClassRegistry, Value};
use cod_net::{LanConfig, Micros, SimLan, SimTransport};

fn crane_fom() -> ClassRegistry {
    let mut fom = ClassRegistry::new();
    fom.register_object_class("CraneState", &["position", "boom_angle"]).unwrap();
    fom
}

fn run_round(kernels: &mut [CbKernel<SimTransport>], lan: &cod_net::SharedLan, now: &mut Micros) {
    for k in kernels.iter_mut() {
        k.tick(*now).unwrap();
    }
    *now += Micros::from_millis(10);
    SimLan::advance_to(lan, *now);
}

#[test]
fn one_publisher_serves_many_subscriber_computers() {
    let fom = crane_fom();
    let class = fom.object_class_by_name("CraneState").unwrap();
    let lan = SimLan::shared(LanConfig::fast_ethernet(21));
    let mut now = Micros::ZERO;

    let mut publisher = CbKernel::new(SimLan::attach(&lan, "dynamics"), fom.clone());
    let dynamics = publisher.register_lp("dynamics");
    publisher.publish_object_class(dynamics, class).unwrap();

    let mut subscribers: Vec<_> = (0..12)
        .map(|i| {
            let mut kernel =
                CbKernel::new(SimLan::attach(&lan, &format!("display-{i}")), fom.clone());
            let lp = kernel.register_lp(&format!("display-{i}"));
            kernel.subscribe_object_class(lp, class).unwrap();
            (kernel, lp)
        })
        .collect();

    for _ in 0..40 {
        publisher.tick(now).unwrap();
        for (kernel, _) in subscribers.iter_mut() {
            kernel.tick(now).unwrap();
        }
        now += Micros::from_millis(10);
        SimLan::advance_to(&lan, now);
    }

    assert_eq!(publisher.established_channel_count(), 12);
    for (kernel, _) in &subscribers {
        assert_eq!(kernel.established_channel_count(), 1);
    }

    // One update fans out to every display computer.
    let object = publisher.register_object_instance(dynamics, class).unwrap();
    let attr = fom.attribute_id(class, "boom_angle").unwrap();
    publisher
        .update_attribute_values(dynamics, object, [(attr, Value::F64(1.0))].into(), now)
        .unwrap();
    for _ in 0..5 {
        publisher.tick(now).unwrap();
        for (kernel, _) in subscribers.iter_mut() {
            kernel.tick(now).unwrap();
        }
        now += Micros::from_millis(10);
        SimLan::advance_to(&lan, now);
    }
    for (kernel, lp) in subscribers.iter_mut() {
        assert_eq!(kernel.reflections(*lp).len(), 1);
    }
}

#[test]
fn setup_latency_is_reported_and_bounded_by_the_broadcast_interval() {
    let fom = crane_fom();
    let class = fom.object_class_by_name("CraneState").unwrap();
    let lan = SimLan::shared(LanConfig::fast_ethernet(5));
    let mut now = Micros::ZERO;
    let mut publisher = CbKernel::new(SimLan::attach(&lan, "pub"), fom.clone());
    let p = publisher.register_lp("pub");
    publisher.publish_object_class(p, class).unwrap();
    let mut subscriber = CbKernel::new(SimLan::attach(&lan, "sub"), fom.clone());
    let s = subscriber.register_lp("sub");
    subscriber.subscribe_object_class(s, class).unwrap();

    let mut kernels = [publisher, subscriber];
    for _ in 0..30 {
        run_round(&mut kernels, &lan, &mut now);
    }
    let stats = kernels[1].stats();
    assert_eq!(stats.setup_latencies.len(), 1);
    // On a healthy LAN the three-way handshake completes within a few
    // protocol rounds (well under half a second).
    assert!(stats.setup_latencies[0] < Micros::from_millis(500));
    assert!(stats.subscription_broadcasts >= 1);
}

#[test]
fn protocol_converges_even_on_a_very_lossy_lan() {
    let fom = crane_fom();
    let class = fom.object_class_by_name("CraneState").unwrap();
    let lan = SimLan::shared(LanConfig::fast_ethernet(77).with_loss(0.4));
    let mut now = Micros::ZERO;
    let mut publisher = CbKernel::new(SimLan::attach(&lan, "pub"), fom.clone());
    let p = publisher.register_lp("pub");
    publisher.publish_object_class(p, class).unwrap();
    let mut subscriber = CbKernel::new(SimLan::attach(&lan, "sub"), fom.clone());
    let s = subscriber.register_lp("sub");
    subscriber.subscribe_object_class(s, class).unwrap();

    let mut kernels = [publisher, subscriber];
    for _ in 0..500 {
        run_round(&mut kernels, &lan, &mut now);
    }
    assert!(kernels[0].established_channel_count() >= 1);
    assert!(kernels[1].established_channel_count() >= 1);
}

#[test]
fn late_joining_publisher_is_discovered_by_readvertisement() {
    let fom = crane_fom();
    let class = fom.object_class_by_name("CraneState").unwrap();
    let lan = SimLan::shared(LanConfig::fast_ethernet(9));
    let mut now = Micros::ZERO;
    let mut subscriber = CbKernel::new(SimLan::attach(&lan, "sub"), fom.clone());
    let s = subscriber.register_lp("sub");
    subscriber.subscribe_object_class(s, class).unwrap();

    // The subscriber runs alone for a while: no channel can exist yet.
    let mut kernels = vec![subscriber];
    for _ in 0..50 {
        run_round(&mut kernels, &lan, &mut now);
    }
    assert_eq!(kernels[0].established_channel_count(), 0);

    // A publisher computer is switched on later.
    let mut publisher = CbKernel::new(SimLan::attach(&lan, "pub"), fom.clone());
    let p = publisher.register_lp("pub");
    publisher.publish_object_class(p, class).unwrap();
    kernels.push(publisher);
    for _ in 0..60 {
        run_round(&mut kernels, &lan, &mut now);
    }
    assert_eq!(kernels[0].established_channel_count(), 1);
    assert_eq!(kernels[1].established_channel_count(), 1);
}
