//! The observability layer's determinism contract, end to end: the
//! deterministic sink (`OBS_cod.json`) must be a pure function of the seed —
//! byte-identical across runs, execution modes and thread counts — while the
//! wall-clock sink records real spans without perturbing a single byte of
//! the fingerprinted fleet report. And with tracing disabled (the default),
//! nothing records at all.

use cod_fleet::{
    run_fleet, run_fleet_traced, ExecutionMode, FleetConfig, FleetReport, ObsConfig,
    PlacementPolicy, ShardConfig, WorkloadConfig,
};
use cod_testkit::obs_equivalence_check;

/// A heterogeneous fleet with every mechanism on, so the deterministic sink
/// sees every event kind the fleet can emit.
fn traced_config(seed: u64) -> FleetConfig {
    FleetConfig {
        shards: 2,
        shard: ShardConfig {
            slots: 2,
            batch_frames: 8,
            pool_per_shape: 1,
            ..ShardConfig::default()
        },
        shard_speeds: vec![2.0, 0.5],
        placement: PlacementPolicy::SpeedWeighted,
        preemption: true,
        migration: true,
        tiering: true,
        max_pending: 4,
        workload: WorkloadConfig {
            sessions: 12,
            seed,
            base_frames: 24,
            mean_interarrival_ticks: 1,
        },
        execution: ExecutionMode::Modeled,
        obs: ObsConfig::Full,
    }
}

#[test]
fn obs_report_is_byte_identical_across_execution_modes_and_thread_counts() {
    let (reference, divergences) = obs_equivalence_check(&traced_config(0xC0D), &[1, 4]).unwrap();
    assert!(reference.contains("cod-obs-v1"), "the report must carry its schema");
    for (label, divergence) in divergences {
        assert_eq!(divergence, None, "OBS_cod.json diverged from the modeled run under {label}");
    }
}

#[test]
fn obs_report_is_byte_identical_across_same_seed_runs() {
    let config = traced_config(7);
    let drain = || {
        let (_, _, artifacts) = run_fleet_traced(&config).unwrap();
        artifacts.det.expect("Full arms the det sink").to_report_json(config.workload.seed)
    };
    assert_eq!(drain().to_pretty(), drain().to_pretty());
}

#[test]
fn different_seeds_produce_different_obs_fingerprints() {
    // The byte-identity gates above would be vacuous if the sink ignored the
    // workload: two seeds must disagree.
    let fingerprint = |seed: u64| {
        let (_, _, artifacts) = run_fleet_traced(&traced_config(seed)).unwrap();
        artifacts.det.expect("Full arms the det sink").fingerprint()
    };
    assert_ne!(fingerprint(1), fingerprint(2));
}

#[test]
fn det_sink_records_the_fleet_ledger_and_the_hot_loop_counters() {
    let config = traced_config(0xC0D);
    let (outcome, _, artifacts) = run_fleet_traced(&config).unwrap();
    let det = artifacts.det.expect("Full arms the det sink");
    // The sink's run-level aggregates must agree with the outcome's ledger.
    assert_eq!(det.counter("ticks_run"), outcome.ticks_run);
    assert_eq!(det.counter("completed"), outcome.completed);
    assert_eq!(det.counter("preempted"), outcome.preempted);
    assert_eq!(det.counter("migrated"), outcome.migrated);
    assert_eq!(det.events_of("preempt") as u64, outcome.preempted);
    assert_eq!(det.events_of("migrate") as u64, outcome.migrated);
    assert_eq!(det.events_of("demote") as u64, outcome.demoted);
    // Frame counters flow up from the shard hot loop.
    assert!(det.counter("frames_stepped") > 0, "the hot loop must count frames");
    assert!(det.counter("cohorts_stepped") > 0, "batched stepping must count cohorts");
    // Histograms key on modeled time only.
    let makespan = det.histogram("tick_makespan_us").expect("per-tick histogram");
    assert_eq!(makespan.count(), outcome.ticks_run);
    let latency = det.histogram("session_latency_ticks").expect("per-session histogram");
    assert_eq!(latency.count(), outcome.completed);
}

#[test]
fn wall_sink_records_worker_lanes_without_touching_the_fleet_report() {
    let mut config = traced_config(0xC0D);
    config.execution = ExecutionMode::WallClock { threads: 4 };
    let (traced_outcome, _, artifacts) = run_fleet_traced(&config).unwrap();
    let trace = artifacts.wall.expect("Full arms the wall sink");
    assert_eq!(trace.lanes(), 5, "a driver lane plus one lane per worker");
    assert!(trace.event_count() > 0, "a drained run must record spans");
    // Every initial acquisition goes through the injector, so a 4-thread run
    // on 2 shards records steals deterministically-in-kind (not in count).
    let steals: usize = (0..trace.lanes()).map(|lane| trace.count_of(lane, "steal")).sum();
    assert!(steals > 0, "4 workers on 2 shards must record steal events");
    // And the fingerprinted report is byte-identical to an untraced run's.
    let mut untraced = config.clone();
    untraced.obs = ObsConfig::Disabled;
    let untraced_outcome = run_fleet(&untraced).unwrap();
    assert_eq!(
        FleetReport::from_outcome(&traced_outcome).to_json().to_pretty(),
        FleetReport::from_outcome(&untraced_outcome).to_json().to_pretty(),
        "arming tracing must not change a byte of FLEET_cod.json"
    );
}

#[test]
fn disabled_obs_returns_no_artifacts_and_the_same_outcome() {
    let mut config = traced_config(3);
    config.obs = ObsConfig::Disabled;
    let (outcome, _, artifacts) = run_fleet_traced(&config).unwrap();
    assert!(artifacts.det.is_none(), "disabled obs must arm no deterministic sink");
    assert!(artifacts.wall.is_none(), "disabled obs must arm no wall sink");
    // run_fleet_traced with obs off is exactly run_fleet.
    assert_eq!(outcome, run_fleet(&config).unwrap());
}
