//! Cross-crate integration tests: the frame-synchronized surround view
//! (experiments E1/E3/E12) and the cluster-vs-single-PC comparison (E6).

use cod_net::Micros;
use crane_sim::{CraneSimulator, GpuGeneration, OperatorKind, SimulatorConfig};

fn base_config() -> SimulatorConfig {
    SimulatorConfig {
        operator: OperatorKind::Idle,
        exam_frames: 0,
        display_width: 64,
        display_height: 48,
        ..SimulatorConfig::default()
    }
}

#[test]
fn synchronized_surround_view_lands_in_the_papers_regime() {
    let mut simulator = CraneSimulator::new(base_config()).unwrap();
    simulator.run_frames(60).unwrap();
    let report = simulator.report();
    // Paper §4: 16 fps for the synchronized three-channel view of 3 235 polygons.
    assert!(
        report.synchronized_fps > 13.0 && report.synchronized_fps < 19.0,
        "synchronized fps {}",
        report.synchronized_fps
    );
    // Synchronization costs something, so the free-running channel is faster.
    assert!(report.free_running_fps > report.synchronized_fps);
    // The sync overhead is a modest fraction of the frame, not a majority.
    let overhead = 1.0 - report.synchronized_fps / report.free_running_fps;
    assert!(overhead > 0.01 && overhead < 0.3, "overhead fraction {overhead}");
}

#[test]
fn next_generation_hardware_clears_the_thirty_fps_bar() {
    let mut config = base_config();
    config.gpu = GpuGeneration::NextGeneration;
    config.target_fps = 60.0;
    let mut simulator = CraneSimulator::new(config).unwrap();
    simulator.run_frames(60).unwrap();
    let report = simulator.report();
    assert!(
        report.free_running_fps > 30.0,
        "faster hardware should exceed 30 fps, got {}",
        report.free_running_fps
    );
}

#[test]
fn distributed_cluster_beats_the_single_computer_baseline() {
    let mut simulator = CraneSimulator::new(base_config()).unwrap();
    simulator.run_frames(60).unwrap();
    let report = simulator.report();
    assert!(
        report.cluster_fps > report.sequential_fps * 2.0,
        "expected a clear pipelining speedup: cluster {} vs sequential {}",
        report.cluster_fps,
        report.sequential_fps
    );
}

#[test]
fn extra_display_channel_joins_without_restarting_the_system() {
    let mut simulator = CraneSimulator::new(base_config()).unwrap();
    simulator.run_frames(30).unwrap();
    let channels_before = simulator.report().channel_frame_times.len();
    simulator.add_extra_display().unwrap();
    simulator.run_frames(80).unwrap();
    let report = simulator.report();
    assert_eq!(report.channel_frame_times.len(), channels_before + 1);
    assert!(report.channel_frame_times.iter().all(|t| *t > Micros::ZERO));
    // The original channels keep making progress after the join.
    assert!(report.frames_run >= 110);
}

#[test]
fn lan_carries_data_but_co_resident_modules_stay_local() {
    let mut simulator = CraneSimulator::new(base_config()).unwrap();
    simulator.run_frames(50).unwrap();
    let report = simulator.report();
    assert!(report.lan.datagrams_sent > 100, "state updates should cross the LAN");
    assert!(report.established_channels > 10);
}
