//! Fault-tolerance and determinism suite driving `cod-testkit`.
//!
//! Proves the two acceptance properties of the testkit:
//!
//! 1. **Determinism** — two runs of the same seeded scenario (including its
//!    fault plan) produce bit-identical `SessionReport`s and telemetry traces.
//! 2. **Fault tolerance** — under 5% datagram loss, duplication + reordering,
//!    latency spikes and a short partition, the exam scenario still completes
//!    with every cluster invariant holding.
//!
//! To reproduce any failure, take the printed `(sim seed, fault seed)` pair
//! and rebuild the same `ScenarioSpec` (see README "Testing").

use cod_net::{FaultPlan, Micros, NodeId};
use cod_testkit::{replay_check, run_scenario, ScenarioSpec};
use crane_sim::{OperatorKind, SimulatorConfig};

fn exam_config(seed: u64) -> SimulatorConfig {
    SimulatorConfig {
        operator: OperatorKind::Exam,
        display_width: 64,
        display_height: 48,
        exam_frames: 0,
        seed,
        ..SimulatorConfig::default()
    }
}

#[test]
fn same_seed_and_fault_plan_reproduce_bit_identical_sessions() {
    let spec = ScenarioSpec::new("determinism", exam_config(0xDE7E_4213), 200)
        .with_fault_plan(FaultPlan::seeded(0xFA17).with_drop_probability(0.05));
    let (first, second, divergence) = replay_check(&spec).unwrap();
    assert_eq!(
        divergence,
        None,
        "replay diverged (seeds {:?}): first bad frame {divergence:?}",
        spec.seeds()
    );
    assert_eq!(first.report, second.report, "SessionReports must be bit-identical");
    assert_eq!(first.trace, second.trace);
    assert_eq!(first.trace.fingerprint(), second.trace.fingerprint());
    // Faults really were injected — this is not a trivially clean run.
    assert!(first.report.lan.fault_drops > 0, "no faults injected");
}

#[test]
fn traces_pin_the_first_divergent_frame_between_different_fault_streams() {
    let base = ScenarioSpec::new("a", exam_config(7), 120)
        .with_fault_plan(FaultPlan::seeded(1).with_drop_probability(0.05));
    let other = ScenarioSpec::new("b", exam_config(7), 120)
        .with_fault_plan(FaultPlan::seeded(2).with_drop_probability(0.05));
    let a = run_scenario(&base).unwrap();
    let b = run_scenario(&other).unwrap();
    let frame = a.trace.first_divergence(&b.trace);
    assert!(frame.is_some(), "different fault seeds must alter the frame-level behaviour");
    // The divergence is symmetric.
    assert_eq!(frame, b.trace.first_divergence(&a.trace));
}

#[test]
fn exam_completes_under_five_percent_datagram_loss_with_all_invariants() {
    let spec = ScenarioSpec::new("exam-loss5", exam_config(0xC0D), 400)
        .with_fault_plan(FaultPlan::seeded(0x10_55).with_drop_probability(0.05));
    let outcome = run_scenario(&spec).unwrap();
    assert!(
        outcome.passed(),
        "invariants violated (seeds {:?}): {:?}",
        outcome.seeds,
        outcome.violations
    );
    assert_eq!(outcome.report.frames_run, 400);
    // The surround view kept swapping despite the loss.
    let snap_swaps = outcome.trace.digests.last().unwrap().channel_swaps.clone();
    assert!(
        snap_swaps.iter().all(|s| *s > 60),
        "displays barely progressed under loss: {snap_swaps:?}"
    );
    // The operator still drove the exam forward.
    assert_eq!(outcome.report.phase, "Driving");
    assert!(outcome.report.lan.fault_drops > 100, "loss plan barely fired");
}

#[test]
fn duplication_and_reordering_do_not_break_lock_step() {
    let plan =
        FaultPlan::seeded(0xD0_0D).with_duplicate_probability(0.15).with_reordering(0.15, 70_000);
    let spec = ScenarioSpec::new("exam-chaos", exam_config(0xC0D), 300).with_fault_plan(plan);
    let outcome = run_scenario(&spec).unwrap();
    assert!(outcome.passed(), "{:?}", outcome.violations);
    let stats = &outcome.report.lan;
    assert!(stats.fault_duplicates > 100, "duplication plan barely fired");
    assert!(stats.fault_reorders > 100, "reorder plan barely fired");
}

#[test]
fn a_partitioned_display_computer_rejoins_and_catches_up() {
    // Display-0 (node 0) falls off the LAN from t = 2 s to t = 3 s.
    let plan = FaultPlan::seeded(0xB11F).with_partition(
        Micros::from_secs(2),
        Micros::from_secs(3),
        vec![NodeId(0)],
    );
    let spec = ScenarioSpec::new("exam-partition", exam_config(0xC0D), 300).with_fault_plan(plan);
    let outcome = run_scenario(&spec).unwrap();
    assert!(outcome.passed(), "{:?}", outcome.violations);
    assert!(outcome.report.lan.partition_drops > 0, "partition never fired");
    // After healing, lock-step recovered rather than deadlocked: the surround
    // view ends within a few swaps of an identically-seeded clean run.
    let clean = run_scenario(&ScenarioSpec::new("exam-clean", exam_config(0xC0D), 300)).unwrap();
    let clean_swaps = clean.trace.digests.last().unwrap().channel_swaps[0];
    let final_swaps = outcome.trace.digests.last().unwrap().channel_swaps.clone();
    assert!(
        final_swaps.iter().all(|s| *s + 10 >= clean_swaps),
        "lock-step never recovered: {final_swaps:?} vs clean {clean_swaps}"
    );
    let max = final_swaps.iter().max().unwrap();
    let min = final_swaps.iter().min().unwrap();
    assert!(max - min <= 1, "channels diverged after heal: {final_swaps:?}");
}

#[test]
fn latency_spike_delays_but_does_not_derail_the_session() {
    let plan =
        FaultPlan::seeded(0x5717).with_spike(Micros::from_secs(2), Micros::from_secs(4), 80_000);
    let spec = ScenarioSpec::new("exam-spike", exam_config(0xC0D), 300).with_fault_plan(plan);
    let outcome = run_scenario(&spec).unwrap();
    assert!(outcome.passed(), "{:?}", outcome.violations);
    assert_eq!(outcome.report.frames_run, 300);
    // The spike run must differ from a clean run of the same seeds.
    let clean = run_scenario(&ScenarioSpec::new("exam-clean", exam_config(0xC0D), 300)).unwrap();
    assert!(outcome.trace.first_divergence(&clean.trace).is_some());
}

#[test]
fn quick_scenario_matrix_passes_every_invariant() {
    let summary = cod_testkit::run_matrix(&cod_testkit::MatrixConfig::quick()).unwrap();
    assert!(summary.all_passed(), "failing scenarios: {:?}", summary.failures());
    assert_eq!(summary.results.len(), 6);
    // The summary serializes to valid JSON for the CI artifact.
    let text = summary.to_json().to_pretty();
    assert!(text.contains("cod-scenarios-v1"));
}
