//! No-op derive macros for the offline `serde` stand-in.
//!
//! Nothing in the workspace calls a serializer, so the derives only need to
//! exist for `#[derive(Serialize, Deserialize)]` attributes to compile; they
//! expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
