//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` with `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A panicked holder simply passes the data on (`into_inner` on the poison
//! error), matching parking_lot's "no poisoning" behaviour closely enough
//! for the simulator's telemetry and transport hubs.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive; `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// Reader-writer lock; `read`/`write` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> RwLock<T> {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
