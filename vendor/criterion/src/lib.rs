//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface bench targets use — groups, throughput
//! annotation, parameterised benches, `criterion_group!`/`criterion_main!` —
//! as a thin compatibility shim over the workspace's real measurement layer,
//! [`cod_bench::measure`]: calibrated iteration counts, MAD outlier
//! rejection and median/p95 reporting instead of the bare wall-clock loop
//! this stub started as. The in-tree bench targets call
//! `cod_bench::experiments` directly; this shim keeps any criterion-flavoured
//! bench code (and a future swap to the real crates.io criterion) compiling
//! unchanged.

use std::fmt::Write as _;
use std::time::Duration;

use cod_bench::measure::{measure, MeasureConfig, Measurement};

/// Entry point handed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    config: MeasureConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep `cargo bench` turnaround short: criterion-style targets get a
        // trimmed sample budget; `COD_BENCH_QUICK=1` trims further.
        let mut config = MeasureConfig::from_env();
        config.samples = config.samples.min(20);
        Criterion { config }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            config,
            measurement_time: None,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.config, None, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: MeasureConfig,
    // Criterion semantics: total time across all samples, split per sample
    // at run time (after `sample_size` is known).
    measurement_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.samples = n.max(1);
        self
    }

    /// Sets the target measurement time of the whole benchmark (all samples
    /// together), matching the real criterion's meaning.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = Some(dur);
        self
    }

    /// The effective per-run config with `measurement_time` applied.
    fn effective_config(&self) -> MeasureConfig {
        let mut config = self.config;
        if let Some(total) = self.measurement_time {
            config.target_sample_time =
                (total / config.samples.max(1) as u32).max(Duration::from_micros(1));
        }
        config
    }

    /// Declares the throughput of each iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.effective_config(), self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.effective_config(), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Per-iteration payload declaration, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handed to the measured closure.
#[derive(Debug)]
pub struct Bencher {
    config: MeasureConfig,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine` through the statistical pipeline.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measurement = Some(measure(&self.config, || {
            std::hint::black_box(routine());
        }));
    }
}

fn run_one(
    label: &str,
    config: MeasureConfig,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher { config, measurement: None };
    f(&mut bencher);
    let Some(m) = bencher.measurement else {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    };
    let stats = m.stats;
    let mut line = format!(
        "{label:<40} median {:>12.0} ns/iter   p95 {:>12.0} ns/iter   ({} samples, {} kept)",
        stats.median, stats.p95, stats.samples, stats.kept
    );
    if let Some(tp) = throughput {
        let per_iter = stats.median.max(1.0);
        let (n, unit) = match tp {
            Throughput::Bytes(n) => (n, "B/s"),
            Throughput::Elements(n) => (n, "elem/s"),
        };
        let _ = write!(line, "   {:>14.0} {unit}", n as f64 * 1e9 / per_iter);
    }
    println!("{line}");
}

/// Re-export of the standard black box, matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions as a single runnable target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_statistics() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(4);
        group.measurement_time(Duration::from_micros(200));
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0, "the routine must actually run");
    }
}
