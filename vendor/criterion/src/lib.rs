//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the `cod-bench` targets use — groups, throughput
//! annotation, parameterised benches, `criterion_group!`/`criterion_main!` —
//! backed by a simple wall-clock timer instead of criterion's statistical
//! machinery. Each bench runs a short warm-up followed by a fixed number of
//! timed samples and prints the mean time per iteration, so `cargo bench`
//! still yields usable relative numbers for the paper's experiments.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Number of timed iterations per sample when none is configured.
const DEFAULT_ITERS: u64 = 20;
/// Warm-up iterations before timing starts.
const WARMUP_ITERS: u64 = 3;

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_iters: DEFAULT_ITERS,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, DEFAULT_ITERS, None, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_iters: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (mapped to timed iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = (n as u64).max(1);
        self
    }

    /// Sets the target measurement time; accepted and ignored by the stub.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Declares the throughput of each iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_iters, self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_iters, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Per-iteration payload declaration, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handed to the measured closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u64, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let mut line = format!("{label:<40} {:>12.0} ns/iter", per_iter);
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(n) => (n as f64) * 1e9 / per_iter.max(1.0),
            Throughput::Elements(n) => (n as f64) * 1e9 / per_iter.max(1.0),
        };
        let unit = match tp {
            Throughput::Bytes(_) => "B/s",
            Throughput::Elements(_) => "elem/s",
        };
        let _ = write!(line, "   {per_sec:>14.0} {unit}");
    }
    println!("{line}");
}

/// Re-export of the standard black box, matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions as a single runnable target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
