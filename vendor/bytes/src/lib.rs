//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the Communication Backbone wire codec and the
//! simulated LAN use: a cheaply cloneable immutable [`Bytes`] buffer, a
//! growable [`BytesMut`], and the big-endian [`Buf`]/[`BufMut`] cursor
//! traits. Semantics (panics on underflow, `&[u8]` advancing on reads)
//! follow the real crate so a future swap to crates.io `bytes` is drop-in.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies the slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the contents as a byte slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        Bytes::from(v.vec)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

/// A growable byte buffer implementing [`BufMut`].
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { vec: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.vec), f)
    }
}

/// Read access to a buffer of bytes, advancing an internal cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Copies bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f64(-2.5);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_f64(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&c[..], &[1, 2, 3]);
    }
}
