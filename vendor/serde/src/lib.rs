//! Offline stand-in for the `serde` crate.
//!
//! The simulator only ever *derives* `Serialize`/`Deserialize` to mark state
//! types as wire-safe; no serializer is instantiated anywhere in the
//! workspace (the CB speaks its own hand-rolled codec, see `cod-cb::codec`).
//! This stub therefore provides the two marker traits and re-exports the
//! no-op derive macros, which is exactly the surface the codebase consumes.
//! Swapping in the real crates.io `serde` is a one-line change in the root
//! `Cargo.toml` once the build environment has network access.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
