//! Work-stealing deques, mirroring the `crossbeam-deque` API surface the
//! workspace uses: a global [`Injector`] queue plus per-worker [`Worker`]
//! deques whose [`Stealer`] handles let idle threads take work from busy
//! ones.
//!
//! The real crate implements the Chase–Lev lock-free deque; this offline
//! stand-in maps the same API onto `Mutex<VecDeque<..>>`. The *semantics*
//! match (FIFO steal order from the front, LIFO or FIFO local pop, batch
//! steals move at most half of the source), only the progress guarantee is
//! weaker: operations may block briefly on the lock instead of retrying. The
//! stub never returns [`Steal::Retry`]; callers written against the real
//! crate loop on `Retry` anyway, so the variant stays for API parity.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was empty at the time of the attempt.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried. The mutex-backed stub
    /// never produces this; it exists so caller retry loops written against
    /// the real crossbeam compile unchanged.
    Retry,
}

impl<T> Steal<T> {
    /// Whether the attempt found the source empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether the attempt stole a task.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }
}

fn lock<T>(mutex: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Moves up to half of `src` (at least one task, when available) to the back
/// of `dest`, then pops one task for the caller — the shared core of the
/// `steal_batch_and_pop` operations. Tasks leave `src` from the front, so
/// steal order is FIFO with respect to insertion.
fn steal_batch_and_pop_from<T>(src: &Mutex<VecDeque<T>>, dest: &Worker<T>) -> Steal<T> {
    let mut src = lock(src);
    if src.is_empty() {
        return Steal::Empty;
    }
    let take = (src.len() + 1) / 2;
    let mut dest_q = lock(&dest.inner);
    let first = src.pop_front().expect("checked non-empty");
    for _ in 1..take {
        if let Some(task) = src.pop_front() {
            dest_q.push_back(task);
        }
    }
    Steal::Success(first)
}

/// Which end of its deque a [`Worker`] pops from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    /// Pop from the front: the worker drains its own queue oldest-first.
    Fifo,
    /// Pop from the back: the worker runs its most recently pushed task
    /// first (better locality; the classic work-stealing configuration).
    Lifo,
}

/// A worker's own deque. Push and pop are meant for the owning thread;
/// [`Worker::stealer`] hands other threads a [`Stealer`] that takes from the
/// opposite (front) end.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// A worker deque that pops oldest-first.
    pub fn new_fifo() -> Worker<T> {
        Worker { inner: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Fifo }
    }

    /// A worker deque that pops newest-first (steals still take the oldest).
    pub fn new_lifo() -> Worker<T> {
        Worker { inner: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Lifo }
    }

    /// Pushes a task onto the deque.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Pops a task from the flavor's end of the deque.
    pub fn pop(&self) -> Option<T> {
        let mut q = lock(&self.inner);
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// Whether the deque is empty right now.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of queued tasks right now.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// A handle other threads use to steal from this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { inner: Arc::clone(&self.inner) }
    }
}

/// A handle for stealing tasks from another thread's [`Worker`] deque.
/// Steals always take the oldest task (the front), regardless of the
/// worker's pop flavor.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the worker's deque.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals up to half of the worker's deque into `dest`, returning one of
    /// the stolen tasks directly.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        steal_batch_and_pop_from(&self.inner, dest)
    }

    /// Whether the source deque is empty right now.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Stealer<T> {
        Stealer { inner: Arc::clone(&self.inner) }
    }
}

/// A FIFO queue every worker may push to and steal from — the global entry
/// point work-stealing pools inject fresh tasks through.
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Injector<T> {
        Injector { inner: Mutex::new(VecDeque::new()) }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Steals the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals up to half of the queue into `dest`, returning one of the
    /// stolen tasks directly.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        steal_batch_and_pop_from(&self.inner, dest)
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of queued tasks right now.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn steal_order_is_fifo_from_the_front() {
        let worker: Worker<i32> = Worker::new_lifo();
        worker.push(1);
        worker.push(2);
        worker.push(3);
        let stealer = worker.stealer();
        // Steals take the oldest task...
        assert_eq!(stealer.steal(), Steal::Success(1));
        // ...while the LIFO owner pops the newest.
        assert_eq!(worker.pop(), Some(3));
        assert_eq!(stealer.steal(), Steal::Success(2));
        assert_eq!(worker.pop(), None);
    }

    #[test]
    fn fifo_worker_pops_oldest_first() {
        let worker: Worker<i32> = Worker::new_fifo();
        worker.push(1);
        worker.push(2);
        assert_eq!(worker.pop(), Some(1));
        assert_eq!(worker.pop(), Some(2));
        assert!(worker.is_empty());
    }

    #[test]
    fn empty_steal_reports_empty_not_retry() {
        let worker: Worker<i32> = Worker::new_fifo();
        let stealer = worker.stealer();
        assert_eq!(stealer.steal(), Steal::Empty);
        assert!(stealer.steal().is_empty());
        assert!(stealer.is_empty());
        let injector: Injector<i32> = Injector::new();
        assert_eq!(injector.steal(), Steal::Empty);
        assert_eq!(injector.steal_batch_and_pop(&worker), Steal::Empty);
    }

    #[test]
    fn batch_steal_moves_at_most_half_and_pops_the_oldest() {
        let injector = Injector::new();
        for task in 0..6 {
            injector.push(task);
        }
        let worker: Worker<i32> = Worker::new_fifo();
        // 6 queued: the batch takes ceil(6/2) = 3 — one returned, two moved.
        assert_eq!(injector.steal_batch_and_pop(&worker), Steal::Success(0));
        assert_eq!(worker.len(), 2);
        assert_eq!(injector.len(), 3);
        assert_eq!(worker.pop(), Some(1));
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(injector.steal(), Steal::Success(3));
    }

    #[test]
    fn single_task_batch_steal_still_succeeds() {
        let injector = Injector::new();
        injector.push(42);
        let worker: Worker<i32> = Worker::new_fifo();
        assert_eq!(injector.steal_batch_and_pop(&worker), Steal::Success(42));
        assert!(worker.is_empty());
        assert!(injector.is_empty());
    }

    #[test]
    fn steal_helpers_classify_outcomes() {
        assert!(Steal::<i32>::Empty.is_empty());
        assert!(!Steal::<i32>::Empty.is_success());
        assert!(Steal::Success(7).is_success());
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<i32>::Retry.success(), None);
        assert!(!Steal::<i32>::Retry.is_empty());
    }

    #[test]
    fn cross_thread_hand_off_delivers_every_task_exactly_once() {
        const TASKS: usize = 200;
        const THIEVES: usize = 4;
        let injector = Arc::new(Injector::new());
        for task in 0..TASKS {
            injector.push(task);
        }
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let injector = Arc::clone(&injector);
                let sum = Arc::clone(&sum);
                let count = Arc::clone(&count);
                // Production threads go through cod-fleet's executor, which
                // is built on this module.
                // audit:allow(thread-spawn): the deque's own hand-off test.
                std::thread::spawn(move || {
                    let local: Worker<usize> = Worker::new_fifo();
                    loop {
                        let task =
                            local.pop().or_else(|| injector.steal_batch_and_pop(&local).success());
                        match task {
                            Some(task) => {
                                sum.fetch_add(task, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thief thread panicked");
        }
        // Every task consumed exactly once: the count and the sum both match.
        assert_eq!(count.load(Ordering::Relaxed), TASKS);
        assert_eq!(sum.load(Ordering::Relaxed), TASKS * (TASKS - 1) / 2);
        assert!(injector.is_empty());
    }

    #[test]
    fn workers_steal_from_each_other_through_stealers() {
        let a: Worker<i32> = Worker::new_lifo();
        let b: Worker<i32> = Worker::new_lifo();
        for task in 0..4 {
            a.push(task);
        }
        let a_stealer = a.stealer();
        // b takes a batch from a: half of a's queue crosses over.
        assert_eq!(a_stealer.steal_batch_and_pop(&b), Steal::Success(0));
        assert_eq!(b.len(), 1);
        assert_eq!(a.len(), 2);
        assert_eq!(b.pop(), Some(1));
    }
}
