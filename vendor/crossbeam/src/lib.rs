//! Offline stand-in for the `crossbeam` crate.
//!
//! Two submodules are consumed by the workspace: `crossbeam::channel` (the
//! zero-latency loopback transport and the fleet executor's result path)
//! maps onto `std::sync::mpsc`, wrapping the receiver in an
//! `Arc<Mutex<..>>` so it is `Clone + Send + Sync` like crossbeam's, with
//! error types re-exported from `std::sync::mpsc`, whose shapes match
//! crossbeam's for the operations used here; `crossbeam::deque` (the
//! work-stealing executor's task hand-off) mirrors the `crossbeam-deque`
//! `Injector`/`Worker`/`Stealer` API on mutex-guarded deques.

pub mod deque;

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv()
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv()
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout)
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator over immediately available messages; never blocks.
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_iter_drains() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn cloned_receiver_shares_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(7).unwrap();
            assert_eq!(rx2.recv().unwrap(), 7);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }
    }
}
