//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset the workspace's unit tests use: the [`proptest!`]
//! macro with `pattern in strategy` bindings, range and tuple strategies,
//! [`any`], `prop_map`, [`collection::vec`], `prop_assert!`/`prop_assert_eq!`
//! and [`ProptestConfig::with_cases`]. Inputs are drawn from a fixed-seed
//! deterministic generator, so failures reproduce across runs. Shrinking is
//! not implemented — a failing case reports the drawn values via the normal
//! assertion message instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 source for test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl Default for TestRng {
    fn default() -> TestRng {
        // Fixed seed: property failures reproduce run to run.
        TestRng { state: 0x5EED_CAB1_E5C0_FFEE }
    }
}

impl TestRng {
    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy, see [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values; avoids NaN/inf which the real
        // crate only produces under special strategies anyway.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty range strategy");
            let span = self.size.end - self.size.start;
            let len = self.size.start + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a property, reporting the message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(x in strategy, ..) { body }` becomes
/// a `#[test]` running the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@config($config:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut __proptest_rng = $crate::TestRng::default();
                for __proptest_case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);
                    )+
                    let _ = __proptest_case;
                    $body
                }
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in -1.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(v in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_strategy_len_in_range(v in crate::collection::vec(0u64..100, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn any_is_deterministic_per_rng() {
        let mut a = crate::TestRng::default();
        let mut b = crate::TestRng::default();
        for _ in 0..10 {
            assert_eq!(u64::arbitrary_eq(&mut a), u64::arbitrary_eq(&mut b));
        }
    }

    trait ArbitraryEq {
        fn arbitrary_eq(rng: &mut crate::TestRng) -> u64;
    }

    impl ArbitraryEq for u64 {
        fn arbitrary_eq(rng: &mut crate::TestRng) -> u64 {
            rng.next_u64()
        }
    }
}
