//! Offline stand-in for the `rand` crate (0.8-flavoured API).
//!
//! The simulated LAN only needs a seedable, deterministic uniform generator
//! for jitter and packet loss. [`rngs::StdRng`] here is splitmix64 — not the
//! real crate's ChaCha12 — so streams differ from crates.io `rand`, but the
//! workspace only relies on determinism for a fixed seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Core trait producing raw random words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                // In u128 the inclusive span never overflows to zero, even
                // for a full-width `0..=MAX` range of any supported type.
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood 2014): passes BigCrush, one add
            // and two xor-shift-multiplies per word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
