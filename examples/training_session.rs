//! A free-training session with a careless trainee: shows the instructor's
//! Status and Dashboard windows, the alarms they raise, and the instructor's
//! fault-injection console (paper §3.3, Figures 5 and 6).
//!
//! ```text
//! cargo run --release --example training_session
//! ```

use crane_sim::fom::FaultMsg;
use crane_sim::{CraneSimulator, OperatorKind, SimulatorConfig};

fn main() {
    let mut simulator = CraneSimulator::new(SimulatorConfig {
        operator: OperatorKind::Reckless,
        exam_frames: 0,
        ..SimulatorConfig::default()
    })
    .expect("simulator builds");

    println!("free-training session with a careless trainee\n");
    for block in 0..8 {
        simulator.run_frames(100).expect("frames run");
        let snap = simulator.snapshot();
        let w = &snap.status_window;
        println!(
            "t={:5.1}s  swing {:6.1} deg  raise {:5.1} deg  cable {:4.1} m  boom {:4.1} m  score {:3.0}  alarms {:?}",
            snap.scenario.elapsed,
            w.boom_swing_deg,
            w.boom_raise_deg,
            w.cable_length_m,
            w.boom_length_m,
            w.score,
            w.active_alarms
        );
        println!(
            "          dashboard mirror: {:5.1} km/h  engine {:4.2}  load moment {:4.2}  steering {:+.2}",
            snap.dashboard_window.speed_kmh,
            snap.dashboard_window.engine_load,
            snap.dashboard_window.load_moment,
            snap.dashboard_window.steering
        );

        if block == 3 {
            println!(
                "\n>>> instructor clicks the speedometer: fault injected (stuck at 88 km/h)\n"
            );
            simulator
                .fault_injector()
                .inject(FaultMsg { instrument: "speedometer".into(), value: 88.0 });
        }
    }

    let snap = simulator.snapshot();
    println!("\nalarm history (codes raised): {:?}", snap.alarm_events);
    println!("collision events            : {}", snap.collisions.len());
    println!("audio output level (rms)    : {:.3}", snap.audio_rms);
    println!("platform actuators saturated: {}", snap.platform_saturated);
}
