//! Quickstart: build the eight-computer simulator, run a short session, print
//! the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use crane_sim::{CraneSimulator, OperatorKind, SimulatorConfig};

fn main() {
    let config = SimulatorConfig {
        operator: OperatorKind::Exam,
        exam_frames: 400,
        ..SimulatorConfig::default()
    };
    println!(
        "building the COD mobile-crane simulator ({} display channels)...",
        config.display_channels
    );
    let mut simulator = CraneSimulator::new(config).expect("simulator builds");

    println!("rack layout:");
    for (computer, modules) in simulator.rack_layout() {
        println!("  {computer:<14} -> {}", modules.join(", "));
    }

    println!("\nrunning {} frames...", simulator.config().exam_frames);
    simulator.run().expect("session runs");

    let report = simulator.report();
    println!("\n--- session report -------------------------------------------");
    println!("frames run                 : {}", report.frames_run);
    println!("scenario phase             : {}", report.phase);
    println!("score                      : {:.0}", report.score);
    println!("bar hits                   : {}", report.bar_hits);
    println!("synchronized surround view : {:5.1} fps", report.synchronized_fps);
    println!("free-running slowest chan  : {:5.1} fps", report.free_running_fps);
    println!("cluster (pipelined) limit  : {:5.1} fps", report.cluster_fps);
    println!("single-PC (sequential)     : {:5.1} fps", report.sequential_fps);
    println!("virtual channels           : {}", report.established_channels);
    println!("LAN datagrams sent         : {}", report.lan.datagrams_sent);
    println!("max hook swing             : {:.2} m", report.max_hook_swing);
}
