//! Fleet serving: hundreds of concurrent crane-simulator sessions on a pool
//! of shards — admission control, least-loaded placement, batched stepping
//! and simulator recycling, end to end.
//!
//! ```text
//! cargo run --release --example fleet_serving
//! ```

use cod_fleet::{run_fleet, FleetConfig, FleetReport, ShardConfig, WorkloadConfig};

fn main() {
    let config = FleetConfig {
        shards: 4,
        shard: ShardConfig { slots: 4, batch_frames: 8, pool_per_shape: 2 },
        max_pending: 16,
        workload: WorkloadConfig {
            sessions: 48,
            seed: 0xC0D,
            base_frames: 48,
            mean_interarrival_ticks: 1,
        },
        parallel: true,
    };

    println!(
        "serving {} sessions (operator x GPU x channels x fault-plan mix, seed {:#x})",
        config.workload.sessions, config.workload.seed
    );
    println!(
        "fleet: {} shards x {} slots, {} frames per session per tick, queue bound {}\n",
        config.shards, config.shard.slots, config.shard.batch_frames, config.max_pending
    );

    let outcome = run_fleet(&config).expect("fleet drains");
    let report = FleetReport::from_outcome(&outcome);
    print!("{}", report.render_table());

    println!("\nfirst and last sessions through the door:");
    for s in outcome.sessions.iter().take(3).chain(outcome.sessions.iter().rev().take(2).rev()) {
        println!(
            "  {:<28} shard {} | arrived t{:<3} done t{:<3} | {} frames | score {:>5.1}",
            s.name, s.shard, s.arrived_tick, s.completed_tick, s.frames, s.score
        );
    }

    let recycled: u64 = outcome.shard_stats.iter().map(|s| s.sims_recycled).sum();
    let built: u64 = outcome.shard_stats.iter().map(|s| s.sims_built).sum();
    println!(
        "\n{} sessions served by {} built racks ({} recycled through reset_for_session)",
        outcome.completed, built, recycled
    );
    println!(
        "modeled throughput {:.2} sessions/s over {:.1} s of serving time",
        outcome.sessions_per_sec(),
        outcome.elapsed_modeled.as_secs_f64()
    );
}
