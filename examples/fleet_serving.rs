//! Fleet serving: dozens of concurrent crane-simulator sessions on a pool of
//! *unequal* shards — priority admission with preemption, speed-weighted
//! placement, live session migration, fidelity tiering and simulator
//! recycling, end to end.
//!
//! ```text
//! cargo run --release --example fleet_serving
//! ```

use cod_fleet::{
    run_fleet_traced, ExecutionMode, FleetConfig, ObsConfig, PlacementPolicy, Priority,
    ShardConfig, WorkloadConfig,
};

fn main() {
    // One double-speed machine plus three half-speed ones — the paper's
    // premise (commodity desktop PCs) taken seriously: they are never equal.
    let config = FleetConfig {
        shards: 4,
        shard: ShardConfig {
            slots: 4,
            batch_frames: 8,
            pool_per_shape: 2,
            ..ShardConfig::default()
        },
        shard_speeds: vec![2.0, 0.5, 0.5, 0.5],
        placement: PlacementPolicy::SpeedWeighted,
        preemption: true,
        migration: true,
        tiering: true,
        max_pending: 16,
        workload: WorkloadConfig {
            sessions: 48,
            seed: 0xC0D,
            base_frames: 48,
            mean_interarrival_ticks: 1,
        },
        execution: ExecutionMode::WallClock { threads: 4 },
        obs: ObsConfig::Full,
    };

    println!(
        "serving {} sessions (priority x operator x GPU x channels x fault-plan mix, seed {:#x})",
        config.workload.sessions, config.workload.seed
    );
    println!(
        "fleet: {} shards (speeds {:?}) x {} slots, {} frames per session per tick, queue bound {}",
        config.shards,
        config.shard_speeds,
        config.shard.slots,
        config.shard.batch_frames,
        config.max_pending
    );
    println!(
        "policies: speed-weighted placement, preemption on, live migration on, fidelity tiering on\n"
    );

    let (outcome, wall, traces) = run_fleet_traced(&config).expect("fleet drains");
    let report = cod_fleet::FleetReport::from_outcome(&outcome);
    print!("{}", report.render_table());

    println!("\nfirst and last sessions through the door:");
    for s in outcome.sessions.iter().take(3).chain(outcome.sessions.iter().rev().take(2).rev()) {
        println!(
            "  {:<32} shard {} | arrived t{:<3} done t{:<3} | {} frames | score {:>5.1}{}{}{}",
            s.name,
            s.shard,
            s.arrived_tick,
            s.completed_tick,
            s.frames,
            s.score,
            if s.preempted > 0 { " | preempted" } else { "" },
            if s.migrated > 0 { " | migrated" } else { "" },
            if s.demoted > 0 { " | demoted" } else { "" },
        );
    }

    let recycled: u64 = outcome.shard_stats.iter().map(|s| s.sims_recycled).sum();
    let built: u64 = outcome.shard_stats.iter().map(|s| s.sims_built).sum();
    println!(
        "\n{} sessions served by {} built racks ({} recycled through reset_for_session)",
        outcome.completed, built, recycled
    );
    println!(
        "{} preemptions, {} live migrations, {} promotions, {} demotions; interactive p95 {:.1} \
         ticks vs batch p95 {:.1}",
        outcome.preempted,
        outcome.migrated,
        outcome.promoted,
        outcome.demoted,
        outcome.latency_percentile_ticks_for(Some(Priority::Interactive), 95.0),
        outcome.latency_percentile_ticks_for(Some(Priority::Batch), 95.0),
    );
    println!(
        "modeled throughput {:.2} sessions/s over {:.1} s of serving time",
        outcome.sessions_per_sec(),
        outcome.elapsed_modeled.as_secs_f64()
    );
    println!(
        "wall clock: {:.2} sessions/s over {:.2} s real on {} worker threads \
         (outcome identical at any thread count)",
        wall.sessions_per_wall_sec(outcome.completed),
        wall.wall.as_secs_f64(),
        wall.threads,
    );

    // Observability artifacts: the Perfetto trace of this run plus the
    // deterministic metrics aggregate (identical bytes every run of this
    // seed — open the trace in https://ui.perfetto.dev or about://tracing).
    let trace = traces.wall.expect("obs: Full arms the wall sink");
    let det = traces.det.expect("obs: Full arms the deterministic sink");
    std::fs::create_dir_all("target/obs").expect("create target/obs");
    let trace_path = "target/obs/fleet_serving_trace.json";
    std::fs::write(trace_path, trace.to_chrome_json().to_pretty()).expect("write trace");
    println!("\nperfetto trace: {trace_path} ({} events)", trace.event_count());
    println!(
        "obs metrics: {} frames stepped in {} lockstep cohorts ({} memo hits / {} misses)",
        det.counter("frames_stepped"),
        det.counter("cohorts_stepped"),
        det.counter("memo_hits"),
        det.counter("memo_misses"),
    );
    println!(
        "obs events: {} placements, {} rejections, {} preemptions, {} migrations",
        det.events_of("place"),
        det.events_of("reject"),
        det.events_of("preempt"),
        det.events_of("migrate"),
    );
    let makespan = det.histogram("tick_makespan_us").expect("per-tick histogram");
    println!(
        "obs tick makespan: mean {:.0} us, min {} us, max {} us over {} ticks",
        makespan.mean(),
        makespan.min(),
        makespan.max(),
        makespan.count(),
    );
    println!("obs fingerprint: {:#018x} (byte-stable per seed)", det.fingerprint());
}
