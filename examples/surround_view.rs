//! The three-channel surround view (experiments E1 and E7): renders real images of
//! the training world with the software rasterizer and prints the frame-rate
//! table the paper's §4 reports a single point of (16 fps at 3 235 polygons).
//!
//! ```text
//! cargo run --release --example surround_view
//! ```

use crane_scene::world::TrainingWorld;
use render_sim::{Camera, GpuCostModel, SurroundView};
use sim_math::Vec3;

fn main() {
    let world = TrainingWorld::build();
    println!("training world: {} polygons (paper: 3 235)", world.polygon_count());

    // Render one frame of each channel to a PPM screenshot under target/
    // (screenshots are build artifacts, not repository content).
    let out_dir = std::path::Path::new("target").join("surround");
    std::fs::create_dir_all(&out_dir).expect("output directory created");
    let mut view = SurroundView::new(3, 320, 240, 120f64.to_radians());
    let camera = Camera::look_at(Vec3::new(0.0, 5.0, -55.0), Vec3::new(0.0, 2.0, 40.0));
    let stats = view.render(&world.scene, &camera);
    for (channel, channel_stats) in stats.channels.iter().enumerate() {
        let path = out_dir.join(format!("surround_channel_{channel}.ppm"));
        std::fs::write(&path, view.renderer(channel).framebuffer().to_ppm())
            .expect("screenshot written");
        println!(
            "channel {channel}: {} triangles submitted, {} drawn, {} px -> {} ({})",
            channel_stats.triangles_submitted,
            channel_stats.triangles_drawn,
            channel_stats.pixels_written,
            stats.channel_times[channel],
            path.display(),
        );
    }
    println!(
        "synchronized: {:.1} fps   free-running: {:.1} fps   sync overhead: {:.1}%",
        stats.synchronized_fps(),
        stats.free_running_fps(),
        stats.sync_overhead_fraction() * 100.0
    );

    // E1/E2: frame rate vs polygon budget, TNT2-class vs next-generation hardware.
    println!("\n  polygons | TNT2 sync fps | TNT2 free fps | next-gen sync fps");
    println!("  ---------+---------------+---------------+------------------");
    for polygons in [500usize, 1_000, 2_000, 3_235, 5_000, 8_000, 12_000, 20_000] {
        let old = SurroundView::paper_configuration();
        let mut new = SurroundView::paper_configuration();
        new.set_cost_model(GpuCostModel::next_generation());
        let old_est = old.estimate(polygons);
        let new_est = new.estimate(polygons);
        println!(
            "  {polygons:>8} | {:>13.1} | {:>13.1} | {:>17.1}",
            old_est.synchronized_fps(),
            old_est.free_running_fps(),
            new_est.synchronized_fps()
        );
    }
}
