//! The licensing exam of Figure 9: a scripted trainee drives the crane to the
//! testing ground, lifts the cargo and carries it along the barred trajectory.
//!
//! ```text
//! cargo run --release --example licensing_exam
//! ```

use crane_sim::{CraneSimulator, OperatorKind, SimulatorConfig};

fn main() {
    let config = SimulatorConfig {
        operator: OperatorKind::Exam,
        exam_frames: 0, // driven manually below
        cargo_mass_kg: 1_200.0,
        ..SimulatorConfig::default()
    };
    let mut simulator = CraneSimulator::new(config).expect("simulator builds");
    let course = simulator.course();
    println!(
        "licensing exam: {:.0} m driving leg, {} bars on the cargo trajectory",
        course.driving_distance(),
        course.bars.len()
    );

    let mut last_phase = String::new();
    // Up to five simulated minutes at the 16 fps executive rate.
    for chunk in 0..60 {
        simulator.run_frames(80).expect("frames run");
        let snap = simulator.snapshot();
        if snap.scenario.phase != last_phase {
            println!(
                "t = {:6.1} s  phase -> {:<9} score {:3.0}  crane at ({:6.1}, {:6.1})",
                snap.scenario.elapsed,
                snap.scenario.phase,
                snap.scenario.score,
                snap.crane.chassis_position.x,
                snap.crane.chassis_position.z,
            );
            last_phase = snap.scenario.phase.clone();
        }
        if snap.scenario.complete {
            break;
        }
        if chunk == 59 {
            println!("time budget exhausted before completion (phase {})", snap.scenario.phase);
        }
    }

    let report = simulator.report();
    println!("\n--- exam result ----------------------------------------------");
    println!("final phase : {}", report.phase);
    println!("score       : {:.0}", report.score);
    println!("bar hits    : {}", report.bar_hits);
    println!("passed      : {}", if report.passed { "YES" } else { "no" });
    println!("hook swing  : {:.2} m (max)", report.max_hook_swing);
    println!("collisions  : {}", report.collisions);
}
