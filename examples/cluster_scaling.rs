//! Cluster scaling (experiment E8): what frame rate the seven-module simulator
//! can sustain on one desktop PC versus on the eight-computer COD, and how the
//! load-balancer packs the modules onto intermediate cluster sizes.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use cod_cluster::{balance_load, LpLoad, PipelineModel, StageCost};
use cod_net::Micros;
use crane_sim::{CraneSimulator, OperatorKind, SimulatorConfig};

fn main() {
    // Measured module costs (the `last_step_cost` each module reports).
    let stages = vec![
        StageCost::new("visual-0", Micros::from_millis(60)),
        StageCost::new("visual-1", Micros::from_millis(60)),
        StageCost::new("visual-2", Micros::from_millis(60)),
        StageCost::new("sync-server", Micros(500)),
        StageCost::new("dynamics", Micros::from_millis(15)),
        StageCost::new("dashboard", Micros::from_millis(2)),
        StageCost::new("scenario", Micros::from_millis(1)),
        StageCost::new("instructor", Micros::from_millis(2)),
        StageCost::new("audio", Micros::from_millis(3)),
        StageCost::new("motion-platform", Micros::from_millis(6)),
    ];
    let model = PipelineModel::new(stages.clone(), Micros(200));
    println!("analytic pipeline model");
    println!(
        "  sequential (one PC) period : {}  ({:.1} fps)",
        model.sequential_period(),
        PipelineModel::fps(model.sequential_period())
    );
    println!(
        "  fully pipelined period     : {}  ({:.1} fps)",
        model.fully_pipelined_period(),
        PipelineModel::fps(model.fully_pipelined_period())
    );
    println!("  throughput speedup         : {:.2}x", model.speedup());

    println!("\n  computers | frame period | fps  (load-balanced placement)");
    println!("  ----------+--------------+------");
    for computers in 1..=8 {
        let loads: Vec<LpLoad> = stages.iter().map(|s| LpLoad::new(&s.name, s.cost)).collect();
        let placement = balance_load(&loads, computers);
        println!(
            "  {computers:>9} | {:>12} | {:>5.1}",
            placement.makespan,
            placement.achievable_fps(Micros::ZERO.max(Micros(1)))
        );
    }

    // Measured on the actual simulator: the executive records per-computer costs.
    println!("\nmeasured with the full simulator (idle operator, 120 frames)...");
    let mut simulator = CraneSimulator::new(SimulatorConfig {
        operator: OperatorKind::Idle,
        exam_frames: 120,
        ..SimulatorConfig::default()
    })
    .expect("simulator builds");
    simulator.run().expect("session runs");
    let report = simulator.report();
    println!("  eight-computer COD : {:5.1} fps", report.cluster_fps);
    println!("  single desktop PC  : {:5.1} fps", report.sequential_fps);
    println!("  measured speedup   : {:.2}x", report.cluster_fps / report.sequential_fps.max(1e-9));
}
