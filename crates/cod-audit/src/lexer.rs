//! A hand-rolled Rust surface lexer, just deep enough for line-oriented
//! auditing: it splits every source line into its *code* text and its
//! *comment* text, masking out string/char literal contents on the way.
//!
//! The vendored toolchain has no `syn` (the build environment cannot reach
//! crates.io), so — in the house style of `cod-json` — the lexer is a small
//! byte-level state machine instead of a parser. It understands exactly the
//! token classes that can hide rule text from a naive `grep`:
//!
//! * line comments (`//`, incl. doc comments) and block comments
//!   (`/* ... */`) **with nesting**, both routed to the comment channel;
//! * string literals (`"..."` with escapes), byte strings (`b"..."`), raw
//!   strings (`r"..."`, `r#"..."#`, any number of `#` fence characters) and
//!   raw byte strings (`br#"..."#`) — interiors are dropped from the code
//!   channel, so `"Instant"` inside a literal never triggers a rule;
//! * char literals (`'x'`, `'\n'`, `'\u{2603}'`) versus lifetimes (`'a`,
//!   `'static`), disambiguated by lookahead;
//! * raw identifiers (`r#fn`), which must *not* open a raw string.
//!
//! Multi-line tokens (block comments, multi-line strings) carry their state
//! across lines; the per-line split is what the rule engine consumes, since
//! every rule and every `audit:allow` waiver is line-addressed.

/// One source line, split into its two channels. Either channel may be
/// empty; literal interiors appear in neither.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Line {
    /// The line's code text: everything outside comments, with string and
    /// char literal interiors masked (delimiters are kept, so `"x"` shows
    /// as `""`).
    pub code: String,
    /// The line's comment text, both `//` and `/* */` flavors, markers
    /// included.
    pub comment: String,
}

/// Lexer state that survives a newline.
enum State {
    Code,
    BlockComment { depth: u32 },
    Str { raw_hashes: Option<u32>, escaped: bool },
}

/// Splits `source` into per-line code/comment channels. Never fails: on
/// text that is not valid Rust the split degrades gracefully (an unclosed
/// literal simply masks the rest of the file), which is the right behavior
/// for a linter that must not crash on a broken tree.
pub fn split_lines(source: &str) -> Vec<Line> {
    let bytes = source.as_bytes();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            // A newline ends the line in every state; line comments die
            // with it, block comments and strings persist.
            // Strings (raw or not) stay open across the newline: rustc
            // would reject an illegally-split literal anyway, and masking
            // more can only *hide* rule text, never invent it.
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    // Line comment: consume to end of line into the
                    // comment channel.
                    while i < bytes.len() && bytes[i] != b'\n' {
                        line.comment.push(bytes[i] as char);
                        i += 1;
                    }
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    line.comment.push_str("/*");
                    state = State::BlockComment { depth: 1 };
                    i += 2;
                }
                b'"' => {
                    line.code.push('"');
                    state = State::Str { raw_hashes: None, escaped: false };
                    i += 1;
                }
                b'r' | b'b' if !prev_is_ident(&line.code) => {
                    // Possible raw string / byte string / byte char
                    // prefix. Only enter literal state when the full
                    // opening sequence is present; `r#fn` (raw
                    // identifier) and plain identifiers fall through.
                    if let Some((advance, hashes)) = raw_string_open(&bytes[i..]) {
                        for _ in 0..advance {
                            line.code.push(bytes[i] as char);
                            i += 1;
                        }
                        state = State::Str { raw_hashes: Some(hashes), escaped: false };
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        line.code.push_str("b\"");
                        state = State::Str { raw_hashes: None, escaped: false };
                        i += 2;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                        line.code.push('b');
                        i += 1; // The `'` is handled by the char-literal arm.
                    } else {
                        line.code.push(b as char);
                        i += 1;
                    }
                }
                b'\'' => {
                    i = lex_quote(bytes, i, &mut line.code);
                }
                _ => {
                    line.code.push(b as char);
                    i += 1;
                }
            },
            State::BlockComment { depth } => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    line.comment.push_str("*/");
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    line.comment.push_str("/*");
                    state = State::BlockComment { depth: depth + 1 };
                    i += 2;
                } else {
                    line.comment.push(b as char);
                    i += 1;
                }
            }
            State::Str { raw_hashes, escaped } => {
                match raw_hashes {
                    None => {
                        if escaped {
                            state = State::Str { raw_hashes, escaped: false };
                        } else if b == b'\\' {
                            state = State::Str { raw_hashes, escaped: true };
                        } else if b == b'"' {
                            line.code.push('"');
                            state = State::Code;
                        }
                    }
                    Some(hashes) => {
                        // A raw string closes on `"` followed by exactly
                        // its fence of `#`s.
                        if b == b'"' && fence_follows(&bytes[i + 1..], hashes) {
                            line.code.push('"');
                            for _ in 0..hashes {
                                line.code.push('#');
                            }
                            i += hashes as usize;
                            state = State::Code;
                        }
                    }
                }
                i += 1;
            }
        }
    }
    lines.push(line);
    lines
}

/// Whether the last byte pushed to the code channel is an identifier char —
/// if so, a following `r`/`b` is part of that identifier, not a literal
/// prefix.
fn prev_is_ident(code: &str) -> bool {
    code.bytes().last().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Matches a raw-string opener (`r"`, `r##"`, `br#"`, ...) at the start of
/// `rest`. Returns the opener length in bytes and its `#` fence count.
fn raw_string_open(rest: &[u8]) -> Option<(usize, u32)> {
    let mut i = 0;
    if rest.get(i) == Some(&b'b') {
        i += 1;
    }
    if rest.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0u32;
    while rest.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if rest.get(i) == Some(&b'"') {
        Some((i + 1, hashes))
    } else {
        None
    }
}

/// Whether `rest` starts with `hashes` consecutive `#` bytes.
fn fence_follows(rest: &[u8], hashes: u32) -> bool {
    let n = hashes as usize;
    rest.len() >= n && rest[..n].iter().all(|b| *b == b'#')
}

/// Lexes a `'` at `bytes[i]`: either a char literal (masked like a string)
/// or a lifetime (left in the code channel untouched). Returns the index of
/// the first byte after the consumed token.
fn lex_quote(bytes: &[u8], i: usize, code: &mut String) -> usize {
    debug_assert_eq!(bytes[i], b'\'');
    // Escaped char literal: `'\n'`, `'\u{2603}'`, `'\''` ...
    if bytes.get(i + 1) == Some(&b'\\') {
        code.push_str("''");
        let mut j = i + 2;
        let mut escaped = true;
        while j < bytes.len() && bytes[j] != b'\n' {
            if escaped {
                escaped = false;
            } else if bytes[j] == b'\\' {
                escaped = true;
            } else if bytes[j] == b'\'' {
                return j + 1;
            }
            j += 1;
        }
        return j;
    }
    // Unescaped: `'X'` is a char literal when a closing quote follows one
    // scalar; anything else (`'a`, `'static`, `<'a>`) is a lifetime.
    if let Some(&next) = bytes.get(i + 1) {
        let scalar_len = utf8_len(next);
        if bytes.get(i + 1 + scalar_len) == Some(&b'\'') {
            code.push_str("''");
            return i + scalar_len + 2;
        }
    }
    code.push('\'');
    i + 1
}

/// Byte length of the UTF-8 scalar starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(source: &str) -> Vec<String> {
        split_lines(source).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comment_goes_to_the_comment_channel() {
        let lines = split_lines("let x = 1; // Instant::now()");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, "// Instant::now()");
    }

    #[test]
    fn nested_block_comments_stay_comments_to_the_outer_close() {
        let src = "a /* one /* two */ still comment */ b\nc";
        let lines = split_lines(src);
        assert_eq!(lines[0].code, "a  b");
        assert!(lines[0].comment.contains("still comment"));
        assert_eq!(lines[1].code, "c");
    }

    #[test]
    fn multi_line_block_comment_carries_state() {
        let src = "code(); /* open\nInstant::now()\n*/ after();";
        let lines = split_lines(src);
        assert_eq!(lines[0].code, "code(); ");
        assert_eq!(lines[1].code, "");
        assert!(lines[1].comment.contains("Instant::now()"));
        assert_eq!(lines[2].code, " after();");
    }

    #[test]
    fn string_interiors_are_masked() {
        assert_eq!(codes(r#"let s = "HashMap in a string";"#), vec![r#"let s = "";"#]);
        assert_eq!(codes(r#"let s = "esc \" Instant \\";"#), vec![r#"let s = "";"#]);
        assert_eq!(codes(r#"let b = b"SystemTime";"#), vec![r#"let b = b"";"#]);
    }

    #[test]
    fn raw_strings_with_fences_are_masked() {
        assert_eq!(codes(r##"let s = r"thread_rng";"##), vec![r#"let s = r"";"#]);
        assert_eq!(codes(r###"let s = r#"elapsed( "quoted" "#;"###), vec![r###"let s = r#""#;"###]);
        assert_eq!(
            codes(r####"let s = br##"unsafe { }"##;"####),
            vec![r####"let s = br##""##;"####]
        );
    }

    #[test]
    fn raw_string_spans_lines() {
        let src = "let s = r#\"one\nInstant::now()\ntwo\"#; done();";
        let lines = split_lines(src);
        assert_eq!(lines[0].code, "let s = r#\"");
        assert_eq!(lines[1].code, "");
        assert_eq!(lines[2].code, "\"#; done();");
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        assert_eq!(codes("let r#fn = 1;"), vec!["let r#fn = 1;"]);
    }

    #[test]
    fn identifier_ending_in_r_or_b_does_not_open_a_literal() {
        assert_eq!(codes(r#"for chr"#), vec!["for chr"]);
        assert_eq!(codes("let numb = 2;"), vec!["let numb = 2;"]);
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        assert_eq!(codes("let c = 'H'; let d = '\\n';"), vec!["let c = ''; let d = '';"]);
        assert_eq!(codes("fn f<'a>(x: &'a str) {}"), vec!["fn f<'a>(x: &'a str) {}"]);
        assert_eq!(codes("let q = '\\'';"), vec!["let q = '';"]);
        assert_eq!(codes("let u = 'µ';"), vec!["let u = '';"]);
        assert_eq!(codes("&'static str"), vec!["&'static str"]);
    }

    #[test]
    fn comment_markers_inside_strings_are_inert() {
        let lines = split_lines(r#"let s = "// not a comment"; real();"#);
        assert_eq!(lines[0].code, r#"let s = ""; real();"#);
        assert_eq!(lines[0].comment, "");
    }

    #[test]
    fn string_quotes_inside_comments_are_inert() {
        let lines = split_lines("// \"open\nlet x = 1;");
        assert_eq!(lines[1].code, "let x = 1;");
    }

    #[test]
    fn empty_source_yields_one_empty_line() {
        let lines = split_lines("");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0], Line::default());
    }
}
