//! The determinism rule set: what the contract bans, where, and why.
//!
//! Every rule is a *line-addressed* check over the lexer's code channel
//! (comments and literal interiors are already stripped, so rule text inside
//! a string or doc comment never fires). The rules encode the workspace's
//! determinism contract — same seed ⇒ byte-identical `FLEET_cod.json` /
//! `OBS_cod.json` under every execution mode — as source-level bans:
//!
//! | code | id                      | ban                                       |
//! |------|-------------------------|-------------------------------------------|
//! | R1   | `wall-clock`            | `Instant` / `SystemTime` / `.elapsed(`    |
//! | R2   | `unordered-collections` | `HashMap` / `HashSet` iteration order     |
//! | R3   | `ambient-randomness`    | OS-seeded RNG constructors                |
//! | R4   | `undocumented-unsafe`   | `unsafe {` without a `// SAFETY:` comment |
//! | R5   | `thread-spawn`          | threads outside the executor pool         |
//! | R6   | `ambient-env`           | `std::env` / `std::time` in fingerprint   |
//! |      |                         | modules                                   |
//!
//! R1–R5 run on every audited file (R1 and R5 have checked-in allowlists in
//! `audit.toml`); R6 runs only on the fingerprint-feeding modules the config
//! names. Matching is word-bounded, so `InstantLike` or `elapsed_frames`
//! never false-positive.

use crate::lexer::Line;

/// One determinism rule. The order here is the R1..R6 numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no wall-clock reads outside the allowlisted wall half.
    WallClock,
    /// R2: no iteration-order-unstable collections.
    UnorderedCollections,
    /// R3: no OS-entropy-seeded randomness anywhere.
    AmbientRandomness,
    /// R4: every `unsafe` block carries a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// R5: no thread creation outside the work-stealing executor.
    ThreadSpawn,
    /// R6: no environment or clock reads in fingerprint-feeding modules.
    AmbientEnv,
}

impl Rule {
    /// Every rule, in R1..R6 order.
    pub const ALL: [Rule; 6] = [
        Rule::WallClock,
        Rule::UnorderedCollections,
        Rule::AmbientRandomness,
        Rule::UndocumentedUnsafe,
        Rule::ThreadSpawn,
        Rule::AmbientEnv,
    ];

    /// The stable kebab-case id used in `audit:allow(...)` and `audit.toml`.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedCollections => "unordered-collections",
            Rule::AmbientRandomness => "ambient-randomness",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::AmbientEnv => "ambient-env",
        }
    }

    /// The short `R<n>` code used in diagnostics.
    pub fn code(&self) -> &'static str {
        match self {
            Rule::WallClock => "R1",
            Rule::UnorderedCollections => "R2",
            Rule::AmbientRandomness => "R3",
            Rule::UndocumentedUnsafe => "R4",
            Rule::ThreadSpawn => "R5",
            Rule::AmbientEnv => "R6",
        }
    }

    /// Resolves a rule from its id or its `R<n>` code.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == name || r.code() == name)
    }

    /// The word-bounded patterns the rule bans in code text. Empty for R4,
    /// whose check is structural rather than a pattern match.
    fn patterns(&self) -> &'static [&'static str] {
        match self {
            Rule::WallClock => &["Instant", "SystemTime", "elapsed("],
            Rule::UnorderedCollections => &["HashMap", "HashSet"],
            Rule::AmbientRandomness => &["thread_rng", "from_entropy", "from_os_rng", "OsRng"],
            Rule::UndocumentedUnsafe => &[],
            Rule::ThreadSpawn => &["thread::spawn", "thread::Builder"],
            Rule::AmbientEnv => &["std::env", "std::time"],
        }
    }

    /// Why the matched text violates the determinism contract.
    fn rationale(&self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock reads vary run to run; deterministic code uses modeled time \
                 (allowlist the file in audit.toml only if nothing here feeds a fingerprint)"
            }
            Rule::UnorderedCollections => {
                "iteration order is randomized per process; use BTreeMap/BTreeSet or a Vec \
                 so anything folded or printed from it is stable"
            }
            Rule::AmbientRandomness => {
                "OS-entropy seeding breaks replay; every RNG must be seeded from the run's \
                 seed (SeedableRng::seed_from_u64 or a derived stream)"
            }
            Rule::UndocumentedUnsafe => {
                "every unsafe block must state its proof obligation in a `// SAFETY:` \
                 comment on the line or the lines directly above"
            }
            Rule::ThreadSpawn => {
                "threads outside cod-fleet's executor bypass the shard-id fold-order proof; \
                 route work through the work-stealing pool"
            }
            Rule::AmbientEnv => {
                "this module feeds a fingerprinted report; environment and clock reads make \
                 its bytes depend on who ran it and when"
            }
        }
    }
}

/// One raw rule hit, before waivers and allowlists are applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based source line of the hit.
    pub line: usize,
    /// The rule violated.
    pub rule: Rule,
    /// Diagnostic text: what matched and why it is banned.
    pub message: String,
}

/// Scans a lexed file against every rule. `fingerprint_module` arms R6,
/// which only applies to the report/obs modules named in `audit.toml`.
/// At most one violation per rule per line is reported.
pub fn scan(lines: &[Line], fingerprint_module: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    for (index, line) in lines.iter().enumerate() {
        for rule in Rule::ALL {
            if rule == Rule::AmbientEnv && !fingerprint_module {
                continue;
            }
            if let Some(pattern) = rule.patterns().iter().find(|p| find_word(&line.code, p)) {
                out.push(Violation {
                    line: index + 1,
                    rule,
                    message: format!("`{pattern}`: {}", rule.rationale()),
                });
            }
        }
    }
    out.extend(scan_unsafe(lines));
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// R4: finds `unsafe` blocks (`unsafe` keyword whose next code token is
/// `{`) lacking a `SAFETY:` comment on the same line or on the run of
/// code-free lines directly above.
fn scan_unsafe(lines: &[Line]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (index, line) in lines.iter().enumerate() {
        let mut search_from = 0;
        while let Some(at) = find_word_at(&line.code[search_from..], "unsafe") {
            let after = search_from + at + "unsafe".len();
            search_from = after;
            if !brace_follows(lines, index, after) {
                continue; // `unsafe fn` / `unsafe impl` declare, not enter.
            }
            let documented = safety_comment_covers(lines, index);
            if !documented {
                out.push(Violation {
                    line: index + 1,
                    rule: Rule::UndocumentedUnsafe,
                    message: format!("`unsafe {{`: {}", Rule::UndocumentedUnsafe.rationale()),
                });
                break; // One report per line is enough.
            }
        }
    }
    out
}

/// Whether the first non-whitespace code byte at or after `from` on line
/// `index` (spilling onto following lines) is `{`.
fn brace_follows(lines: &[Line], index: usize, from: usize) -> bool {
    let mut rest = lines[index].code[from..].trim_start();
    let mut next_line = index + 1;
    while rest.is_empty() && next_line < lines.len() {
        rest = lines[next_line].code.trim_start();
        next_line += 1;
    }
    rest.starts_with('{')
}

/// Whether line `index` or the code-free lines directly above it carry a
/// `SAFETY:` comment.
fn safety_comment_covers(lines: &[Line], index: usize) -> bool {
    if lines[index].comment.contains("SAFETY:") {
        return true;
    }
    for line in lines[..index].iter().rev() {
        if !line.code.trim().is_empty() {
            return false;
        }
        if line.comment.contains("SAFETY:") {
            return true;
        }
    }
    false
}

/// Word-bounded substring search: the match may not be flanked by
/// identifier characters on a side where the pattern itself starts/ends
/// with one.
fn find_word(code: &str, pattern: &str) -> bool {
    find_word_at(code, pattern).is_some()
}

/// [`find_word`], returning the byte offset of the first match.
fn find_word_at(code: &str, pattern: &str) -> Option<usize> {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(pattern).map(|i| from + i) {
        let left_ok = !pattern.starts_with(|c: char| is_ident(c as u8))
            || at == 0
            || !is_ident(bytes[at - 1]);
        let right_ok = !pattern.ends_with(|c: char| is_ident(c as u8))
            || at + pattern.len() >= bytes.len()
            || !is_ident(bytes[at + pattern.len()]);
        if left_ok && right_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_lines;

    fn rules_hit(source: &str, fingerprint: bool) -> Vec<(usize, &'static str)> {
        scan(&split_lines(source), fingerprint).into_iter().map(|v| (v.line, v.rule.id())).collect()
    }

    #[test]
    fn wall_clock_patterns_fire_word_bounded() {
        assert_eq!(rules_hit("let t = Instant::now();", false), vec![(1, "wall-clock")]);
        assert_eq!(rules_hit("let d = start.elapsed();", false), vec![(1, "wall-clock")]);
        // Not word matches: different identifiers.
        assert!(rules_hit("struct Instantaneous;", false).is_empty());
        assert!(rules_hit("let elapsed_frames = 3; elapsed_frames(", false).is_empty());
    }

    #[test]
    fn rule_text_in_strings_and_comments_does_not_fire() {
        assert!(rules_hit(r#"let s = "Instant::now() HashMap unsafe {";"#, true).is_empty());
        assert!(rules_hit("// HashMap is banned\nlet x = 1;", true).is_empty());
        assert!(rules_hit("/* thread::spawn(\n SystemTime */ fine();", true).is_empty());
    }

    #[test]
    fn unordered_collections_fire() {
        assert_eq!(
            rules_hit("use std::collections::HashMap;", false),
            vec![(1, "unordered-collections")]
        );
        assert_eq!(
            rules_hit("let s: HashSet<u32> = x;", false),
            vec![(1, "unordered-collections")]
        );
        assert!(rules_hit("use std::collections::BTreeMap;", false).is_empty());
    }

    #[test]
    fn ambient_randomness_fires() {
        assert_eq!(
            rules_hit("let mut rng = rand::thread_rng();", false)[0].1,
            "ambient-randomness"
        );
        assert_eq!(rules_hit("let r = StdRng::from_entropy();", false)[0].1, "ambient-randomness");
        assert!(rules_hit("let r = StdRng::seed_from_u64(7);", false).is_empty());
    }

    #[test]
    fn undocumented_unsafe_block_fires_documented_passes() {
        assert_eq!(rules_hit("let x = unsafe { *p };", false), vec![(1, "undocumented-unsafe")]);
        assert!(rules_hit(
            "// SAFETY: p outlives x per the pool contract.\nlet x = unsafe { *p };",
            false
        )
        .is_empty());
        assert!(rules_hit("let x = unsafe { *p }; // SAFETY: same line works.", false).is_empty());
        // A blank comment-only run above still covers.
        assert!(rules_hit("// SAFETY: covered.\n\nunsafe { go(); }", false).is_empty());
        // Intervening code breaks the cover.
        assert_eq!(
            rules_hit("// SAFETY: stale.\nlet y = 2;\nunsafe { go(); }", false),
            vec![(3, "undocumented-unsafe")]
        );
    }

    #[test]
    fn unsafe_declarations_are_not_blocks() {
        assert!(rules_hit("unsafe fn raw_read(p: *const u8) -> u8 { *p }", false).is_empty());
        assert!(rules_hit("unsafe impl Send for Pool {}", false).is_empty());
        // Brace on the next line still counts as a block.
        assert_eq!(rules_hit("let x = unsafe\n{ *p };", false), vec![(1, "undocumented-unsafe")]);
    }

    #[test]
    fn thread_spawn_fires() {
        assert_eq!(rules_hit("std::thread::spawn(|| {});", false)[0].1, "thread-spawn");
        assert_eq!(rules_hit("thread::Builder::new()", false)[0].1, "thread-spawn");
        assert!(rules_hit("my_thread::spawner()", false).is_empty());
    }

    #[test]
    fn ambient_env_only_in_fingerprint_modules() {
        let src = "let v = std::env::var(\"X\");";
        assert_eq!(rules_hit(src, true), vec![(1, "ambient-env")]);
        assert!(rules_hit(src, false).is_empty());
        assert_eq!(rules_hit("use std::time::SystemTime;", true).len(), 2); // R1 + R6.
    }

    #[test]
    fn one_report_per_rule_per_line() {
        assert_eq!(rules_hit("let a = (Instant::now(), SystemTime::now());", false).len(), 1);
    }

    #[test]
    fn rule_names_resolve_both_ways() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.id()), Some(rule));
            assert_eq!(Rule::from_name(rule.code()), Some(rule));
        }
        assert_eq!(Rule::from_name("nonsense"), None);
    }
}
