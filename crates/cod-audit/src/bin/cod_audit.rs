//! Runs the workspace determinism audit and writes `AUDIT_cod.json`.
//!
//! ```text
//! cargo run --release -p cod-audit --bin cod_audit [-- --quick] \
//!     [--root DIR] [--config PATH] [--out PATH]
//! ```
//!
//! Walks every `.rs` file under the roots configured in `audit.toml`,
//! enforces rules R1..R6 (see the README's "Static analysis" table), prints
//! one rustc-style `file:line: rule [code]: message` diagnostic per hard
//! violation, writes the machine-readable per-rule summary, and exits
//! non-zero when the tree is not audit-clean. `--quick` suppresses the
//! per-rule table on a clean tree — the scan itself is always complete.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cod_audit::{audit_tree, AuditConfig};

const USAGE: &str = "usage: cod_audit [--quick] [--root DIR] [--config PATH] [--out PATH]";

struct Args {
    quick: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    out: Option<PathBuf>,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { quick: false, root: PathBuf::from("."), config: None, out: None, help: false };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--root" => {
                args.root = argv
                    .next()
                    .map(PathBuf::from)
                    .ok_or_else(|| format!("--root needs a directory\n{USAGE}"))?;
            }
            "--config" => {
                args.config = Some(
                    argv.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| format!("--config needs a path\n{USAGE}"))?,
                );
            }
            "--out" => {
                args.out = Some(
                    argv.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| format!("--out needs a path\n{USAGE}"))?,
                );
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the given `--root`, or the nearest ancestor of
/// the current directory holding an `audit.toml` (so the tool also works
/// from a crate subdirectory).
fn resolve_root(root: &Path) -> PathBuf {
    let mut dir = root.to_owned();
    loop {
        if dir.join("audit.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return root.to_owned();
        }
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let root =
        resolve_root(&std::fs::canonicalize(&args.root).unwrap_or_else(|_| args.root.clone()));
    let config_path = args.config.clone().unwrap_or_else(|| root.join("audit.toml"));
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|err| format!("cannot read {}: {err}", config_path.display()))?;
    let config = AuditConfig::parse(&config_text).map_err(|err| err.to_string())?;

    let report = audit_tree(&root, &config).map_err(|err| format!("audit walk failed: {err}"))?;
    print!("{}", report.render_text(args.quick));

    let out = args.out.clone().unwrap_or_else(|| root.join("AUDIT_cod.json"));
    std::fs::write(&out, report.to_json().to_pretty())
        .map_err(|err| format!("cannot write {}: {err}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(report.clean())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("cod-audit: {message}");
            ExitCode::FAILURE
        }
    }
}
