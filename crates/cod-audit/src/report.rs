//! Audit findings, rustc-style rendering and the `AUDIT_cod.json` summary.
//!
//! A finding carries its *disposition*: a hard `Violation`, a `Waived` hit
//! (an inline `// audit:allow(<rule>): <reason>` escape) or an
//! `Allowlisted` hit (a checked-in `[[allow]]` entry in `audit.toml`).
//! Waived and allowlisted findings never fail the audit but are always
//! counted — the per-rule totals in `AUDIT_cod.json` keep every escape
//! hatch visible, so a waiver sweep shows up in review diffs.

use std::fmt::Write as _;

use cod_json::Json;

use crate::rules::Rule;

/// Schema version of `AUDIT_cod.json`; bump on breaking layout changes.
pub const AUDIT_SCHEMA: &str = "cod-audit-v1";

/// How a rule hit was resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// A hard violation: fails the audit.
    Violation,
    /// Waived inline with `// audit:allow(<rule>): <reason>`.
    Waived {
        /// The reason given after the waiver's colon.
        reason: String,
    },
    /// Covered by a checked-in `[[allow]]` entry in `audit.toml`.
    Allowlisted {
        /// The entry's `reason` value.
        reason: String,
    },
}

/// One resolved rule hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Diagnostic text (what matched, why it is banned).
    pub message: String,
    /// How the hit was resolved.
    pub disposition: Disposition,
}

/// The whole audit's outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// Every finding, in (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

impl AuditReport {
    /// The hard violations only.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.disposition == Disposition::Violation)
    }

    /// Whether the tree is audit-clean (no hard violations).
    pub fn clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Per-rule (violations, waived, allowlisted) counts, in R1..R6 order.
    pub fn per_rule(&self) -> [(Rule, u64, u64, u64); 6] {
        let mut rows = [(Rule::WallClock, 0, 0, 0); 6];
        for (row, rule) in rows.iter_mut().zip(Rule::ALL) {
            row.0 = rule;
            for finding in self.findings.iter().filter(|f| f.rule == rule) {
                match finding.disposition {
                    Disposition::Violation => row.1 += 1,
                    Disposition::Waived { .. } => row.2 += 1,
                    Disposition::Allowlisted { .. } => row.3 += 1,
                }
            }
        }
        rows
    }

    /// Renders the human-readable audit output: one rustc-style
    /// `file:line: rule [code]: message` per violation, then a per-rule
    /// summary table (suppressed in `quick` mode when the tree is clean).
    pub fn render_text(&self, quick: bool) -> String {
        let mut out = String::new();
        for finding in self.violations() {
            let _ = writeln!(
                out,
                "{}:{}: {} [{}]: {}",
                finding.path,
                finding.line,
                finding.rule.id(),
                finding.rule.code(),
                finding.message
            );
        }
        let violations = self.violations().count();
        if !quick || violations > 0 {
            let _ = writeln!(out, "rule                        viol  waived  allowlisted");
            for (rule, viol, waived, allowed) in self.per_rule() {
                let _ = writeln!(
                    out,
                    "{} {:24}{:>5}{:>8}{:>13}",
                    rule.code(),
                    rule.id(),
                    viol,
                    waived,
                    allowed
                );
            }
        }
        let _ = writeln!(
            out,
            "cod-audit: {} files, {} violation(s), {} waived, {} allowlisted — {}",
            self.files_checked,
            violations,
            self.findings
                .iter()
                .filter(|f| matches!(f.disposition, Disposition::Waived { .. }))
                .count(),
            self.findings
                .iter()
                .filter(|f| matches!(f.disposition, Disposition::Allowlisted { .. }))
                .count(),
            if self.clean() { "clean" } else { "FAILED" }
        );
        out
    }

    /// Serializes the `AUDIT_cod.json` document: schema, file count,
    /// per-rule counts, every hard violation, and every escape hatch in
    /// use. Deterministic for an unchanged tree — the walk is sorted and
    /// nothing here reads a clock.
    pub fn to_json(&self) -> Json {
        let finding_json = |f: &Finding| {
            let mut members = vec![
                ("path".into(), Json::Str(f.path.clone())),
                ("line".into(), Json::Num(f.line as f64)),
                ("rule".into(), Json::Str(f.rule.id().into())),
                ("code".into(), Json::Str(f.rule.code().into())),
                ("message".into(), Json::Str(f.message.clone())),
            ];
            match &f.disposition {
                Disposition::Violation => {}
                Disposition::Waived { reason } => {
                    members.push(("waived".into(), Json::Str(reason.clone())));
                }
                Disposition::Allowlisted { reason } => {
                    members.push(("allowlisted".into(), Json::Str(reason.clone())));
                }
            }
            Json::Obj(members)
        };
        Json::Obj(vec![
            ("schema".into(), Json::Str(AUDIT_SCHEMA.into())),
            ("files_checked".into(), Json::Num(self.files_checked as f64)),
            ("clean".into(), Json::Bool(self.clean())),
            (
                "per_rule".into(),
                Json::Obj(
                    self.per_rule()
                        .into_iter()
                        .map(|(rule, viol, waived, allowed)| {
                            (
                                rule.id().to_owned(),
                                Json::Obj(vec![
                                    ("code".into(), Json::Str(rule.code().into())),
                                    ("violations".into(), Json::Num(viol as f64)),
                                    ("waived".into(), Json::Num(waived as f64)),
                                    ("allowlisted".into(), Json::Num(allowed as f64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("violations".into(), Json::Arr(self.violations().map(finding_json).collect())),
            (
                "escapes".into(),
                Json::Arr(
                    self.findings
                        .iter()
                        .filter(|f| f.disposition != Disposition::Violation)
                        .map(finding_json)
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditReport {
        AuditReport {
            findings: vec![
                Finding {
                    path: "crates/x/src/lib.rs".into(),
                    line: 3,
                    rule: Rule::WallClock,
                    message: "`Instant`: banned".into(),
                    disposition: Disposition::Violation,
                },
                Finding {
                    path: "crates/x/src/lib.rs".into(),
                    line: 9,
                    rule: Rule::ThreadSpawn,
                    message: "`thread::spawn`: banned".into(),
                    disposition: Disposition::Waived { reason: "test-only".into() },
                },
                Finding {
                    path: "crates/y/src/m.rs".into(),
                    line: 1,
                    rule: Rule::WallClock,
                    message: "`SystemTime`: banned".into(),
                    disposition: Disposition::Allowlisted { reason: "wall half".into() },
                },
            ],
            files_checked: 2,
        }
    }

    #[test]
    fn counts_split_by_disposition() {
        let report = sample();
        assert!(!report.clean());
        let rows = report.per_rule();
        assert_eq!(rows[0], (Rule::WallClock, 1, 0, 1));
        assert_eq!(rows[4], (Rule::ThreadSpawn, 0, 1, 0));
    }

    #[test]
    fn text_output_is_rustc_style() {
        let text = sample().render_text(false);
        assert!(text.contains("crates/x/src/lib.rs:3: wall-clock [R1]: `Instant`: banned"));
        assert!(text.contains("FAILED"));
        assert!(!text.contains("crates/x/src/lib.rs:9:"), "waived hits are not violations");
        let clean = AuditReport { findings: vec![], files_checked: 5 };
        assert!(clean.render_text(true).contains("clean"));
    }

    #[test]
    fn json_round_trips_and_counts_per_rule() {
        let doc = sample().to_json().to_pretty();
        let parsed = Json::parse(&doc).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(AUDIT_SCHEMA));
        assert_eq!(parsed.get("clean").and_then(Json::as_bool), Some(false));
        let wall = parsed.get("per_rule").and_then(|r| r.get("wall-clock")).unwrap();
        assert_eq!(wall.get("violations").and_then(Json::as_f64), Some(1.0));
        assert_eq!(wall.get("allowlisted").and_then(Json::as_f64), Some(1.0));
        assert_eq!(parsed.get("violations").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(parsed.get("escapes").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }
}
