//! The checked-in audit configuration (`audit.toml`), parsed by hand.
//!
//! Like the lexer, the parser is hand-rolled in the `cod-json` house style:
//! no TOML crate is reachable offline, so this module accepts exactly the
//! subset the config uses — comments, string values, (multi-line) string
//! arrays, `[[allow]]` entry tables and the `[rule.ambient-env]` section:
//!
//! ```toml
//! roots = ["crates", "tests", "examples", "vendor"]
//!
//! [rule.ambient-env]
//! paths = ["crates/cod-bench/src/report.rs"]
//!
//! [[allow]]
//! rule = "wall-clock"
//! path = "crates/cod-bench/src/measure.rs"
//! reason = "the measurement layer is the wall-clock fence"
//! ```
//!
//! Every `[[allow]]` entry must name a known rule, an in-tree path and a
//! non-empty reason — the config is itself part of the audit trail, so a
//! waiver without a reason is a parse error, not a silent pass.

use crate::rules::Rule;

/// One checked-in per-file waiver: `rule` findings in `path` are reported
/// as allowlisted (with `reason`) instead of as violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The waived rule.
    pub rule: Rule,
    /// Repo-relative file path the waiver covers.
    pub path: String,
    /// Why the waiver is sound. Required.
    pub reason: String,
}

/// The parsed audit configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Repo-relative directories whose `.rs` files are audited.
    pub roots: Vec<String>,
    /// Repo-relative files R6 (`ambient-env`) applies to: the modules whose
    /// output feeds a fingerprinted report.
    pub fingerprint_paths: Vec<String>,
    /// Checked-in per-file waivers.
    pub allows: Vec<AllowEntry>,
}

impl AuditConfig {
    /// Whether `path` (repo-relative) is one of R6's fingerprint modules.
    pub fn is_fingerprint_module(&self, path: &str) -> bool {
        self.fingerprint_paths.iter().any(|p| p == path)
    }

    /// The allowlist reason covering `rule` in `path`, if any.
    pub fn allow_reason(&self, rule: Rule, path: &str) -> Option<&str> {
        self.allows.iter().find(|a| a.rule == rule && a.path == path).map(|a| a.reason.as_str())
    }

    /// Parses the `audit.toml` text.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending line on any syntax
    /// the subset does not accept, an unknown rule name, or an `[[allow]]`
    /// entry missing one of its three keys.
    pub fn parse(text: &str) -> Result<AuditConfig, ConfigError> {
        Parser::new(text).parse()
    }
}

/// A configuration parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the error was detected at.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Which table the parser is currently filling.
enum Section {
    Top,
    Allow,
    AmbientEnv,
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    section: Section,
    config: AuditConfig,
    /// The `[[allow]]` entry under construction: (rule, path, reason).
    pending: Option<(Option<Rule>, Option<String>, Option<String>)>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            lines: text.lines().enumerate(),
            section: Section::Top,
            config: AuditConfig {
                roots: Vec::new(),
                fingerprint_paths: Vec::new(),
                allows: Vec::new(),
            },
            pending: None,
        }
    }

    fn parse(mut self) -> Result<AuditConfig, ConfigError> {
        while let Some((index, raw)) = self.lines.next() {
            let line = strip_comment(raw).trim().to_owned();
            let lineno = index + 1;
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                self.finish_allow(lineno)?;
                self.section = Section::Allow;
                self.pending = Some((None, None, None));
                continue;
            }
            if line.starts_with('[') {
                self.finish_allow(lineno)?;
                self.section = match line.as_str() {
                    "[rule.ambient-env]" => Section::AmbientEnv,
                    other => {
                        return Err(err(lineno, &format!("unknown section `{other}`")));
                    }
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
                .ok_or_else(|| err(lineno, "expected `key = value`"))?;
            match (&self.section, key.as_str()) {
                (Section::Top, "roots") => {
                    self.config.roots = self.parse_array(&value, lineno)?;
                }
                (Section::AmbientEnv, "paths") => {
                    self.config.fingerprint_paths = self.parse_array(&value, lineno)?;
                }
                (Section::Allow, "rule") => {
                    let name = parse_string(&value, lineno)?;
                    let rule = Rule::from_name(&name)
                        .ok_or_else(|| err(lineno, &format!("unknown rule `{name}`")))?;
                    self.pending_mut(lineno)?.0 = Some(rule);
                }
                (Section::Allow, "path") => {
                    let path = parse_string(&value, lineno)?;
                    self.pending_mut(lineno)?.1 = Some(path);
                }
                (Section::Allow, "reason") => {
                    let reason = parse_string(&value, lineno)?;
                    if reason.trim().is_empty() {
                        return Err(err(lineno, "allow reason must not be empty"));
                    }
                    self.pending_mut(lineno)?.2 = Some(reason);
                }
                _ => return Err(err(lineno, &format!("unexpected key `{key}` here"))),
            }
        }
        self.finish_allow(usize::MAX)?;
        Ok(self.config)
    }

    fn pending_mut(
        &mut self,
        lineno: usize,
    ) -> Result<&mut (Option<Rule>, Option<String>, Option<String>), ConfigError> {
        self.pending.as_mut().ok_or_else(|| err(lineno, "key outside an [[allow]] entry"))
    }

    /// Seals the `[[allow]]` entry under construction, requiring all three
    /// keys.
    fn finish_allow(&mut self, lineno: usize) -> Result<(), ConfigError> {
        if let Some(entry) = self.pending.take() {
            match entry {
                (Some(rule), Some(path), Some(reason)) => {
                    self.config.allows.push(AllowEntry { rule, path, reason });
                }
                _ => {
                    return Err(err(
                        lineno,
                        "incomplete [[allow]] entry: needs rule, path and reason",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Parses a `["a", "b"]` array, consuming further lines until the
    /// closing `]` when the array is split across lines.
    fn parse_array(&mut self, value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
        let mut text = value.to_owned();
        while !text.trim_end().ends_with(']') {
            let (_, next) = self.lines.next().ok_or_else(|| err(lineno, "unterminated array"))?;
            text.push(' ');
            text.push_str(strip_comment(next).trim());
        }
        let text = text.trim();
        let inner = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| err(lineno, "expected a [\"...\"] array"))?;
        let mut items = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // Tolerates a trailing comma.
            }
            items.push(parse_string(item, lineno)?);
        }
        Ok(items)
    }
}

/// Drops a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_string = !in_string,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a double-quoted string value (no escape support — paths and rule
/// names never need it).
fn parse_string(value: &str, lineno: usize) -> Result<String, ConfigError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| err(lineno, &format!("expected a quoted string, got `{value}`")))
}

fn err(line: usize, message: &str) -> ConfigError {
    ConfigError { line, message: message.to_owned() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_config() {
        let text = r#"
# The workspace determinism audit.
roots = ["crates", "tests"]

[rule.ambient-env]
paths = [
    "crates/cod-bench/src/report.rs",  # fingerprint feeder
    "crates/cod-fleet/src/report.rs",
]

[[allow]]
rule = "wall-clock"
path = "crates/cod-bench/src/measure.rs"
reason = "the measurement layer is the wall-clock fence"

[[allow]]
rule = "R5"
path = "crates/cod-fleet/src/executor.rs"
reason = "the one sanctioned thread spawner"
"#;
        let config = AuditConfig::parse(text).expect("parses");
        assert_eq!(config.roots, vec!["crates", "tests"]);
        assert_eq!(config.fingerprint_paths.len(), 2);
        assert!(config.is_fingerprint_module("crates/cod-fleet/src/report.rs"));
        assert!(!config.is_fingerprint_module("crates/cod-fleet/src/fleet.rs"));
        assert_eq!(config.allows.len(), 2);
        assert_eq!(config.allows[1].rule, Rule::ThreadSpawn);
        assert!(config.allow_reason(Rule::WallClock, "crates/cod-bench/src/measure.rs").is_some());
        assert!(config.allow_reason(Rule::WallClock, "crates/cod-bench/src/report.rs").is_none());
    }

    #[test]
    fn rejects_unknown_rules_and_sections() {
        assert!(AuditConfig::parse("[garbage]").is_err());
        let bad_rule = "[[allow]]\nrule = \"made-up\"\npath = \"x\"\nreason = \"y\"";
        assert!(AuditConfig::parse(bad_rule).is_err());
    }

    #[test]
    fn rejects_incomplete_or_unjustified_allows() {
        let missing_reason = "[[allow]]\nrule = \"wall-clock\"\npath = \"x.rs\"";
        assert!(AuditConfig::parse(missing_reason).is_err());
        let empty_reason = "[[allow]]\nrule = \"wall-clock\"\npath = \"x.rs\"\nreason = \" \"";
        assert!(AuditConfig::parse(empty_reason).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(AuditConfig::parse("roots = not-an-array").is_err());
        assert!(AuditConfig::parse("stray line").is_err());
        assert!(AuditConfig::parse("unknown = \"key\"").is_err());
    }
}
