//! `cod-audit` — a static-analysis pass that proves the workspace's
//! determinism contract at the source level.
//!
//! The whole reproduction rests on one contract: same seed ⇒ byte-identical
//! `FLEET_cod.json` / `OBS_cod.json` under Modeled, ThreadPerShard and
//! WallClock execution at any thread count. The runtime equivalence gates
//! (`fleet_report --wallclock`, `trace_report`) catch a violation only
//! *after* it ships as a flaky seed-diff; this crate fences the
//! nondeterminism off before it compiles into a run, following the paper's
//! own design (HuangBTG01): node-local wall-clock plumbing is mechanically
//! separated from the lock-step deterministic core.
//!
//! The tool is zero-dependency by necessity — no `syn` offline — so a
//! hand-rolled [`lexer`] splits every source line into code and comment
//! channels (nested block comments, raw-string fences and char/lifetime
//! disambiguation included), and the [`rules`] engine pattern-matches the
//! code channel only. Rules R1..R6 are documented in [`rules::Rule`]; the
//! checked-in `audit.toml` ([`config::AuditConfig`]) carries the per-file
//! allowlists with their justifications, and any single line can be waived
//! with an auditable escape:
//!
//! ```text
//! let deadline = Instant::now(); // audit:allow(wall-clock): test timeout only.
//! ```
//!
//! The `cod_audit` binary walks the workspace, prints rustc-style
//! `file:line: rule [code]: message` diagnostics, writes the
//! `AUDIT_cod.json` per-rule summary and exits non-zero on any hard
//! violation — CI runs it beside the other smoke gates.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

pub use config::{AllowEntry, AuditConfig, ConfigError};
pub use report::{AuditReport, Disposition, Finding, AUDIT_SCHEMA};
pub use rules::Rule;

/// Audits one file's source text. `path` must be repo-relative (it selects
/// the allowlist entries and R6 scope that apply).
pub fn audit_source(path: &str, source: &str, config: &AuditConfig) -> Vec<Finding> {
    let lines = lexer::split_lines(source);
    let fingerprint_module = config.is_fingerprint_module(path);
    rules::scan(&lines, fingerprint_module)
        .into_iter()
        .map(|v| {
            let disposition = if let Some(reason) = waiver_reason(&lines, v.line, v.rule) {
                Disposition::Waived { reason }
            } else if let Some(reason) = config.allow_reason(v.rule, path) {
                Disposition::Allowlisted { reason: reason.to_owned() }
            } else {
                Disposition::Violation
            };
            Finding {
                path: path.to_owned(),
                line: v.line,
                rule: v.rule,
                message: v.message,
                disposition,
            }
        })
        .collect()
}

/// Audits every `.rs` file under the config's roots.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or from reading a source
/// file.
pub fn audit_tree(repo_root: &Path, config: &AuditConfig) -> io::Result<AuditReport> {
    let files = walk::rust_files(repo_root, &config.roots)?;
    let mut report = AuditReport { findings: Vec::new(), files_checked: files.len() };
    for path in &files {
        let source = std::fs::read_to_string(repo_root.join(path))?;
        report.findings.extend(audit_source(path, &source, config));
    }
    Ok(report)
}

/// Looks for a well-formed `// audit:allow(<rule>): <reason>` waiver
/// covering 1-based line `lineno`: on the flagged line's own comment, or on
/// the line directly above. A waiver must name the firing rule (by id or
/// `R<n>` code) and carry a non-empty reason — `audit:allow(wall-clock)`
/// with no reason does not suppress anything.
fn waiver_reason(lines: &[lexer::Line], lineno: usize, rule: Rule) -> Option<String> {
    let index = lineno - 1;
    let mut candidates = vec![&lines[index].comment];
    if index > 0 {
        candidates.push(&lines[index - 1].comment);
    }
    candidates.into_iter().find_map(|comment| waiver_in_comment(comment, rule))
}

/// Parses every `audit:allow(...)` occurrence in one comment, returning the
/// reason of the first that names `rule` and is well-formed.
fn waiver_in_comment(comment: &str, rule: Rule) -> Option<String> {
    let mut rest = comment;
    while let Some(at) = rest.find("audit:allow(") {
        rest = &rest[at + "audit:allow(".len()..];
        let close = rest.find(')')?;
        let name = rest[..close].trim();
        let tail = &rest[close + 1..];
        if Rule::from_name(name) == Some(rule) {
            if let Some(reason) = tail.strip_prefix(':') {
                let reason = reason.trim();
                if !reason.is_empty() {
                    return Some(reason.to_owned());
                }
            }
        }
        rest = tail;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_config() -> AuditConfig {
        AuditConfig { roots: vec![], fingerprint_paths: vec![], allows: vec![] }
    }

    fn dispositions(source: &str, config: &AuditConfig) -> Vec<(usize, Rule, bool)> {
        audit_source("crates/x/src/lib.rs", source, config)
            .into_iter()
            .map(|f| (f.line, f.rule, f.disposition == Disposition::Violation))
            .collect()
    }

    #[test]
    fn violation_without_escape_is_hard() {
        let found = dispositions("use std::time::Instant;\n", &bare_config());
        assert_eq!(found, vec![(1, Rule::WallClock, true)]);
    }

    #[test]
    fn same_line_waiver_suppresses_with_reason() {
        let src = "let t = Instant::now(); // audit:allow(wall-clock): test deadline only.\n";
        let found = audit_source("x.rs", src, &bare_config());
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].disposition,
            Disposition::Waived { reason: "test deadline only.".to_owned() }
        );
    }

    #[test]
    fn line_above_waiver_suppresses() {
        let src = "// audit:allow(R5): loopback smoke test needs a second thread.\n\
                   let h = std::thread::spawn(f);\n";
        let found = audit_source("x.rs", src, &bare_config());
        assert!(matches!(found[0].disposition, Disposition::Waived { .. }));
    }

    #[test]
    fn waiver_two_lines_up_does_not_reach() {
        let src = "// audit:allow(wall-clock): too far away.\n\n\
                   let t = Instant::now();\n";
        let found = audit_source("x.rs", src, &bare_config());
        assert_eq!(found[0].disposition, Disposition::Violation);
    }

    #[test]
    fn waiver_without_reason_or_wrong_rule_does_not_suppress() {
        for src in [
            "let t = Instant::now(); // audit:allow(wall-clock)\n",
            "let t = Instant::now(); // audit:allow(wall-clock):   \n",
            "let t = Instant::now(); // audit:allow(thread-spawn): wrong rule.\n",
            "let t = Instant::now(); // audit:allow(imaginary): no such rule.\n",
        ] {
            let found = audit_source("x.rs", src, &bare_config());
            assert_eq!(found[0].disposition, Disposition::Violation, "src: {src}");
        }
    }

    #[test]
    fn waiver_text_inside_a_string_is_inert() {
        let src = "let s = \"audit:allow(wall-clock): nope\"; let t = Instant::now();\n";
        let found = audit_source("x.rs", src, &bare_config());
        assert_eq!(found[0].disposition, Disposition::Violation);
    }

    #[test]
    fn allowlist_entry_downgrades_to_allowlisted() {
        let config = AuditConfig {
            roots: vec![],
            fingerprint_paths: vec![],
            allows: vec![AllowEntry {
                rule: Rule::WallClock,
                path: "crates/x/src/lib.rs".to_owned(),
                reason: "wall half".to_owned(),
            }],
        };
        let found = audit_source("crates/x/src/lib.rs", "let t = Instant::now();\n", &config);
        assert_eq!(found[0].disposition, Disposition::Allowlisted { reason: "wall half".into() });
        // The entry is path-exact: another file still violates.
        let other = audit_source("crates/x/src/other.rs", "let t = Instant::now();\n", &config);
        assert_eq!(other[0].disposition, Disposition::Violation);
    }

    #[test]
    fn fingerprint_scope_arms_ambient_env() {
        let config = AuditConfig {
            roots: vec![],
            fingerprint_paths: vec!["crates/x/src/report.rs".to_owned()],
            allows: vec![],
        };
        let src = "let home = std::env::var(\"HOME\");\n";
        assert_eq!(audit_source("crates/x/src/report.rs", src, &config).len(), 1);
        assert!(audit_source("crates/x/src/main.rs", src, &config).is_empty());
    }
}
