//! Deterministic workspace walk: every `.rs` file under the configured
//! roots, in sorted repo-relative order.
//!
//! Sorted order matters twice: diagnostics print in a stable order run to
//! run, and `AUDIT_cod.json` — like every other machine-readable artifact in
//! the workspace — must be byte-identical for an unchanged tree.

use std::io;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under `repo_root/<root>` for each configured
/// root, returning *repo-relative* paths with `/` separators, sorted.
/// Build output (`target/`) and hidden directories are skipped.
///
/// # Errors
///
/// Propagates filesystem errors; a configured root that does not exist is
/// reported rather than silently skipped (an audit that quietly scans
/// nothing would pass vacuously).
pub fn rust_files(repo_root: &Path, roots: &[String]) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for root in roots {
        let dir = repo_root.join(root);
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("audit root `{root}` is not a directory under {}", repo_root.display()),
            ));
        }
        collect(&dir, &mut files)?;
    }
    let mut relative: Vec<String> = files
        .into_iter()
        .map(|path| {
            path.strip_prefix(repo_root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    relative.sort();
    relative.dedup();
    Ok(relative)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_crate_sorted_and_relative() {
        let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let files = rust_files(repo_root, &["crates/cod-audit".to_owned()]).expect("walk succeeds");
        assert!(files.iter().any(|f| f == "crates/cod-audit/src/walk.rs"));
        assert!(files.iter().all(|f| f.ends_with(".rs") && !f.contains('\\')));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn missing_root_is_an_error_not_a_silent_pass() {
        let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"));
        assert!(rust_files(repo_root, &["no-such-dir".to_owned()]).is_err());
    }
}
