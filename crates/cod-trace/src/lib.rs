//! `cod-trace` — a lightweight spans + counters + histograms layer for the
//! fleet, with two sinks that respect the determinism contract.
//!
//! The serving stack keeps two kinds of time strictly apart: *modeled* time
//! (seeded, reproducible, fingerprinted) and *wall-clock* time (real,
//! varying run to run, never serialized into a fingerprinted report). This
//! crate gives each its own sink:
//!
//! * **Sink A, deterministic** — [`DetTrace`]: counters, log2 histograms and
//!   discrete events keyed on fleet ticks, modeled microseconds and seeded
//!   session identifiers only. Drained into `OBS_cod.json`
//!   ([`DetTrace::to_report_json`]) with its own schema and FNV-1a
//!   fingerprint: two runs of the same seed produce byte-identical files, at
//!   any thread count and under any execution mode, and the bytes are never
//!   mixed into `FLEET_cod.json`'s fingerprint.
//! * **Sink B, wall-clock** — [`WallTrace`]: real-time span records from the
//!   work-stealing executor and the fleet tick loop, exported as Chrome
//!   trace-event JSON ([`WallTrace::to_chrome_json`]) loadable in Perfetto or
//!   `about://tracing`, one lane per fleet-worker thread plus a driver lane.
//!
//! Both sinks sit behind an [`ObsConfig`] whose [`ObsConfig::Disabled`]
//! default compiles to near-no-ops: every hook point in the fleet guards on
//! an `Option` that is `None` when tracing is off, so the hot loops neither
//! record nor allocate.

pub mod det;
pub mod wall;

pub use det::{DetEvent, DetTrace, Histogram, OBS_SCHEMA};
pub use wall::{WallTrace, DRIVER_LANE};

/// What the fleet records, if anything. The default records nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsConfig {
    /// No tracing: the hook points are `None`-guarded no-ops and the hot
    /// loops allocate nothing. The default, so every existing gate's numbers
    /// are untouched.
    #[default]
    Disabled,
    /// Deterministic sink only: counters, histograms and events keyed on
    /// modeled time and seeded identifiers, drained into `OBS_cod.json`.
    Deterministic,
    /// Wall-clock sink only: real-time spans for Perfetto.
    Wall,
    /// Both sinks.
    Full,
}

impl ObsConfig {
    /// Whether the deterministic sink records.
    pub fn deterministic_enabled(&self) -> bool {
        matches!(self, ObsConfig::Deterministic | ObsConfig::Full)
    }

    /// Whether the wall-clock sink records.
    pub fn wall_enabled(&self) -> bool {
        matches!(self, ObsConfig::Wall | ObsConfig::Full)
    }

    /// Whether anything records at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, ObsConfig::Disabled)
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_enables_neither_sink() {
        let obs = ObsConfig::default();
        assert_eq!(obs, ObsConfig::Disabled);
        assert!(!obs.enabled());
        assert!(!obs.deterministic_enabled());
        assert!(!obs.wall_enabled());
        assert!(ObsConfig::Deterministic.deterministic_enabled());
        assert!(!ObsConfig::Deterministic.wall_enabled());
        assert!(ObsConfig::Wall.wall_enabled());
        assert!(!ObsConfig::Wall.deterministic_enabled());
        assert!(ObsConfig::Full.deterministic_enabled() && ObsConfig::Full.wall_enabled());
    }
}
