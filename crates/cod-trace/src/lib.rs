//! `cod-trace` — a lightweight spans + counters + histograms layer for the
//! fleet, with two sinks that respect the determinism contract.
//!
//! The serving stack keeps two kinds of time strictly apart: *modeled* time
//! (seeded, reproducible, fingerprinted) and *wall-clock* time (real,
//! varying run to run, never serialized into a fingerprinted report). This
//! crate gives each its own sink:
//!
//! * **Sink A, deterministic** — [`DetTrace`]: counters, log2 histograms and
//!   discrete events keyed on fleet ticks, modeled microseconds and seeded
//!   session identifiers only. Drained into `OBS_cod.json`
//!   ([`DetTrace::to_report_json`]) with its own schema and FNV-1a
//!   fingerprint: two runs of the same seed produce byte-identical files, at
//!   any thread count and under any execution mode, and the bytes are never
//!   mixed into `FLEET_cod.json`'s fingerprint.
//! * **Sink B, wall-clock** — [`WallTrace`]: real-time span records from the
//!   work-stealing executor and the fleet tick loop, exported as Chrome
//!   trace-event JSON ([`WallTrace::to_chrome_json`]) loadable in Perfetto or
//!   `about://tracing`, one lane per fleet-worker thread plus a driver lane.
//!
//! Both sinks sit behind an [`ObsConfig`] whose [`ObsConfig::Disabled`]
//! default compiles to near-no-ops: every hook point in the fleet guards on
//! an `Option` that is `None` when tracing is off, so the hot loops neither
//! record nor allocate.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use cod_json::Json;
use sim_math::Fnv1a;

/// Schema version of `OBS_cod.json`; bump on breaking layout changes.
pub const OBS_SCHEMA: &str = "cod-obs-v1";

/// What the fleet records, if anything. The default records nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsConfig {
    /// No tracing: the hook points are `None`-guarded no-ops and the hot
    /// loops allocate nothing. The default, so every existing gate's numbers
    /// are untouched.
    #[default]
    Disabled,
    /// Deterministic sink only: counters, histograms and events keyed on
    /// modeled time and seeded identifiers, drained into `OBS_cod.json`.
    Deterministic,
    /// Wall-clock sink only: real-time spans for Perfetto.
    Wall,
    /// Both sinks.
    Full,
}

impl ObsConfig {
    /// Whether the deterministic sink records.
    pub fn deterministic_enabled(&self) -> bool {
        matches!(self, ObsConfig::Deterministic | ObsConfig::Full)
    }

    /// Whether the wall-clock sink records.
    pub fn wall_enabled(&self) -> bool {
        matches!(self, ObsConfig::Wall | ObsConfig::Full)
    }

    /// Whether anything records at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, ObsConfig::Disabled)
    }
}

/// A log2-bucketed histogram of `u64` samples (modeled microseconds, tick
/// counts, ...). Bucket `i` holds samples whose bit length is `i`, so the
/// shape is scale-free and the memory constant — and, because bucketing is
/// pure integer arithmetic on deterministic values, two runs of the same
/// seed fill identical histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: 0, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = if self.count == 0 { value } else { self.min.min(value) };
        self.max = self.max.max(value);
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    fn fold_into(&self, h: &mut Fnv1a) {
        h.write_u64(self.count);
        h.write_u64(self.sum);
        h.write_u64(self.min);
        h.write_u64(self.max);
        for (i, n) in self.buckets.iter().enumerate() {
            if *n > 0 {
                h.write_u64(i as u64);
                h.write_u64(*n);
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Str(format!("{:#x}", self.sum))),
            ("min".into(), Json::Str(format!("{:#x}", self.min))),
            ("max".into(), Json::Str(format!("{:#x}", self.max))),
            ("mean".into(), Json::Num(self.mean())),
            (
                "log2_buckets".into(),
                Json::Obj(
                    self.buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| **n > 0)
                        .map(|(i, n)| (format!("{i}"), Json::Num(*n as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One discrete deterministic event: something the fleet driver decided at a
/// modeled instant, about a seeded session. No wall-clock field by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetEvent {
    /// Fleet tick the event happened at.
    pub tick: u64,
    /// What happened (`"place"`, `"reject"`, `"preempt"`, `"migrate"`,
    /// `"promote"`, `"demote"`).
    pub kind: &'static str,
    /// The seeded session id the event concerns.
    pub id: u64,
    /// The shard involved, or `-1` when none is (a rejection never reached
    /// one).
    pub shard: i64,
}

/// The deterministic sink: counters, histograms and events derived from
/// modeled time and seeded identifiers only. Serialized to `OBS_cod.json`
/// by [`DetTrace::to_report_json`]; the bytes are byte-identical per seed
/// across execution modes and thread counts because nothing wall-clock ever
/// enters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetTrace {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<DetEvent>,
}

impl DetTrace {
    /// Creates an empty trace.
    pub fn new() -> DetTrace {
        DetTrace::default()
    }

    /// Adds `n` to the counter `key` (created at zero on first use).
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Sets the counter `key` to `n` (overwriting any previous value).
    pub fn set(&mut self, key: &'static str, n: u64) {
        self.counters.insert(key, n);
    }

    /// The current value of counter `key` (0 when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Records `value` into the histogram `key` (created on first use).
    pub fn record(&mut self, key: &'static str, value: u64) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// The histogram `key`, if any sample was recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Appends a discrete event.
    pub fn event(&mut self, tick: u64, kind: &'static str, id: u64, shard: i64) {
        self.events.push(DetEvent { tick, kind, id, shard });
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[DetEvent] {
        &self.events
    }

    /// Number of events of one kind.
    pub fn events_of(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// FNV-1a fingerprint over every counter, histogram and event. Two runs
    /// of the same seed must agree bit for bit.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.counters.len() as u64);
        for (key, value) in &self.counters {
            h.write_bytes(key.as_bytes());
            h.write_u64(*value);
        }
        h.write_u64(self.histograms.len() as u64);
        for (key, hist) in &self.histograms {
            h.write_bytes(key.as_bytes());
            hist.fold_into(&mut h);
        }
        h.write_u64(self.events.len() as u64);
        for e in &self.events {
            h.write_u64(e.tick);
            h.write_bytes(e.kind.as_bytes());
            h.write_u64(e.id);
            h.write_u64(e.shard as u64);
        }
        h.finish()
    }

    /// Serializes the trace to the `OBS_cod.json` schema: own schema string,
    /// the run's seed, sorted counters and histograms, the event log and a
    /// fingerprint of all of it. Deliberately a *separate* document from
    /// `FLEET_cod.json` with a separate fingerprint: observability data must
    /// never perturb the serving report's byte-identity gate.
    pub fn to_report_json(&self, seed: u64) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(OBS_SCHEMA.into())),
            ("seed".into(), Json::Str(format!("{seed:#x}"))),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), Json::Str(format!("{v:#x}"))))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms.iter().map(|(k, h)| ((*k).to_owned(), h.to_json())).collect(),
                ),
            ),
            (
                "events".into(),
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("tick".into(), Json::Num(e.tick as f64)),
                                ("kind".into(), Json::Str(e.kind.into())),
                                ("id".into(), Json::Str(format!("{:#x}", e.id))),
                                ("shard".into(), Json::Num(e.shard as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("fingerprint".into(), Json::Str(format!("{:016x}", self.fingerprint()))),
        ])
    }
}

/// One wall-clock record: a complete span (`ph: "X"`) or an instant
/// (`ph: "i"`), in Chrome trace-event terms.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WallEvent {
    name: String,
    cat: &'static str,
    /// `'X'` complete span, `'i'` instant.
    ph: char,
    ts_us: u64,
    dur_us: u64,
}

/// The wall-clock sink: per-lane real-time span records, exported as Chrome
/// trace-event JSON for Perfetto / `about://tracing`. Lane 0 is the fleet
/// driver; lanes `1..=workers` are the executor's worker threads. Lanes are
/// independently locked so workers never contend with each other on the hot
/// path.
///
/// Everything here is real time and varies run to run — which is exactly why
/// none of it is ever serialized into a fingerprinted report.
#[derive(Debug)]
pub struct WallTrace {
    epoch: Instant,
    lanes: Vec<Mutex<Vec<WallEvent>>>,
}

/// The driver's lane in a [`WallTrace`].
pub const DRIVER_LANE: usize = 0;

impl WallTrace {
    /// Creates a trace with `workers` worker lanes plus the driver lane.
    pub fn new(workers: usize) -> WallTrace {
        WallTrace {
            epoch: Instant::now(),
            lanes: (0..=workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// The lane of worker thread `index`.
    pub fn worker_lane(index: usize) -> usize {
        index + 1
    }

    /// Number of lanes (driver + workers).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Microseconds since the trace was created — the `ts` clock every
    /// record uses.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a complete span on `lane` from `start_us` to now.
    pub fn complete(&self, lane: usize, name: String, cat: &'static str, start_us: u64) {
        let end = self.now_us();
        let event =
            WallEvent { name, cat, ph: 'X', ts_us: start_us, dur_us: end.saturating_sub(start_us) };
        self.push(lane, event);
    }

    /// Records an instant on `lane`.
    pub fn instant(&self, lane: usize, name: &str, cat: &'static str) {
        let event =
            WallEvent { name: name.to_owned(), cat, ph: 'i', ts_us: self.now_us(), dur_us: 0 };
        self.push(lane, event);
    }

    fn push(&self, lane: usize, event: WallEvent) {
        if let Some(lane) = self.lanes.get(lane) {
            lane.lock().expect("wall-trace lane poisoned").push(event);
        }
    }

    /// Total records across every lane.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().expect("wall-trace lane poisoned").len()).sum()
    }

    /// Records on `lane` matching `cat` (all records when `cat` is empty).
    pub fn count_of(&self, lane: usize, cat: &str) -> usize {
        self.lanes
            .get(lane)
            .map(|l| {
                l.lock()
                    .expect("wall-trace lane poisoned")
                    .iter()
                    .filter(|e| cat.is_empty() || e.cat == cat)
                    .count()
            })
            .unwrap_or(0)
    }

    /// Serializes every lane to Chrome trace-event JSON: a `traceEvents`
    /// array of complete (`"X"`) and instant (`"i"`) events, preceded by one
    /// `thread_name` metadata record per lane so Perfetto labels the driver
    /// and each `fleet-worker-N`. Load the written file in
    /// <https://ui.perfetto.dev> or `about://tracing`.
    pub fn to_chrome_json(&self) -> Json {
        let mut events = Vec::new();
        for (lane, records) in self.lanes.iter().enumerate() {
            let label = if lane == DRIVER_LANE {
                "fleet-driver".to_owned()
            } else {
                format!("fleet-worker-{}", lane - 1)
            };
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str("thread_name".into())),
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::Num(1.0)),
                ("tid".into(), Json::Num(lane as f64)),
                ("args".into(), Json::Obj(vec![("name".into(), Json::Str(label))])),
            ]));
            for e in records.lock().expect("wall-trace lane poisoned").iter() {
                let mut members = vec![
                    ("name".into(), Json::Str(e.name.clone())),
                    ("cat".into(), Json::Str(e.cat.into())),
                    ("ph".into(), Json::Str(e.ph.to_string())),
                    ("ts".into(), Json::Num(e.ts_us as f64)),
                ];
                if e.ph == 'X' {
                    members.push(("dur".into(), Json::Num(e.dur_us as f64)));
                } else {
                    // Thread-scoped instants render as lane-local marks.
                    members.push(("s".into(), Json::Str("t".into())));
                }
                members.push(("pid".into(), Json::Num(1.0)));
                members.push(("tid".into(), Json::Num(lane as f64)));
                events.push(Json::Obj(members));
            }
        }
        Json::Obj(vec![("traceEvents".into(), Json::Arr(events))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_enables_neither_sink() {
        let obs = ObsConfig::default();
        assert_eq!(obs, ObsConfig::Disabled);
        assert!(!obs.enabled());
        assert!(!obs.deterministic_enabled());
        assert!(!obs.wall_enabled());
        assert!(ObsConfig::Deterministic.deterministic_enabled());
        assert!(!ObsConfig::Deterministic.wall_enabled());
        assert!(ObsConfig::Wall.wall_enabled());
        assert!(!ObsConfig::Wall.deterministic_enabled());
        assert!(ObsConfig::Full.deterministic_enabled() && ObsConfig::Full.wall_enabled());
    }

    #[test]
    fn histogram_buckets_by_bit_length_and_tracks_extremes() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.mean() > 0.0);
        // 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4 -> 3, 1024 -> 11, MAX -> 64.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.buckets[64], 1);
    }

    #[test]
    fn det_trace_is_a_pure_function_of_its_inputs() {
        let build = || {
            let mut t = DetTrace::new();
            t.add("frames", 7);
            t.add("frames", 3);
            t.set("ticks", 4);
            t.record("latency_ticks", 3);
            t.record("latency_ticks", 9);
            t.event(1, "place", 0xAB, 2);
            t.event(2, "reject", 0xCD, -1);
            t
        };
        let a = build();
        let b = build();
        assert_eq!(a.counter("frames"), 10);
        assert_eq!(a.events_of("place"), 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.to_report_json(0xC0D).to_pretty(),
            b.to_report_json(0xC0D).to_pretty(),
            "same inputs must serialize to identical bytes"
        );
        // Any divergence in inputs must change the fingerprint.
        let mut c = build();
        c.add("frames", 1);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn obs_report_parses_and_carries_the_schema() {
        let mut t = DetTrace::new();
        t.add("ticks", 2);
        t.record("tick_makespan_us", 1500);
        t.event(0, "place", 1, 0);
        let text = t.to_report_json(0x5EED).to_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(OBS_SCHEMA));
        assert_eq!(parsed.get("seed").and_then(Json::as_str), Some("0x5eed"));
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("ticks")).and_then(Json::as_str),
            Some("0x2")
        );
        let hist = parsed.get("histograms").and_then(|h| h.get("tick_makespan_us")).unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(parsed.get("fingerprint").and_then(Json::as_str).is_some());
    }

    #[test]
    fn wall_trace_exports_labeled_lanes_with_spans_and_instants() {
        let wall = WallTrace::new(2);
        assert_eq!(wall.lanes(), 3);
        let t0 = wall.now_us();
        wall.complete(DRIVER_LANE, "tick 0".into(), "tick", t0);
        wall.instant(WallTrace::worker_lane(0), "injector-take", "steal");
        wall.complete(WallTrace::worker_lane(1), "shard1".into(), "step", t0);
        assert_eq!(wall.event_count(), 3);
        assert_eq!(wall.count_of(WallTrace::worker_lane(0), "steal"), 1);
        let text = wall.to_chrome_json().to_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        // 3 metadata records + 3 events.
        assert_eq!(events.len(), 6);
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"thread_name"));
        assert!(names.contains(&"injector-take"));
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Json::as_str)).collect();
        assert!(phases.contains(&"X") && phases.contains(&"i") && phases.contains(&"M"));
    }

    #[test]
    fn out_of_range_lane_records_are_dropped_not_panicking() {
        let wall = WallTrace::new(1);
        wall.instant(99, "nowhere", "steal");
        assert_eq!(wall.event_count(), 0);
    }
}
