//! Sink A — the deterministic half of `cod-trace`.
//!
//! Everything in this module is a pure function of modeled time and seeded
//! identifiers: counters, log2 histograms and discrete scheduling events,
//! drained into `OBS_cod.json` with its own FNV-1a fingerprint. Nothing
//! here may read a clock or the environment — this file is listed in
//! `audit.toml` as a fingerprint module, so the `cod_audit` R6 rule
//! (`ambient-env`) enforces that split mechanically; the wall-clock half
//! lives in [`crate::wall`], behind the R1 allowlist instead.

use std::collections::BTreeMap;

use cod_json::Json;
use sim_math::Fnv1a;

/// Schema version of `OBS_cod.json`; bump on breaking layout changes.
pub const OBS_SCHEMA: &str = "cod-obs-v1";

/// A log2-bucketed histogram of `u64` samples (modeled microseconds, tick
/// counts, ...). Bucket `i` holds samples whose bit length is `i`, so the
/// shape is scale-free and the memory constant — and, because bucketing is
/// pure integer arithmetic on deterministic values, two runs of the same
/// seed fill identical histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: 0, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = if self.count == 0 { value } else { self.min.min(value) };
        self.max = self.max.max(value);
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    fn fold_into(&self, h: &mut Fnv1a) {
        h.write_u64(self.count);
        h.write_u64(self.sum);
        h.write_u64(self.min);
        h.write_u64(self.max);
        for (i, n) in self.buckets.iter().enumerate() {
            if *n > 0 {
                h.write_u64(i as u64);
                h.write_u64(*n);
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Str(format!("{:#x}", self.sum))),
            ("min".into(), Json::Str(format!("{:#x}", self.min))),
            ("max".into(), Json::Str(format!("{:#x}", self.max))),
            ("mean".into(), Json::Num(self.mean())),
            (
                "log2_buckets".into(),
                Json::Obj(
                    self.buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| **n > 0)
                        .map(|(i, n)| (format!("{i}"), Json::Num(*n as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One discrete deterministic event: something the fleet driver decided at a
/// modeled instant, about a seeded session. No wall-clock field by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetEvent {
    /// Fleet tick the event happened at.
    pub tick: u64,
    /// What happened (`"place"`, `"reject"`, `"preempt"`, `"migrate"`,
    /// `"promote"`, `"demote"`).
    pub kind: &'static str,
    /// The seeded session id the event concerns.
    pub id: u64,
    /// The shard involved, or `-1` when none is (a rejection never reached
    /// one).
    pub shard: i64,
}

/// The deterministic sink: counters, histograms and events derived from
/// modeled time and seeded identifiers only. Serialized to `OBS_cod.json`
/// by [`DetTrace::to_report_json`]; the bytes are byte-identical per seed
/// across execution modes and thread counts because nothing wall-clock ever
/// enters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetTrace {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<DetEvent>,
}

impl DetTrace {
    /// Creates an empty trace.
    pub fn new() -> DetTrace {
        DetTrace::default()
    }

    /// Adds `n` to the counter `key` (created at zero on first use).
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Sets the counter `key` to `n` (overwriting any previous value).
    pub fn set(&mut self, key: &'static str, n: u64) {
        self.counters.insert(key, n);
    }

    /// The current value of counter `key` (0 when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Records `value` into the histogram `key` (created on first use).
    pub fn record(&mut self, key: &'static str, value: u64) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// The histogram `key`, if any sample was recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Appends a discrete event.
    pub fn event(&mut self, tick: u64, kind: &'static str, id: u64, shard: i64) {
        self.events.push(DetEvent { tick, kind, id, shard });
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[DetEvent] {
        &self.events
    }

    /// Number of events of one kind.
    pub fn events_of(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// FNV-1a fingerprint over every counter, histogram and event. Two runs
    /// of the same seed must agree bit for bit.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.counters.len() as u64);
        for (key, value) in &self.counters {
            h.write_bytes(key.as_bytes());
            h.write_u64(*value);
        }
        h.write_u64(self.histograms.len() as u64);
        for (key, hist) in &self.histograms {
            h.write_bytes(key.as_bytes());
            hist.fold_into(&mut h);
        }
        h.write_u64(self.events.len() as u64);
        for e in &self.events {
            h.write_u64(e.tick);
            h.write_bytes(e.kind.as_bytes());
            h.write_u64(e.id);
            h.write_u64(e.shard as u64);
        }
        h.finish()
    }

    /// Serializes the trace to the `OBS_cod.json` schema: own schema string,
    /// the run's seed, sorted counters and histograms, the event log and a
    /// fingerprint of all of it. Deliberately a *separate* document from
    /// `FLEET_cod.json` with a separate fingerprint: observability data must
    /// never perturb the serving report's byte-identity gate.
    pub fn to_report_json(&self, seed: u64) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(OBS_SCHEMA.into())),
            ("seed".into(), Json::Str(format!("{seed:#x}"))),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), Json::Str(format!("{v:#x}"))))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms.iter().map(|(k, h)| ((*k).to_owned(), h.to_json())).collect(),
                ),
            ),
            (
                "events".into(),
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("tick".into(), Json::Num(e.tick as f64)),
                                ("kind".into(), Json::Str(e.kind.into())),
                                ("id".into(), Json::Str(format!("{:#x}", e.id))),
                                ("shard".into(), Json::Num(e.shard as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("fingerprint".into(), Json::Str(format!("{:016x}", self.fingerprint()))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length_and_tracks_extremes() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.mean() > 0.0);
        // 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4 -> 3, 1024 -> 11, MAX -> 64.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.buckets[64], 1);
    }

    #[test]
    fn det_trace_is_a_pure_function_of_its_inputs() {
        let build = || {
            let mut t = DetTrace::new();
            t.add("frames", 7);
            t.add("frames", 3);
            t.set("ticks", 4);
            t.record("latency_ticks", 3);
            t.record("latency_ticks", 9);
            t.event(1, "place", 0xAB, 2);
            t.event(2, "reject", 0xCD, -1);
            t
        };
        let a = build();
        let b = build();
        assert_eq!(a.counter("frames"), 10);
        assert_eq!(a.events_of("place"), 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.to_report_json(0xC0D).to_pretty(),
            b.to_report_json(0xC0D).to_pretty(),
            "same inputs must serialize to identical bytes"
        );
        // Any divergence in inputs must change the fingerprint.
        let mut c = build();
        c.add("frames", 1);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn obs_report_parses_and_carries_the_schema() {
        let mut t = DetTrace::new();
        t.add("ticks", 2);
        t.record("tick_makespan_us", 1500);
        t.event(0, "place", 1, 0);
        let text = t.to_report_json(0x5EED).to_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(OBS_SCHEMA));
        assert_eq!(parsed.get("seed").and_then(Json::as_str), Some("0x5eed"));
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("ticks")).and_then(Json::as_str),
            Some("0x2")
        );
        let hist = parsed.get("histograms").and_then(|h| h.get("tick_makespan_us")).unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(parsed.get("fingerprint").and_then(Json::as_str).is_some());
    }
}
