//! Sink B — the wall-clock half of `cod-trace`.
//!
//! Real-time span records for Perfetto / `about://tracing`. Everything here
//! varies run to run by design, which is exactly why none of it is ever
//! serialized into a fingerprinted report: this file (and only this file in
//! the crate) appears on the `cod_audit` R1 (`wall-clock`) allowlist in
//! `audit.toml`, so an `Instant` creeping into the deterministic half of
//! the crate is a lint error, not a flaky seed-diff.

use std::sync::Mutex;
use std::time::Instant;

use cod_json::Json;

/// One wall-clock record: a complete span (`ph: "X"`) or an instant
/// (`ph: "i"`), in Chrome trace-event terms.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WallEvent {
    name: String,
    cat: &'static str,
    /// `'X'` complete span, `'i'` instant.
    ph: char,
    ts_us: u64,
    dur_us: u64,
}

/// The wall-clock sink: per-lane real-time span records, exported as Chrome
/// trace-event JSON for Perfetto / `about://tracing`. Lane 0 is the fleet
/// driver; lanes `1..=workers` are the executor's worker threads. Lanes are
/// independently locked so workers never contend with each other on the hot
/// path.
///
/// Everything here is real time and varies run to run — which is exactly why
/// none of it is ever serialized into a fingerprinted report.
#[derive(Debug)]
pub struct WallTrace {
    epoch: Instant,
    lanes: Vec<Mutex<Vec<WallEvent>>>,
}

/// The driver's lane in a [`WallTrace`].
pub const DRIVER_LANE: usize = 0;

impl WallTrace {
    /// Creates a trace with `workers` worker lanes plus the driver lane.
    pub fn new(workers: usize) -> WallTrace {
        WallTrace {
            epoch: Instant::now(),
            lanes: (0..=workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// The lane of worker thread `index`.
    pub fn worker_lane(index: usize) -> usize {
        index + 1
    }

    /// Number of lanes (driver + workers).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Microseconds since the trace was created — the `ts` clock every
    /// record uses.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a complete span on `lane` from `start_us` to now.
    pub fn complete(&self, lane: usize, name: String, cat: &'static str, start_us: u64) {
        let end = self.now_us();
        let event =
            WallEvent { name, cat, ph: 'X', ts_us: start_us, dur_us: end.saturating_sub(start_us) };
        self.push(lane, event);
    }

    /// Records an instant on `lane`.
    pub fn instant(&self, lane: usize, name: &str, cat: &'static str) {
        let event =
            WallEvent { name: name.to_owned(), cat, ph: 'i', ts_us: self.now_us(), dur_us: 0 };
        self.push(lane, event);
    }

    fn push(&self, lane: usize, event: WallEvent) {
        if let Some(lane) = self.lanes.get(lane) {
            lane.lock().expect("wall-trace lane poisoned").push(event);
        }
    }

    /// Total records across every lane.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().expect("wall-trace lane poisoned").len()).sum()
    }

    /// Records on `lane` matching `cat` (all records when `cat` is empty).
    pub fn count_of(&self, lane: usize, cat: &str) -> usize {
        self.lanes
            .get(lane)
            .map(|l| {
                l.lock()
                    .expect("wall-trace lane poisoned")
                    .iter()
                    .filter(|e| cat.is_empty() || e.cat == cat)
                    .count()
            })
            .unwrap_or(0)
    }

    /// Serializes every lane to Chrome trace-event JSON: a `traceEvents`
    /// array of complete (`"X"`) and instant (`"i"`) events, preceded by one
    /// `thread_name` metadata record per lane so Perfetto labels the driver
    /// and each `fleet-worker-N`. Load the written file in
    /// <https://ui.perfetto.dev> or `about://tracing`.
    pub fn to_chrome_json(&self) -> Json {
        let mut events = Vec::new();
        for (lane, records) in self.lanes.iter().enumerate() {
            let label = if lane == DRIVER_LANE {
                "fleet-driver".to_owned()
            } else {
                format!("fleet-worker-{}", lane - 1)
            };
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str("thread_name".into())),
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::Num(1.0)),
                ("tid".into(), Json::Num(lane as f64)),
                ("args".into(), Json::Obj(vec![("name".into(), Json::Str(label))])),
            ]));
            for e in records.lock().expect("wall-trace lane poisoned").iter() {
                let mut members = vec![
                    ("name".into(), Json::Str(e.name.clone())),
                    ("cat".into(), Json::Str(e.cat.into())),
                    ("ph".into(), Json::Str(e.ph.to_string())),
                    ("ts".into(), Json::Num(e.ts_us as f64)),
                ];
                if e.ph == 'X' {
                    members.push(("dur".into(), Json::Num(e.dur_us as f64)));
                } else {
                    // Thread-scoped instants render as lane-local marks.
                    members.push(("s".into(), Json::Str("t".into())));
                }
                members.push(("pid".into(), Json::Num(1.0)));
                members.push(("tid".into(), Json::Num(lane as f64)));
                events.push(Json::Obj(members));
            }
        }
        Json::Obj(vec![("traceEvents".into(), Json::Arr(events))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_trace_exports_labeled_lanes_with_spans_and_instants() {
        let wall = WallTrace::new(2);
        assert_eq!(wall.lanes(), 3);
        let t0 = wall.now_us();
        wall.complete(DRIVER_LANE, "tick 0".into(), "tick", t0);
        wall.instant(WallTrace::worker_lane(0), "injector-take", "steal");
        wall.complete(WallTrace::worker_lane(1), "shard1".into(), "step", t0);
        assert_eq!(wall.event_count(), 3);
        assert_eq!(wall.count_of(WallTrace::worker_lane(0), "steal"), 1);
        let text = wall.to_chrome_json().to_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        // 3 metadata records + 3 events.
        assert_eq!(events.len(), 6);
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"thread_name"));
        assert!(names.contains(&"injector-take"));
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Json::as_str)).collect();
        assert!(phases.contains(&"X") && phases.contains(&"i") && phases.contains(&"M"));
    }

    #[test]
    fn out_of_range_lane_records_are_dropped_not_panicking() {
        let wall = WallTrace::new(1);
        wall.instant(99, "nowhere", "steal");
        assert_eq!(wall.event_count(), 0);
    }
}
