//! `cod-fleet` — a sharded multi-session serving layer for the crane
//! simulator.
//!
//! The paper builds *one* high-fidelity simulator on a cluster of desktop
//! PCs; the ROADMAP's north star is a production system serving heavy traffic
//! — which makes the *session*, not the frame, the unit of work. This crate
//! turns the single-simulator runtime into a serving system:
//!
//! * [`workload`] — a seeded arrival process over the scenario mix of the
//!   cod-testkit matrix (operator skill x GPU x display channels x LAN fault
//!   plan); same seed, same workload.
//! * [`admission`] — bounded *priority* queue admission control and
//!   least-loaded placement, kept pure so its safety properties (never exceed
//!   capacity, never reject while a slot is free, session conservation with
//!   preemption and migration terms) are property-tested.
//! * [`shard`] — a worker of a given relative CPU speed hosting several
//!   concurrent sessions, recycling retired simulators through
//!   [`crane_sim::CraneSimulator::reset_for_session`] so the expensive CB
//!   initialization runs once per session *shape*, not once per session; a
//!   resident can be serialized to a [`shard::PortableSession`] and resumed
//!   anywhere by deterministic replay.
//! * [`fleet`] — the tick-driven executive: offer, place (residency- or
//!   speed-weighted), preempt, migrate, batch-step all shards under the
//!   configured [`fleet::ExecutionMode`], retire; deterministic by
//!   construction, accounted in modeled time.
//! * [`executor`] — the wall-clock engine: a work-stealing pool of pinned
//!   worker threads stepping shard batches in real time, with the results
//!   merged in shard order so any thread count reproduces the modeled run
//!   bit for bit. [`fleet::run_fleet_timed`] reports the real elapsed time
//!   beside (never inside) the deterministic outcome.
//! * [`report`] — `FLEET_cod.json`, byte-identical across runs of the same
//!   seed — and, by the merge-order guarantee, across execution modes and
//!   thread counts too.
//!
//! ```
//! use cod_fleet::{
//!     run_fleet_timed, ExecutionMode, FleetConfig, PlacementPolicy, ShardConfig, WorkloadConfig,
//! };
//!
//! let config = FleetConfig {
//!     shards: 2,
//!     shard: ShardConfig { slots: 2, batch_frames: 8, pool_per_shape: 1, ..ShardConfig::default() },
//!     shard_speeds: vec![2.0, 0.5], // one fast PC, one slow PC
//!     placement: PlacementPolicy::SpeedWeighted,
//!     preemption: true,
//!     migration: true,
//!     tiering: true,
//!     max_pending: 4,
//!     workload: WorkloadConfig { sessions: 3, seed: 7, base_frames: 10, mean_interarrival_ticks: 1 },
//!     execution: ExecutionMode::WallClock { threads: 2 },
//!     obs: cod_fleet::ObsConfig::Disabled,
//! };
//! let (outcome, wall) = run_fleet_timed(&config).expect("fleet drains");
//! assert_eq!(outcome.offered, 3);
//! assert_eq!(outcome.completed + outcome.rejected, 3);
//! assert_eq!(wall.threads, 2);
//! assert!(wall.sessions_per_wall_sec(outcome.completed) > 0.0);
//! ```

pub mod admission;
pub mod executor;
pub mod fleet;
pub mod report;
pub mod shard;
pub mod workload;

pub use admission::{AdmissionConfig, AdmissionState};
pub use cod_trace::{DetTrace, Histogram, ObsConfig, WallTrace, OBS_SCHEMA};
pub use executor::{WallClockExecutor, WallStopwatch};
pub use fleet::{
    run_fleet, run_fleet_timed, run_fleet_traced, ExecutionMode, FleetConfig, FleetOutcome,
    PlacementPolicy, SessionOutcome, TraceArtifacts, WallClockStats,
};
pub use report::{document, FleetReport, ShardRow, TieredSection, SCHEMA};
pub use shard::{
    Completed, PortableSession, SessionShape, Shard, ShardConfig, ShardStats, SteppingMode,
};
pub use workload::{
    coarse_eligible, generate, initial_tier, Arrival, Priority, SessionSpec, WorkloadConfig,
};
