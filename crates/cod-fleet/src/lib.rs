//! `cod-fleet` — a sharded multi-session serving layer for the crane
//! simulator.
//!
//! The paper builds *one* high-fidelity simulator on a cluster of desktop
//! PCs; the ROADMAP's north star is a production system serving heavy traffic
//! — which makes the *session*, not the frame, the unit of work. This crate
//! turns the single-simulator runtime into a serving system:
//!
//! * [`workload`] — a seeded arrival process over the scenario mix of the
//!   cod-testkit matrix (operator skill x GPU x display channels x LAN fault
//!   plan); same seed, same workload.
//! * [`admission`] — bounded *priority* queue admission control and
//!   least-loaded placement, kept pure so its safety properties (never exceed
//!   capacity, never reject while a slot is free, session conservation with
//!   preemption and migration terms) are property-tested.
//! * [`shard`] — a worker of a given relative CPU speed hosting several
//!   concurrent sessions, recycling retired simulators through
//!   [`crane_sim::CraneSimulator::reset_for_session`] so the expensive CB
//!   initialization runs once per session *shape*, not once per session; a
//!   resident can be serialized to a [`shard::PortableSession`] and resumed
//!   anywhere by deterministic replay.
//! * [`fleet`] — the tick-driven executive: offer, place (residency- or
//!   speed-weighted), preempt, migrate, batch-step all shards (optionally on
//!   OS threads), retire; deterministic by construction, accounted in modeled
//!   time.
//! * [`report`] — `FLEET_cod.json`, byte-identical across runs of the same
//!   seed.
//!
//! ```
//! use cod_fleet::{run_fleet, FleetConfig, PlacementPolicy, ShardConfig, WorkloadConfig};
//!
//! let config = FleetConfig {
//!     shards: 2,
//!     shard: ShardConfig { slots: 2, batch_frames: 8, pool_per_shape: 1 },
//!     shard_speeds: vec![2.0, 0.5], // one fast PC, one slow PC
//!     placement: PlacementPolicy::SpeedWeighted,
//!     preemption: true,
//!     migration: true,
//!     tiering: true,
//!     max_pending: 4,
//!     workload: WorkloadConfig { sessions: 3, seed: 7, base_frames: 10, mean_interarrival_ticks: 1 },
//!     parallel: false,
//! };
//! let outcome = run_fleet(&config).expect("fleet drains");
//! assert_eq!(outcome.offered, 3);
//! assert_eq!(outcome.completed + outcome.rejected, 3);
//! ```

pub mod admission;
pub mod fleet;
pub mod report;
pub mod shard;
pub mod workload;

pub use admission::{AdmissionConfig, AdmissionState};
pub use fleet::{run_fleet, FleetConfig, FleetOutcome, PlacementPolicy, SessionOutcome};
pub use report::{document, FleetReport, ShardRow, TieredSection, SCHEMA};
pub use shard::{Completed, PortableSession, SessionShape, Shard, ShardConfig, ShardStats};
pub use workload::{
    coarse_eligible, generate, initial_tier, Arrival, Priority, SessionSpec, WorkloadConfig,
};
