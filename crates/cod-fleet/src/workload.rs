//! The seeded workload generator: an arrival process over a scenario mix.
//!
//! A fleet run is driven by a list of [`Arrival`]s — (tick, session spec)
//! pairs — fully determined by a [`WorkloadConfig`] and its seed. The
//! scenario mix is drawn from the same dimensions the cod-testkit matrix
//! sweeps: operator skill x GPU generation x display-channel count x LAN
//! fault plan, so the serving layer is exercised with exactly the session
//! population the regression net already understands.

use cod_net::plans;
use cod_net::FaultPlan;
use crane_sim::{FidelityTier, GpuGeneration, OperatorKind, SimulatorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Priority class of a session. Ordering is by urgency: `Interactive` >
/// `Training` > `Batch`. Interactive sessions (a trainee at the controls,
/// motivated by the VR crane-planning line of work) jump the admission queue
/// and may preempt batch work; batch sessions (offline sweeps, regression
/// replays) absorb whatever capacity is left.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Offline work: regression sweeps, replays. Lowest urgency.
    Batch,
    /// Curriculum training runs: latency matters, but nobody is waiting live.
    Training,
    /// A person at the controls. Highest urgency, preempts `Batch`.
    Interactive,
}

impl Priority {
    /// Every class, lowest urgency first (so `ALL[p.index()] == p`).
    pub const ALL: [Priority; 3] = [Priority::Batch, Priority::Training, Priority::Interactive];

    /// Number of priority classes.
    pub const COUNT: usize = 3;

    /// Dense index of the class: `Batch` = 0, `Training` = 1, `Interactive` = 2.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Three-letter tag used in session names and report rows.
    pub fn tag(self) -> &'static str {
        match self {
            Priority::Batch => "bat",
            Priority::Training => "trn",
            Priority::Interactive => "int",
        }
    }
}

/// Whether sessions of this class may be served by the Coarse backend.
/// Interactive sessions have a person at the controls and always get the full
/// rack; Training and Batch work tolerates the decimated tier.
pub fn coarse_eligible(priority: Priority) -> bool {
    priority != Priority::Interactive
}

/// The fidelity tier a tiering fleet admits sessions of this class at. Batch
/// work starts (and stays) Coarse; Training starts Full but is the demotion
/// reservoir under pressure; Interactive is always Full.
pub fn initial_tier(priority: Priority) -> FidelityTier {
    match priority {
        Priority::Batch => FidelityTier::Coarse,
        Priority::Training | Priority::Interactive => FidelityTier::Full,
    }
}

/// A complete description of one session offered to the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Fleet-wide session id (arrival order).
    pub id: u64,
    /// Descriptive name, `s<id>-<priority>-<operator>-<gpu>-<channels>-<plan>`.
    pub name: String,
    /// Simulator configuration (carries the session seed).
    pub config: SimulatorConfig,
    /// Fault plan installed for the session (carries the fault seed).
    pub fault_plan: FaultPlan,
    /// Number of executive frames the session runs.
    pub frames: usize,
    /// Priority class governing admission order and preemption.
    pub priority: Priority,
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of sessions offered over the run.
    pub sessions: usize,
    /// Base seed of the arrival process and scenario mix.
    pub seed: u64,
    /// Nominal frames per session; actual lengths vary in `[base/2, 3*base/2]`.
    pub base_frames: usize,
    /// Mean gap between consecutive arrivals, in fleet ticks; actual gaps are
    /// uniform in `[0, 2*mean]`.
    pub mean_interarrival_ticks: u64,
}

impl WorkloadConfig {
    /// The reduced workload used by CI smoke runs (64 sessions).
    pub fn quick(seed: u64) -> WorkloadConfig {
        WorkloadConfig { sessions: 64, seed, base_frames: 48, mean_interarrival_ticks: 1 }
    }

    /// The full workload (256 sessions).
    pub fn full(seed: u64) -> WorkloadConfig {
        WorkloadConfig { sessions: 256, seed, base_frames: 96, mean_interarrival_ticks: 1 }
    }
}

/// One session arriving at the fleet's front door.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Fleet tick at which the session arrives.
    pub tick: u64,
    /// The session itself.
    pub spec: SessionSpec,
}

/// SplitMix64-style mixing of the base seed with a per-session counter, so
/// every session gets a decorrelated seed stream of its own.
fn mix_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn operator_name(kind: OperatorKind) -> &'static str {
    match kind {
        OperatorKind::Exam => "exam",
        OperatorKind::Idle => "idle",
        OperatorKind::Reckless => "reckless",
    }
}

fn gpu_name(gpu: GpuGeneration) -> &'static str {
    match gpu {
        GpuGeneration::Tnt2 => "tnt2",
        GpuGeneration::NextGeneration => "nextgen",
    }
}

/// Generates the arrival list: ascending ticks, one spec per session, fully
/// determined by the configuration (same config ⇒ identical list).
pub fn generate(config: &WorkloadConfig) -> Vec<Arrival> {
    const OPERATORS: [OperatorKind; 3] =
        [OperatorKind::Exam, OperatorKind::Idle, OperatorKind::Reckless];
    const GPUS: [GpuGeneration; 2] = [GpuGeneration::Tnt2, GpuGeneration::NextGeneration];
    const CHANNELS: [usize; 2] = [2, 3];

    let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, 0xF1EE7));
    let mut arrivals = Vec::with_capacity(config.sessions);
    let mut tick = 0u64;
    for id in 0..config.sessions as u64 {
        let operator = OPERATORS[rng.gen_range(0..OPERATORS.len())];
        let gpu = GPUS[rng.gen_range(0..GPUS.len())];
        let channels = CHANNELS[rng.gen_range(0..CHANNELS.len())];
        let priority = Priority::ALL[rng.gen_range(0..Priority::COUNT)];
        let session_seed = mix_seed(config.seed, id * 2 + 1);
        let fault_seed = mix_seed(config.seed, id * 2 + 2);
        let named_plans = plans::all(fault_seed);
        let plan = named_plans[rng.gen_range(0..named_plans.len())].clone();
        let frames = config.base_frames / 2 + rng.gen_range(0..=config.base_frames);

        let sim_config = SimulatorConfig {
            operator,
            gpu,
            display_channels: channels,
            display_width: 64,
            display_height: 48,
            exam_frames: frames,
            seed: session_seed,
            ..SimulatorConfig::default()
        };
        let name = format!(
            "s{id:03}-{}-{}-{}-c{channels}-{}",
            priority.tag(),
            operator_name(operator),
            gpu_name(gpu),
            plan.name
        );
        arrivals.push(Arrival {
            tick,
            spec: SessionSpec {
                id,
                name,
                config: sim_config,
                fault_plan: plan.plan,
                frames,
                priority,
            },
        });
        tick += rng.gen_range(0..=config.mean_interarrival_ticks * 2);
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_ascending() {
        let config = WorkloadConfig { sessions: 20, seed: 7, ..WorkloadConfig::quick(7) };
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for pair in a.windows(2) {
            assert!(pair[0].tick <= pair[1].tick, "arrival ticks must ascend");
        }
    }

    #[test]
    fn different_seeds_draw_different_mixes() {
        let a = generate(&WorkloadConfig { sessions: 16, ..WorkloadConfig::quick(1) });
        let b = generate(&WorkloadConfig { sessions: 16, ..WorkloadConfig::quick(2) });
        assert_ne!(a, b);
    }

    #[test]
    fn specs_cover_the_matrix_dimensions_and_stay_valid() {
        let arrivals = generate(&WorkloadConfig::quick(3));
        let mut operators = std::collections::BTreeSet::new();
        let mut plans_seen = std::collections::BTreeSet::new();
        for a in &arrivals {
            a.spec.config.validate().expect("generated config must be valid");
            assert!(a.spec.frames >= 24, "session too short: {}", a.spec.frames);
            operators.insert(format!("{:?}", a.spec.config.operator));
            plans_seen.insert(a.spec.name.rsplit('-').next().unwrap().to_owned());
        }
        assert_eq!(operators.len(), 3, "all operator kinds should appear in 64 draws");
        assert!(plans_seen.len() >= 4, "fault-plan variety missing: {plans_seen:?}");
    }

    #[test]
    fn priorities_cover_every_class_and_order_by_urgency() {
        assert!(Priority::Interactive > Priority::Training);
        assert!(Priority::Training > Priority::Batch);
        for p in Priority::ALL {
            assert_eq!(Priority::ALL[p.index()], p);
        }
        let arrivals = generate(&WorkloadConfig::quick(3));
        let mut classes = std::collections::BTreeSet::new();
        for a in &arrivals {
            assert!(
                a.spec.name.contains(a.spec.priority.tag()),
                "name {} missing priority tag",
                a.spec.name
            );
            classes.insert(a.spec.priority);
        }
        assert_eq!(classes.len(), Priority::COUNT, "all classes should appear in 64 draws");
    }

    #[test]
    fn tier_policy_protects_interactive_sessions() {
        assert!(!coarse_eligible(Priority::Interactive));
        assert!(coarse_eligible(Priority::Batch) && coarse_eligible(Priority::Training));
        assert_eq!(initial_tier(Priority::Batch), FidelityTier::Coarse);
        assert_eq!(initial_tier(Priority::Training), FidelityTier::Full);
        assert_eq!(initial_tier(Priority::Interactive), FidelityTier::Full);
        // The generator itself stays tier-neutral: tiering is a fleet policy
        // applied at admission, so the same workload drives both run modes.
        for a in generate(&WorkloadConfig::quick(3)) {
            assert_eq!(a.spec.config.tier, FidelityTier::Full);
        }
    }

    #[test]
    fn session_seeds_are_unique() {
        let arrivals = generate(&WorkloadConfig::quick(9));
        let mut seeds: Vec<u64> = arrivals.iter().map(|a| a.spec.config.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), arrivals.len());
    }
}
