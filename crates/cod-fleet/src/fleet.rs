//! The fleet executive: admit, place, batch-step and retire sessions across
//! a pool of (possibly heterogeneous) shards, deterministically.
//!
//! One fleet *tick* is the unit of serving time: arrivals due at the tick are
//! offered to the bounded admission queue (overflow is rejected —
//! backpressure), queued sessions are placed most-urgent-class-first onto the
//! least-loaded shards with free slots, and every shard then advances each of
//! its resident sessions by one batch of executive frames. Shards are
//! independent, so the stepping runs under the configured [`ExecutionMode`]:
//! sequentially on the caller's thread, on one scoped OS thread per shard, or
//! on the work-stealing pool of [`crate::executor::WallClockExecutor`].
//! Results are folded back in shard order either way, which keeps the outcome
//! bit-identical across every mode and thread count.
//!
//! Three optional mechanisms make the fleet heterogeneity- and
//! priority-aware:
//!
//! * **Speed-weighted placement** ([`PlacementPolicy::SpeedWeighted`]) weighs
//!   shards by their modeled per-tick cost, which each shard scales to its
//!   own CPU speed — one session costs a half-speed shard four times what it
//!   costs a double-speed shard every tick, so new work drifts toward fast
//!   machines until the rates balance.
//! * **Preemption** (`preemption: true`): when a more urgent arrival finds
//!   every slot taken, the least urgent resident is pushed back into the
//!   queue (its progress serialized as a [`crate::shard::PortableSession`])
//!   and resumed later by deterministic replay.
//! * **Live migration** (`migration: true`): between ticks the fleet may move
//!   one resident from the most backlogged shard to the least backlogged one
//!   with a free slot, when the move strictly improves the pair's makespan —
//!   replay cost included. The replayed frames are charged to the receiving
//!   shard's modeled time.
//!
//! Throughput and utilization are accounted in *modeled* time (the same
//! modeled CPU costs the cluster executive already records), so a fleet run
//! is a pure function of its configuration: same seed, same report, byte for
//! byte — preemption and migration included. Wall-clock timings are measured
//! beside that deterministic outcome, never inside it: [`run_fleet_timed`]
//! returns them as a separate [`WallClockStats`], so real elapsed time — the
//! one quantity that legitimately varies run to run — can be reported without
//! ever touching the fingerprinted output.

use std::sync::Arc;
use std::time::Duration;

use cod_cb::CbError;
use cod_net::Micros;
use cod_trace::{DetTrace, ObsConfig, WallTrace, DRIVER_LANE};
use crane_sim::FidelityTier;

use crate::admission::{AdmissionConfig, AdmissionState};
use crate::executor::{TickResult, WallClockExecutor, WallStopwatch};
use crate::shard::{Completed, PortableSession, Shard, ShardConfig, ShardStats};
use crate::workload::{coarse_eligible, generate, initial_tier, Priority, WorkloadConfig};

/// How shard batches are executed each tick.
///
/// The mode decides *who* steps the shards and how real time is spent — never
/// what the shards compute or the order their results are folded in, so the
/// [`FleetOutcome`] (and therefore `FLEET_cod.json`) is bit-identical across
/// every mode and thread count for the same configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Step shards sequentially on the caller's thread. The pure modeled-time
    /// mode: zero threading overhead, the baseline every other mode must
    /// reproduce bit for bit.
    #[default]
    Modeled,
    /// The legacy fan-out: one scoped OS thread per shard, spawned and joined
    /// every tick. Kept as the reference parallel implementation (and for its
    /// panic-on-join regression coverage); superseded by
    /// [`ExecutionMode::WallClock`] for real throughput measurements.
    ThreadPerShard,
    /// The wall-clock engine: a work-stealing pool of `threads` pinned worker
    /// threads (spawned once per run) pulling shard-batch tasks through a
    /// lock-free injector. The mode to measure real sessions/sec under.
    WallClock {
        /// Worker threads in the pool (clamped to at least one).
        threads: usize,
    },
}

impl ExecutionMode {
    /// Worker threads this mode steps `shards` shards with.
    pub fn threads_for(&self, shards: usize) -> usize {
        match *self {
            ExecutionMode::Modeled => 1,
            ExecutionMode::ThreadPerShard => shards.max(1),
            ExecutionMode::WallClock { threads } => threads.max(1),
        }
    }
}

/// How the fleet weighs shards when placing a queued session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Pick the shard with the fewest resident sessions (the naive policy a
    /// homogeneous fleet gets away with).
    LeastResident,
    /// Pick the shard with the smallest modeled next-tick cost, which each
    /// shard scales to its own CPU speed (see [`Shard::next_tick_cost`]).
    #[default]
    SpeedWeighted,
}

/// Configuration of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of shards.
    pub shards: usize,
    /// Per-shard sizing and pacing.
    pub shard: ShardConfig,
    /// Relative CPU speed per shard (1.0 = the reference desktop PC). An
    /// empty vector means a homogeneous fleet of reference machines; missing
    /// tail entries default to 1.0.
    pub shard_speeds: Vec<f64>,
    /// How queued sessions are matched to shards.
    pub placement: PlacementPolicy,
    /// Whether urgent arrivals may preempt less urgent residents.
    pub preemption: bool,
    /// Whether the fleet may migrate residents between shards to rebalance.
    pub migration: bool,
    /// Bound on the admission queue.
    pub max_pending: usize,
    /// Whether the fleet serves fidelity tiers: Batch sessions are admitted
    /// on the Coarse backend, and under queue pressure coarse-eligible Full
    /// residents are demoted live (promoted back one per calm tick) — shed
    /// fidelity before shedding sessions, buy it back with spare capacity.
    /// Off, every session runs Full, exactly as before the tier split.
    pub tiering: bool,
    /// The session workload.
    pub workload: WorkloadConfig,
    /// How shard batches are executed (the outcome is identical under every
    /// mode; only wall-clock time differs).
    pub execution: ExecutionMode,
    /// What the run records ([`ObsConfig::Disabled`] by default — no hook
    /// point allocates or records). Never serialized into `FLEET_cod.json`:
    /// the report reads the config fields it needs explicitly, so arming
    /// tracing cannot perturb the fingerprinted output.
    pub obs: ObsConfig,
}

impl FleetConfig {
    /// The CI smoke configuration: 64 sessions over `shards` homogeneous
    /// shards.
    pub fn quick(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ShardConfig::default(),
            shard_speeds: Vec::new(),
            placement: PlacementPolicy::SpeedWeighted,
            preemption: false,
            migration: false,
            max_pending: 16,
            tiering: false,
            workload: WorkloadConfig::quick(seed),
            execution: ExecutionMode::ThreadPerShard,
            obs: ObsConfig::Disabled,
        }
    }

    /// The full configuration: 256 sessions over `shards` homogeneous shards.
    pub fn full(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ShardConfig::default(),
            shard_speeds: Vec::new(),
            placement: PlacementPolicy::SpeedWeighted,
            preemption: false,
            migration: false,
            max_pending: 32,
            tiering: false,
            workload: WorkloadConfig::full(seed),
            execution: ExecutionMode::ThreadPerShard,
            obs: ObsConfig::Disabled,
        }
    }

    /// The heterogeneous CI gate configuration: one double-speed shard plus
    /// three half-speed shards serving the quick workload with priorities,
    /// preemption and migration all engaged.
    pub fn heterogeneous_quick(seed: u64) -> FleetConfig {
        FleetConfig {
            shards: 4,
            shard_speeds: vec![2.0, 0.5, 0.5, 0.5],
            preemption: true,
            migration: true,
            ..FleetConfig::quick(4, seed)
        }
    }

    /// The relative CPU speed of shard `i` (1.0 when not listed).
    pub fn speed_of(&self, i: usize) -> f64 {
        self.shard_speeds.get(i).copied().unwrap_or(1.0)
    }
}

/// What happened to one admitted session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Session id (arrival order).
    pub id: u64,
    /// Descriptive name.
    pub name: String,
    /// Frames the session ran.
    pub frames: usize,
    /// The session's priority class.
    pub priority: Priority,
    /// Tick the session arrived at.
    pub arrived_tick: u64,
    /// Tick the session was first placed at.
    pub admitted_tick: u64,
    /// Tick the session retired at.
    pub completed_tick: u64,
    /// Shard that hosted the session when it retired.
    pub shard: usize,
    /// Times the session was preempted back to the queue.
    pub preempted: u32,
    /// Times the session was migrated between shards.
    pub migrated: u32,
    /// Times the session was promoted to the Full tier.
    pub promoted: u32,
    /// Times the session was demoted to the Coarse tier.
    pub demoted: u32,
    /// The fidelity tier the session finished on.
    pub tier: FidelityTier,
    /// Final exam score.
    pub score: f64,
    /// Whether the exam was passed.
    pub passed: bool,
    /// Modeled cost the session charged its final shard.
    pub cost: Micros,
    /// FNV-1a fingerprint of the session's final telemetry digest — the
    /// physics-state witness determinism tests compare across execution
    /// modes and thread counts.
    pub telemetry: u64,
}

impl SessionOutcome {
    /// Arrival-to-retirement latency in fleet ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.completed_tick.saturating_sub(self.arrived_tick) + 1
    }
}

/// Everything a fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The configuration that produced this outcome.
    pub config: FleetConfig,
    /// Fleet ticks executed until the last session drained.
    pub ticks_run: u64,
    /// Modeled serving time: the sum over ticks of the busiest shard's cost
    /// (shards run concurrently, so each tick costs its critical shard).
    pub elapsed_modeled: Micros,
    /// Arrivals offered.
    pub offered: u64,
    /// Placements onto a shard (re-placements of preempted sessions count
    /// again).
    pub admitted: u64,
    /// Sessions completed.
    pub completed: u64,
    /// Arrivals rejected by backpressure.
    pub rejected: u64,
    /// Residents pushed back to the queue by preemption.
    pub preempted: u64,
    /// Residents moved live between shards.
    pub migrated: u64,
    /// Residents promoted live to the Full tier.
    pub promoted: u64,
    /// Residents demoted live to the Coarse tier.
    pub demoted: u64,
    /// Rejections while a slot was free (must be zero).
    pub rejected_with_free_slot: u64,
    /// Largest admission-queue depth observed.
    pub peak_pending: usize,
    /// Per-session outcomes, in completion order.
    pub sessions: Vec<SessionOutcome>,
    /// Per-shard counters.
    pub shard_stats: Vec<ShardStats>,
}

/// The `p`-th percentile (0–100) of a sorted sample, by the same linear
/// interpolation between closest ranks that `cod_bench::measure::percentile`
/// uses — the two layers must agree on what "p95" means.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl FleetOutcome {
    /// Completed sessions per second of modeled serving time.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed_modeled.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// The `p`-th percentile (0–100) of session latency in fleet ticks,
    /// linearly interpolated between closest ranks — the same convention as
    /// `cod_bench::measure::percentile`, so `FLEET_cod.json` and
    /// `BENCH_cod.json` percentiles are comparable. Returns `0.0` when no
    /// session completed.
    pub fn latency_percentile_ticks(&self, p: f64) -> f64 {
        self.latency_percentile_ticks_for(None, p)
    }

    /// [`FleetOutcome::latency_percentile_ticks`] restricted to one priority
    /// class (`None` = all classes).
    pub fn latency_percentile_ticks_for(&self, class: Option<Priority>, p: f64) -> f64 {
        let mut latencies: Vec<f64> = self
            .sessions
            .iter()
            .filter(|s| class.map_or(true, |c| s.priority == c))
            .map(|s| s.latency_ticks() as f64)
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        percentile_sorted(&latencies, p)
    }

    /// Completed sessions of one priority class.
    pub fn completed_of_class(&self, class: Priority) -> usize {
        self.sessions.iter().filter(|s| s.priority == class).count()
    }

    /// Completed sessions that finished on one fidelity tier.
    pub fn completed_of_tier(&self, tier: FidelityTier) -> usize {
        self.sessions.iter().filter(|s| s.tier == tier).count()
    }

    /// [`FleetOutcome::latency_percentile_ticks`] restricted to sessions that
    /// finished on one fidelity tier.
    pub fn latency_percentile_ticks_for_tier(&self, tier: FidelityTier, p: f64) -> f64 {
        let mut latencies: Vec<f64> = self
            .sessions
            .iter()
            .filter(|s| s.tier == tier)
            .map(|s| s.latency_ticks() as f64)
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        percentile_sorted(&latencies, p)
    }

    /// Mean final score over sessions that finished on one fidelity tier, or
    /// `0.0` when none did.
    pub fn mean_score_of_tier(&self, tier: FidelityTier) -> f64 {
        let scores: Vec<f64> =
            self.sessions.iter().filter(|s| s.tier == tier).map(|s| s.score).collect();
        if scores.is_empty() {
            return 0.0;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// Fraction of the modeled serving time shard `i` spent busy, or `0.0`
    /// for an out-of-range index.
    pub fn shard_utilization(&self, i: usize) -> f64 {
        let total = self.elapsed_modeled.as_secs_f64();
        match self.shard_stats.get(i) {
            Some(stats) if total > 0.0 => (stats.busy.as_secs_f64() / total).min(1.0),
            _ => 0.0,
        }
    }

    /// Mean final score over completed sessions.
    pub fn mean_score(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions.iter().map(|s| s.score).sum::<f64>() / self.sessions.len() as f64
    }

    /// Fraction of completed sessions that passed the exam.
    pub fn pass_rate(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions.iter().filter(|s| s.passed).count() as f64 / self.sessions.len() as f64
    }
}

/// One queued session: either a fresh arrival (no frames yet) or a preempted
/// resident awaiting resumption. `seq` keeps FIFO order within a priority
/// class; preempted sessions re-enter at the back of their class.
struct QueueEntry {
    portable: PortableSession,
    seq: u64,
    was_admitted: bool,
}

/// Index of the queue entry to place next: most urgent class first, FIFO
/// (lowest `seq`) within the class.
fn next_queued(queue: &[QueueEntry]) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .max_by_key(|(_, e)| (e.portable.spec.priority, std::cmp::Reverse(e.seq)))
        .map(|(i, _)| i)
}

/// Wall-clock timings of one fleet run, measured with [`WallStopwatch`] and
/// reported *beside* the deterministic [`FleetOutcome`] — never inside it.
/// The outcome derives `PartialEq` and is compared byte for byte across
/// execution modes; real elapsed time legitimately varies run to run, so it
/// lives here, excluded from every fingerprint by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallClockStats {
    /// Real time of the whole run: admission, placement, stepping, folding.
    pub wall: Duration,
    /// Real time spent inside shard batch stepping (the part the execution
    /// mode parallelizes).
    pub stepping_wall: Duration,
    /// Worker threads the execution mode stepped shards with.
    pub threads: usize,
    /// Fleet ticks executed.
    pub ticks: u64,
    /// Per-worker count of shard tasks taken from outside the worker's own
    /// deque (injector batch-takes plus sibling steals). Empty for the
    /// modeled and thread-per-shard modes; diagnostic only, never serialized
    /// into `FLEET_cod.json`.
    pub worker_steals: Vec<u64>,
    /// Per-worker count of empty-handed scheduling rounds. Empty for the
    /// modeled and thread-per-shard modes; diagnostic only, never serialized.
    pub worker_idle_spins: Vec<u64>,
    /// Per-worker count of shard-batch tasks run (from any source). Empty
    /// for the modeled and thread-per-shard modes; diagnostic only, never
    /// serialized.
    pub worker_tasks: Vec<u64>,
}

impl WallClockStats {
    /// Completed sessions per second of real time — the wall-clock
    /// counterpart of [`FleetOutcome::sessions_per_sec`].
    pub fn sessions_per_wall_sec(&self, completed: u64) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            completed as f64 / secs
        }
    }
}

/// Runs a whole fleet to drain: all arrivals offered, every admitted session
/// completed. A pure function of the configuration — running it twice yields
/// identical [`FleetOutcome`]s.
///
/// # Errors
///
/// Returns the first hard error raised by any session's executive.
pub fn run_fleet(config: &FleetConfig) -> Result<FleetOutcome, CbError> {
    run_fleet_timed(config).map(|(outcome, _)| outcome)
}

/// [`run_fleet`] plus the run's wall-clock timings. The outcome is the same
/// pure function of the configuration; the [`WallClockStats`] are the only
/// part that varies run to run, which is exactly why they are returned as a
/// separate value instead of a field of the outcome.
///
/// # Errors
///
/// Returns the first hard error raised by any session's executive.
pub fn run_fleet_timed(config: &FleetConfig) -> Result<(FleetOutcome, WallClockStats), CbError> {
    run_fleet_traced(config).map(|(outcome, stats, _)| (outcome, stats))
}

/// The observability artifacts of one traced fleet run — what
/// [`FleetConfig::obs`] armed, `None` for each disarmed sink.
pub struct TraceArtifacts {
    /// The deterministic sink: counters, histograms and scheduling events
    /// keyed on modeled time and seeded identifiers only. Drain it with
    /// [`DetTrace::to_report_json`] into `OBS_cod.json` — byte-identical per
    /// seed under every execution mode.
    pub det: Option<DetTrace>,
    /// The wall-clock sink: real-time spans from the executor workers, the
    /// shard hot loops and the fleet driver. Export it with
    /// [`WallTrace::to_chrome_json`] for Perfetto.
    pub wall: Option<Arc<WallTrace>>,
}

/// [`run_fleet_timed`] plus the observability artifacts requested by
/// [`FleetConfig::obs`]. With tracing disabled (the default) both artifacts
/// are `None` and the run is exactly [`run_fleet_timed`].
///
/// # Errors
///
/// Returns the first hard error raised by any session's executive.
pub fn run_fleet_traced(
    config: &FleetConfig,
) -> Result<(FleetOutcome, WallClockStats, TraceArtifacts), CbError> {
    let run_started = WallStopwatch::start();
    let mut stepping_wall = Duration::ZERO;
    let mut det = config.obs.deterministic_enabled().then(DetTrace::new);
    let wall = config.obs.wall_enabled().then(|| {
        Arc::new(WallTrace::new(match config.execution {
            ExecutionMode::WallClock { threads } => threads.max(1),
            _ => 0,
        }))
    });
    let executor = match config.execution {
        ExecutionMode::WallClock { threads } => {
            Some(WallClockExecutor::new_traced(threads, wall.clone()))
        }
        _ => None,
    };
    let arrivals = generate(&config.workload);
    let mut admission = AdmissionState::new(AdmissionConfig {
        shards: config.shards,
        slots_per_shard: config.shard.slots,
        max_pending: config.max_pending,
    });
    let mut shards: Vec<Shard> =
        (0..config.shards).map(|i| Shard::new(i, config.shard, config.speed_of(i))).collect();
    if config.obs.enabled() {
        for shard in shards.iter_mut() {
            shard.enable_trace(config.obs.deterministic_enabled(), wall.clone());
        }
    }
    let mut queue: Vec<QueueEntry> = Vec::new();
    let mut next_seq = 0u64;
    let mut sessions: Vec<SessionOutcome> = Vec::with_capacity(arrivals.len());
    let mut next_arrival = 0usize;
    let mut elapsed = Micros::ZERO;
    let mut tick = 0u64;

    let backlog_of = |shards: &[Shard], placement: PlacementPolicy| -> Vec<Micros> {
        match placement {
            PlacementPolicy::LeastResident => Vec::new(),
            PlacementPolicy::SpeedWeighted => shards.iter().map(Shard::placement_cost).collect(),
        }
    };

    // Places the next queued session (most urgent class first), weighted by
    // each shard's modeled backlog under the configured policy. Replay cost
    // of resumed sessions is charged to `resume_busy`. Returns false when the
    // queue is empty or every slot is taken.
    let place_one = |admission: &mut AdmissionState,
                     shards: &mut Vec<Shard>,
                     queue: &mut Vec<QueueEntry>,
                     resume_busy: &mut [Micros],
                     det: &mut Option<DetTrace>,
                     tick: u64|
     -> Result<bool, CbError> {
        let backlog = backlog_of(shards, config.placement);
        let Some((target, class)) = admission.place_weighted(&backlog) else { return Ok(false) };
        let index = next_queued(queue).expect("admission counted a queued session");
        let mut entry = queue.swap_remove(index);
        debug_assert_eq!(entry.portable.spec.priority, class, "queue and ledger disagree");
        if !entry.was_admitted {
            entry.portable.admitted_tick = tick;
        }
        let session = entry.portable.spec.id;
        let replay = shards[target].resume(entry.portable)?;
        resume_busy[target] += replay;
        if let Some(d) = det.as_mut() {
            d.event(tick, "place", session, target as i64);
        }
        Ok(true)
    };

    loop {
        let mut resume_busy = vec![Micros::ZERO; config.shards];
        let tick_start = wall.as_ref().map(|w| w.now_us());

        // 1. Offer the arrivals due at this tick to the bounded queue. A full
        //    queue first drains into any free slot, so an arrival is only
        //    ever rejected when the queue AND every slot are taken — never
        //    while capacity sits idle.
        while next_arrival < arrivals.len() && arrivals[next_arrival].tick <= tick {
            while admission.pending() >= config.max_pending
                && place_one(
                    &mut admission,
                    &mut shards,
                    &mut queue,
                    &mut resume_busy,
                    &mut det,
                    tick,
                )?
            {}
            let arrival = &arrivals[next_arrival];
            if admission.offer(arrival.spec.priority) {
                let mut spec = arrival.spec.clone();
                if config.tiering {
                    // Tiering is an admission policy, not a workload property:
                    // the same generated arrival list drives both run modes.
                    spec.config.tier = initial_tier(spec.priority);
                }
                queue.push(QueueEntry {
                    portable: PortableSession {
                        spec,
                        frames_done: 0,
                        arrived_tick: tick,
                        admitted_tick: tick,
                        preempted: 0,
                        migrated: 0,
                        promoted: 0,
                        demoted: 0,
                    },
                    seq: next_seq,
                    was_admitted: false,
                });
                next_seq += 1;
            } else if let Some(d) = det.as_mut() {
                d.event(tick, "reject", arrival.spec.id, -1);
            }
            next_arrival += 1;
        }

        // 2. Place queued sessions, most urgent class first; with preemption
        //    enabled, an urgent session that finds every slot taken evicts
        //    the least urgent resident (which re-queues with its progress and
        //    resumes later by replay).
        loop {
            while place_one(
                &mut admission,
                &mut shards,
                &mut queue,
                &mut resume_busy,
                &mut det,
                tick,
            )? {}
            if !config.preemption || !admission.can_preempt() {
                break;
            }
            let Some(urgent) = admission.highest_pending() else { break };
            // Victim: the least urgent resident fleet-wide; ties prefer the
            // least progressed (cheapest replay), then the lowest id.
            let victim = shards
                .iter()
                .flat_map(|s| s.residents_overview().into_iter().map(move |v| (s.id, v)))
                .min_by_key(|(sid, v)| (v.priority, v.frames_done, v.id, *sid));
            let Some((shard_id, view)) = victim else { break };
            if view.priority >= urgent {
                break;
            }
            let portable = shards[shard_id].extract(view.index, false);
            admission.preempt(shard_id, portable.spec.priority);
            if let Some(d) = det.as_mut() {
                d.event(tick, "preempt", portable.spec.id, shard_id as i64);
            }
            queue.push(QueueEntry { portable, seq: next_seq, was_admitted: true });
            next_seq += 1;
        }

        // 3. Rebalance: at most one live migration per tick, from the most
        //    backlogged shard to the least backlogged one with a free slot,
        //    and only when the move strictly improves the pair's makespan
        //    with the replay cost accounted.
        if config.migration {
            migrate_one(config, &mut admission, &mut shards, &mut resume_busy, &mut det, tick)?;
        }

        // 3½. Retier: under queue pressure every coarse-eligible Full
        //     resident sheds fidelity (freeing modeled capacity for the
        //     backlog); on a calm tick one demoted session buys its full
        //     rack back. Either direction is an in-place deterministic
        //     replay, charged like a migration's.
        if config.tiering {
            retier_tick(&admission, &mut shards, &mut resume_busy, &mut det, tick)?;
        }

        // 4. Batch-step every shard under the configured execution mode.
        let step_started = WallStopwatch::start();
        let step_start_us = wall.as_ref().map(|w| w.now_us());
        let results = step_all(&mut shards, config.execution, executor.as_ref())?;
        if let (Some(w), Some(start)) = (wall.as_ref(), step_start_us) {
            w.complete(DRIVER_LANE, "step-phase".to_string(), "step", start);
        }
        stepping_wall += step_started.read();

        // 5. Fold the results back in shard order (determinism) and account
        //    the tick at the critical shard's cost, replays included.
        let mut tick_makespan = Micros::ZERO;
        for (shard_id, (completed, busy)) in results.into_iter().enumerate() {
            tick_makespan = tick_makespan.max(busy + resume_busy[shard_id]);
            for done in completed {
                admission.complete(shard_id);
                sessions.push(session_outcome(done, tick, shard_id));
                if let Some(d) = det.as_mut() {
                    let latest = sessions.last().expect("just pushed");
                    d.record("session_latency_ticks", latest.latency_ticks());
                }
            }
        }
        if let Some(d) = det.as_mut() {
            d.record("tick_makespan_us", tick_makespan.0);
        }
        if let (Some(w), Some(start)) = (wall.as_ref(), tick_start) {
            w.complete(DRIVER_LANE, format!("tick{tick}"), "tick", start);
        }
        elapsed += tick_makespan;
        tick += 1;

        let drained = next_arrival == arrivals.len()
            && queue.is_empty()
            && shards.iter().all(|s| s.resident_count() == 0);
        if drained {
            break;
        }
        assert!(
            tick < arrivals.last().map(|a| a.tick).unwrap_or(0) + 1_000_000,
            "fleet failed to drain: a session is starving"
        );
    }

    debug_assert!(admission.violations().is_empty(), "{:?}", admission.violations());
    let promoted = shards.iter().map(|s| s.stats.promoted).sum();
    let demoted = shards.iter().map(|s| s.stats.demoted).sum();
    if let Some(d) = det.as_mut() {
        // The run-level aggregates, then the per-shard frame counters folded
        // in shard-id order — every input is modeled/seeded, so the drained
        // report is a pure function of the configuration.
        d.set("ticks_run", tick);
        d.set("offered", admission.offered);
        d.set("admitted", admission.admitted);
        d.set("completed", admission.completed);
        d.set("rejected", admission.rejected);
        d.set("preempted", admission.preempted);
        d.set("migrated", admission.migrated);
        d.set("promoted", promoted);
        d.set("demoted", demoted);
        for shard in &shards {
            shard.fold_det_into(d);
        }
    }
    let stats = WallClockStats {
        wall: run_started.read(),
        stepping_wall,
        threads: config.execution.threads_for(config.shards),
        ticks: tick,
        worker_steals: executor.as_ref().map(WallClockExecutor::worker_steals).unwrap_or_default(),
        worker_idle_spins: executor
            .as_ref()
            .map(WallClockExecutor::worker_idle_spins)
            .unwrap_or_default(),
        worker_tasks: executor.as_ref().map(WallClockExecutor::worker_tasks).unwrap_or_default(),
    };
    let outcome = FleetOutcome {
        config: config.clone(),
        ticks_run: tick,
        elapsed_modeled: elapsed,
        offered: admission.offered,
        admitted: admission.admitted,
        completed: admission.completed,
        rejected: admission.rejected,
        preempted: admission.preempted,
        migrated: admission.migrated,
        promoted,
        demoted,
        rejected_with_free_slot: admission.rejected_with_free_slot,
        peak_pending: admission.peak_pending,
        sessions,
        shard_stats: shards.into_iter().map(|s| s.stats).collect(),
    };
    Ok((outcome, stats, TraceArtifacts { det, wall }))
}

/// The per-tick retier policy of a tiering fleet: shed fidelity before
/// shedding sessions, buy it back with spare capacity.
///
/// * **Pressure** (admission queue non-empty): every Full resident whose
///   class tolerates the Coarse backend is demoted this tick. Demotions are
///   cheapest exactly when pressure hits — fresh placements have few frames
///   to replay — and the freed modeled capacity drains the queue sooner.
/// * **Calm** (queue empty): one demoted session per tick is promoted back
///   to its Full home tier, cheapest replay first. Batch sessions are
///   admitted Coarse and stay there; only classes whose
///   [`initial_tier`] is Full are restored.
fn retier_tick(
    admission: &AdmissionState,
    shards: &mut [Shard],
    resume_busy: &mut [Micros],
    det: &mut Option<DetTrace>,
    tick: u64,
) -> Result<(), CbError> {
    if admission.pending() > 0 {
        for shard in shards.iter_mut() {
            loop {
                let target = shard
                    .residents_overview()
                    .into_iter()
                    .filter(|v| v.tier == FidelityTier::Full && coarse_eligible(v.priority))
                    .min_by_key(|v| (v.frames_done, v.id));
                let Some(view) = target else { break };
                let cost = shard.retier(view.index, FidelityTier::Coarse)?;
                resume_busy[shard.id] += cost;
                if let Some(d) = det.as_mut() {
                    d.event(tick, "demote", view.id, shard.id as i64);
                }
            }
        }
    } else {
        // Promotion pays a full-fidelity replay of everything the session
        // has run so far, so it is only worth buying while a meaningful
        // share of the session is still ahead: a near-finished straggler
        // would charge a session-sized replay for a handful of Full frames.
        let candidate = shards
            .iter()
            .flat_map(|s| s.residents_overview().into_iter().map(move |v| (s.id, v)))
            .filter(|(_, v)| {
                v.tier == FidelityTier::Coarse
                    && initial_tier(v.priority) == FidelityTier::Full
                    && v.frames_done <= 2 * v.remaining_frames
            })
            .min_by_key(|(sid, v)| (v.frames_done, v.id, *sid));
        if let Some((sid, view)) = candidate {
            let cost = shards[sid].retier(view.index, FidelityTier::Full)?;
            resume_busy[sid] += cost;
            if let Some(d) = det.as_mut() {
                d.event(tick, "promote", view.id, sid as i64);
            }
        }
    }
    Ok(())
}

/// Performs at most one strictly-improving migration: donor = most
/// backlogged shard, receiver = least backlogged shard with a free slot,
/// candidate = the donor's least progressed resident (cheapest replay).
fn migrate_one(
    config: &FleetConfig,
    admission: &mut AdmissionState,
    shards: &mut [Shard],
    resume_busy: &mut [Micros],
    det: &mut Option<DetTrace>,
    tick: u64,
) -> Result<(), CbError> {
    let backlog: Vec<Micros> = shards.iter().map(Shard::backlog_cost).collect();
    let donor = (0..shards.len())
        .filter(|i| shards[*i].resident_count() > 0)
        .max_by_key(|i| (backlog[*i], std::cmp::Reverse(*i)));
    let receiver =
        (0..shards.len()).filter(|i| shards[*i].free_slots() > 0).min_by_key(|i| (backlog[*i], *i));
    let (Some(donor), Some(receiver)) = (donor, receiver) else { return Ok(()) };
    if donor == receiver {
        return Ok(());
    }
    let Some(view) =
        shards[donor].residents_overview().into_iter().min_by_key(|v| (v.frames_done, v.id))
    else {
        return Ok(());
    };
    // The donor-local per-frame cost, rescaled to the receiver's machine.
    let per_frame_receiver = Micros(
        (view.per_frame.0 as f64 * config.speed_of(donor) / config.speed_of(receiver)).round()
            as u64,
    );
    let replay = Micros(per_frame_receiver.0.saturating_mul(view.frames_done as u64));
    let remaining = Micros(per_frame_receiver.0.saturating_mul(view.remaining_frames as u64));
    let receiver_after =
        Micros(backlog[receiver].0.saturating_add(replay.0).saturating_add(remaining.0));
    if receiver_after >= backlog[donor] {
        return Ok(());
    }
    let portable = shards[donor].extract(view.index, true);
    admission.migrate(donor, receiver);
    shards[receiver].note_migrated_in();
    if let Some(d) = det.as_mut() {
        d.event(tick, "migrate", portable.spec.id, receiver as i64);
    }
    let cost = shards[receiver].resume(portable)?;
    resume_busy[receiver] += cost;
    Ok(())
}

fn session_outcome(done: Completed, tick: u64, shard: usize) -> SessionOutcome {
    SessionOutcome {
        id: done.id,
        name: done.name,
        frames: done.frames,
        priority: done.priority,
        arrived_tick: done.arrived_tick,
        admitted_tick: done.admitted_tick,
        completed_tick: tick,
        shard,
        preempted: done.preempted,
        migrated: done.migrated,
        promoted: done.promoted,
        demoted: done.demoted,
        tier: done.tier,
        score: done.report.score,
        passed: done.report.passed,
        cost: done.cost,
        telemetry: done.telemetry,
    }
}

/// Steps every shard once under the configured execution mode: sequentially,
/// on one scoped OS thread per shard, or across the work-stealing pool.
/// Results come back in shard order under every mode.
fn step_all(
    shards: &mut Vec<Shard>,
    mode: ExecutionMode,
    executor: Option<&WallClockExecutor>,
) -> Result<Vec<TickResult>, CbError> {
    match mode {
        ExecutionMode::WallClock { .. } => {
            executor.expect("a wall-clock run carries its executor").step_shards(shards)
        }
        ExecutionMode::ThreadPerShard if shards.len() > 1 => std::thread::scope(|scope| {
            let handles: Vec<_> =
                shards.iter_mut().map(|shard| scope.spawn(move || shard.step_batch())).collect();
            handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
        }),
        _ => shards.iter_mut().map(Shard::step_batch).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ShardConfig {
                slots: 2,
                batch_frames: 8,
                pool_per_shape: 1,
                ..ShardConfig::default()
            },
            shard_speeds: Vec::new(),
            placement: PlacementPolicy::SpeedWeighted,
            preemption: false,
            migration: false,
            max_pending: 4,
            tiering: false,
            workload: WorkloadConfig {
                sessions: 6,
                seed,
                base_frames: 16,
                mean_interarrival_ticks: 1,
            },
            execution: ExecutionMode::Modeled,
            obs: ObsConfig::Disabled,
        }
    }

    #[test]
    fn fleet_drains_and_conserves_sessions() {
        let outcome = run_fleet(&tiny_config(2, 0xC0D)).unwrap();
        assert_eq!(outcome.offered, 6);
        assert_eq!(outcome.offered, outcome.completed + outcome.rejected);
        assert_eq!(outcome.sessions.len(), outcome.completed as usize);
        assert_eq!(outcome.rejected_with_free_slot, 0);
        assert!(outcome.elapsed_modeled > Micros::ZERO);
        assert!(outcome.sessions_per_sec() > 0.0);
        for s in &outcome.sessions {
            assert!(s.arrived_tick <= s.admitted_tick);
            assert!(s.admitted_tick <= s.completed_tick);
            assert!(s.frames > 0);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let config = tiny_config(2, 42);
        let a = run_fleet(&config).unwrap();
        let b = run_fleet(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn every_execution_mode_reproduces_the_modeled_outcome() {
        let mut config = tiny_config(3, 17);
        let modeled = run_fleet(&config).unwrap();
        let modes = [
            ExecutionMode::ThreadPerShard,
            ExecutionMode::WallClock { threads: 1 },
            ExecutionMode::WallClock { threads: 2 },
            ExecutionMode::WallClock { threads: 4 },
        ];
        for mode in modes {
            config.execution = mode;
            let run = run_fleet(&config).unwrap();
            // The configs differ only in the execution mode; everything the
            // mode could possibly perturb must be identical.
            assert_eq!(modeled.sessions, run.sessions, "sessions diverged under {mode:?}");
            assert_eq!(modeled.elapsed_modeled, run.elapsed_modeled);
            assert_eq!(modeled.shard_stats, run.shard_stats);
        }
    }

    #[test]
    fn timed_runs_report_wall_clock_beside_the_outcome() {
        let mut config = tiny_config(2, 17);
        config.execution = ExecutionMode::WallClock { threads: 2 };
        let (outcome, stats) = run_fleet_timed(&config).unwrap();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.ticks, outcome.ticks_run);
        assert!(stats.wall > Duration::ZERO, "a drained fleet took real time");
        assert!(stats.stepping_wall <= stats.wall, "stepping is a slice of the whole run");
        assert!(stats.sessions_per_wall_sec(outcome.completed) > 0.0);
        // The timings live beside the outcome, never in it: the outcome of a
        // timed run equals the outcome of an untimed one, field for field.
        assert_eq!(outcome, run_fleet(&config).unwrap());
    }

    #[test]
    fn thread_per_shard_panic_surfaces_as_a_failed_join() {
        // Regression: the `.expect("shard thread panicked")` join branch of
        // the scoped fan-out was uncovered — a worker panic must abort the
        // tick with that message, not hang or vanish.
        for mode in [ExecutionMode::ThreadPerShard, ExecutionMode::WallClock { threads: 2 }] {
            let mut shards: Vec<Shard> =
                (0..2).map(|i| Shard::new(i, ShardConfig::default(), 1.0)).collect();
            shards[1].poison_for_test = true;
            let executor = match mode {
                ExecutionMode::WallClock { threads } => Some(WallClockExecutor::new(threads)),
                _ => None,
            };
            let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                step_all(&mut shards, mode, executor.as_ref())
            }))
            .expect_err("a poisoned shard must panic the tick");
            // The scoped join's `.expect` carries a formatted String payload;
            // the executor re-panics with a &str — accept either shape.
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(
                message.contains("shard thread panicked"),
                "wrong panic under {mode:?}: {message:?}"
            );
        }
    }

    #[test]
    fn more_shards_raise_modeled_throughput() {
        let one = run_fleet(&tiny_config(1, 9)).unwrap();
        let four = run_fleet(&tiny_config(4, 9)).unwrap();
        assert_eq!(one.completed, four.completed, "same workload must complete either way");
        assert!(
            four.sessions_per_sec() > one.sessions_per_sec() * 1.5,
            "4 shards {:.2}/s vs 1 shard {:.2}/s",
            four.sessions_per_sec(),
            one.sessions_per_sec()
        );
    }

    #[test]
    fn saturated_fleet_rejects_by_backpressure() {
        let mut config = tiny_config(1, 3);
        config.shard.slots = 1;
        config.max_pending = 1;
        config.workload.sessions = 8;
        config.workload.mean_interarrival_ticks = 0;
        let outcome = run_fleet(&config).unwrap();
        assert!(outcome.rejected > 0, "an overwhelmed fleet must shed load");
        assert_eq!(outcome.rejected_with_free_slot, 0);
        assert_eq!(outcome.offered, outcome.completed + outcome.rejected);
    }

    #[test]
    fn latency_percentiles_interpolate_like_cod_bench() {
        let mut outcome = run_fleet(&tiny_config(2, 0xC0D)).unwrap();
        // Doctor a known latency distribution: 1, 2, 3, 4 ticks.
        outcome.sessions.truncate(4);
        for (i, s) in outcome.sessions.iter_mut().enumerate() {
            s.arrived_tick = 0;
            s.completed_tick = i as u64; // latency = completed - arrived + 1
        }
        assert_eq!(outcome.latency_percentile_ticks(0.0), 1.0);
        assert_eq!(outcome.latency_percentile_ticks(100.0), 4.0);
        // p50 over [1, 2, 3, 4]: rank 1.5 -> 2.5, the interpolated median
        // (`.round()` used to report 3).
        assert_eq!(outcome.latency_percentile_ticks(50.0), 2.5);
        outcome.sessions.clear();
        assert_eq!(outcome.latency_percentile_ticks(50.0), 0.0, "no sessions: percentile is 0");
    }

    #[test]
    fn shard_utilization_is_zero_out_of_range() {
        let outcome = run_fleet(&tiny_config(2, 0xC0D)).unwrap();
        assert!(outcome.shard_utilization(0) > 0.0);
        // Regression: this indexed `shard_stats[i]` unchecked and panicked.
        assert_eq!(outcome.shard_utilization(99), 0.0);
    }

    #[test]
    fn heterogeneous_speed_weighted_placement_beats_least_resident() {
        let mut config = tiny_config(4, 0xC0D);
        config.shard =
            ShardConfig { slots: 4, batch_frames: 8, pool_per_shape: 2, ..ShardConfig::default() };
        config.max_pending = 16;
        config.workload.sessions = 16;
        config.workload.base_frames = 24;
        config.workload.mean_interarrival_ticks = 1;
        config.shard_speeds = vec![2.0, 0.5, 0.5, 0.5];
        config.placement = PlacementPolicy::LeastResident;
        let naive = run_fleet(&config).unwrap();
        config.placement = PlacementPolicy::SpeedWeighted;
        let weighted = run_fleet(&config).unwrap();
        assert_eq!(naive.completed, weighted.completed);
        assert!(
            weighted.sessions_per_sec() > naive.sessions_per_sec(),
            "speed-weighted {:.2}/s must beat residency-only {:.2}/s on a 1x2.0 + 3x0.5 fleet",
            weighted.sessions_per_sec(),
            naive.sessions_per_sec()
        );
        // The fast shard must attract the bulk of the work.
        let fast = weighted.shard_stats[0].sessions_completed;
        let slow: u64 = weighted.shard_stats[1..].iter().map(|s| s.sessions_completed).sum();
        assert!(fast >= slow, "fast shard served {fast} vs {slow} across the slow three");
    }

    #[test]
    fn preemption_favors_interactive_latency_and_conserves_sessions() {
        let mut config = tiny_config(1, 1);
        config.shard.slots = 1;
        config.shard.batch_frames = 4;
        config.max_pending = 8;
        config.workload.sessions = 8;
        // Paced arrivals: preemption only triggers when a more urgent
        // session arrives *after* a less urgent one was already placed.
        config.workload.mean_interarrival_ticks = 1;
        let fifo = run_fleet(&config).unwrap();
        config.preemption = true;
        let preempting = run_fleet(&config).unwrap();
        assert_eq!(fifo.completed + fifo.rejected, fifo.offered);
        assert_eq!(preempting.completed + preempting.rejected, preempting.offered);
        assert!(preempting.preempted > 0, "a saturated single slot must preempt");
        // Every preemption is re-accounted: placements = completions + preemptions.
        assert_eq!(preempting.admitted, preempting.completed + preempting.preempted);
        let sum: u32 = preempting.sessions.iter().map(|s| s.preempted).sum();
        assert_eq!(u64::from(sum), preempting.preempted);
        // Interactive latency must not get worse than the FIFO run's.
        let p95 =
            |o: &FleetOutcome| o.latency_percentile_ticks_for(Some(Priority::Interactive), 95.0);
        assert!(
            p95(&preempting) <= p95(&fifo),
            "interactive p95 {} vs FIFO {}",
            p95(&preempting),
            p95(&fifo)
        );
    }

    #[test]
    fn migration_rebalances_without_changing_session_results() {
        let mut config = tiny_config(2, 0x517E);
        config.workload.sessions = 8;
        config.workload.base_frames = 32;
        config.workload.mean_interarrival_ticks = 1;
        config.max_pending = 8;
        config.shard_speeds = vec![2.0, 0.5];
        let pinned = run_fleet(&config).unwrap();
        config.migration = true;
        let migrating = run_fleet(&config).unwrap();
        assert!(migrating.migrated > 0, "a 4x speed gap must trigger at least one migration");
        let sum: u32 = migrating.sessions.iter().map(|s| s.migrated).sum();
        assert_eq!(u64::from(sum), migrating.migrated);
        assert_eq!(pinned.completed, migrating.completed);
        // Physics is placement-independent: same scores either way.
        for s in &migrating.sessions {
            let twin = pinned.sessions.iter().find(|p| p.id == s.id).expect("same population");
            assert_eq!(twin.score, s.score, "migration changed session {}'s score", s.id);
            assert_eq!(twin.passed, s.passed);
            assert_eq!(twin.frames, s.frames);
        }
    }

    fn burst_config(seed: u64) -> FleetConfig {
        let mut config = tiny_config(2, seed);
        config.workload.sessions = 12;
        config.workload.mean_interarrival_ticks = 0; // burst: pressure, then a calm drain
        config.max_pending = 12;
        config
    }

    #[test]
    fn tiered_fleet_demotes_under_pressure_and_multiplies_throughput() {
        let mut config = burst_config(0xC0D);
        let all_full = run_fleet(&config).unwrap();
        config.tiering = true;
        let tiered = run_fleet(&config).unwrap();
        // Tick-granularity dynamics are tier-independent: the same sessions
        // complete, only the modeled serving time shrinks.
        assert_eq!(all_full.completed, tiered.completed);
        assert_eq!(all_full.rejected, tiered.rejected);
        assert!(tiered.demoted > 0, "a bursty queue must demote residents");
        assert!(
            tiered.sessions_per_sec() > all_full.sessions_per_sec(),
            "tiered {:.2}/s must beat all-Full {:.2}/s",
            tiered.sessions_per_sec(),
            all_full.sessions_per_sec()
        );
        // Promotion/demotion ledgers: per-session sums equal fleet totals
        // equal per-shard sums.
        let psum: u32 = tiered.sessions.iter().map(|s| s.promoted).sum();
        let dsum: u32 = tiered.sessions.iter().map(|s| s.demoted).sum();
        assert_eq!(u64::from(psum), tiered.promoted);
        assert_eq!(u64::from(dsum), tiered.demoted);
        assert_eq!(tiered.promoted, tiered.shard_stats.iter().map(|s| s.promoted).sum::<u64>());
        assert_eq!(tiered.demoted, tiered.shard_stats.iter().map(|s| s.demoted).sum::<u64>());
        for s in &tiered.sessions {
            // Interactive sessions never leave the full rack; Batch is
            // admitted Coarse and never promoted.
            if s.priority == Priority::Interactive {
                assert_eq!((s.tier, s.promoted, s.demoted), (FidelityTier::Full, 0, 0));
            }
            if s.priority == Priority::Batch {
                assert_eq!((s.tier, s.promoted), (FidelityTier::Coarse, 0));
            }
        }
        assert!(tiered.completed_of_tier(FidelityTier::Coarse) > 0);
    }

    #[test]
    fn tiering_is_transparent_to_untouched_sessions_and_deterministic() {
        let mut config = burst_config(7);
        config.tiering = true;
        let a = run_fleet(&config).unwrap();
        let b = run_fleet(&config).unwrap();
        assert_eq!(a, b, "a tiering run must stay a pure function of its config");
        config.tiering = false;
        let full = run_fleet(&config).unwrap();
        for s in &a.sessions {
            let twin = full.sessions.iter().find(|f| f.id == s.id).expect("same population");
            if s.tier == FidelityTier::Full {
                // Finishing on Full means the last (re)build replayed every
                // frame on the full rack — bit-identical to the all-Full run
                // even for sessions that spent time demoted in between.
                assert_eq!(twin.score, s.score, "session {} score changed", s.id);
                assert_eq!(twin.passed, s.passed);
            }
        }
    }

    #[test]
    fn heterogeneous_quick_config_is_deterministic_with_everything_on() {
        let config = FleetConfig::heterogeneous_quick(7);
        let mut small = config.clone();
        small.workload.sessions = 16;
        small.workload.mean_interarrival_ticks = 0;
        small.execution = ExecutionMode::Modeled;
        let a = run_fleet(&small).unwrap();
        let b = run_fleet(&small).unwrap();
        assert_eq!(a, b);
        let mut threaded = small.clone();
        threaded.execution = ExecutionMode::ThreadPerShard;
        let c = run_fleet(&threaded).unwrap();
        assert_eq!(a.sessions, c.sessions);
        assert_eq!(a.elapsed_modeled, c.elapsed_modeled);
        let mut pooled = small.clone();
        pooled.execution = ExecutionMode::WallClock { threads: 3 };
        let d = run_fleet(&pooled).unwrap();
        assert_eq!(a.sessions, d.sessions);
        assert_eq!(a.elapsed_modeled, d.elapsed_modeled);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        /// Whatever the schedule — random seeds, thread counts, shard counts,
        /// arrival pacing, preemption on or off — interleaving admission
        /// hand-off with shard stepping under the work-stealing executor
        /// preserves the conservation ledger and reproduces the modeled run
        /// bit for bit.
        #[test]
        fn prop_executor_interleaving_preserves_the_conservation_ledger(
            seed in 0u64..(1 << 32),
            threads in 1usize..5,
            shards in 1usize..4,
            preemption in any::<bool>(),
            interarrival in 0u64..3,
        ) {
            let mut config = tiny_config(shards, seed);
            config.workload.sessions = 6;
            config.workload.base_frames = 12;
            config.workload.mean_interarrival_ticks = interarrival;
            config.preemption = preemption;
            config.max_pending = 3; // tight queue: some schedules also reject
            let modeled = run_fleet(&config).unwrap();
            config.execution = ExecutionMode::WallClock { threads };
            let pooled = run_fleet(&config).unwrap();
            // The admission ledger balances (the queue is empty after a
            // drain, so pending drops out of the invariant):
            // offered + preempted = admitted + rejected + pending.
            prop_assert_eq!(
                pooled.offered + pooled.preempted,
                pooled.admitted + pooled.rejected
            );
            prop_assert_eq!(pooled.admitted, pooled.completed + pooled.preempted);
            prop_assert_eq!(pooled.rejected_with_free_slot, 0);
            // And the executor run is the modeled run, bit for bit.
            prop_assert_eq!(&modeled.sessions, &pooled.sessions);
            prop_assert_eq!(modeled.elapsed_modeled, pooled.elapsed_modeled);
            prop_assert_eq!(&modeled.shard_stats, &pooled.shard_stats);
            prop_assert_eq!(
                (modeled.offered, modeled.admitted, modeled.completed, modeled.rejected,
                 modeled.preempted, modeled.peak_pending),
                (pooled.offered, pooled.admitted, pooled.completed, pooled.rejected,
                 pooled.preempted, pooled.peak_pending)
            );
        }
    }
}
