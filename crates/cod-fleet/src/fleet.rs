//! The fleet executive: admit, place, batch-step and retire sessions across
//! a pool of shards, deterministically.
//!
//! One fleet *tick* is the unit of serving time: arrivals due at the tick are
//! offered to the bounded admission queue (overflow is rejected —
//! backpressure), queued sessions are placed least-loaded-first onto shards
//! with free slots, and every shard then advances each of its resident
//! sessions by one batch of executive frames. Shards are independent, so the
//! stepping fans out across OS threads when asked to; results are folded back
//! in shard order, which keeps the outcome bit-identical whether the run was
//! parallel or not.
//!
//! Throughput and utilization are accounted in *modeled* time (the same
//! modeled CPU costs the cluster executive already records), so a fleet run
//! is a pure function of its configuration: same seed, same report, byte for
//! byte.

use std::collections::VecDeque;

use cod_cb::CbError;
use cod_net::Micros;

use crate::admission::{AdmissionConfig, AdmissionState};
use crate::shard::{Completed, Shard, ShardConfig, ShardStats};
use crate::workload::{generate, WorkloadConfig};

/// Configuration of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of shards.
    pub shards: usize,
    /// Per-shard sizing and pacing.
    pub shard: ShardConfig,
    /// Bound on the admission queue.
    pub max_pending: usize,
    /// The session workload.
    pub workload: WorkloadConfig,
    /// Step shards on OS threads (the outcome is identical either way).
    pub parallel: bool,
}

impl FleetConfig {
    /// The CI smoke configuration: 64 sessions over `shards` shards.
    pub fn quick(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ShardConfig::default(),
            max_pending: 16,
            workload: WorkloadConfig::quick(seed),
            parallel: true,
        }
    }

    /// The full configuration: 256 sessions over `shards` shards.
    pub fn full(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ShardConfig::default(),
            max_pending: 32,
            workload: WorkloadConfig::full(seed),
            parallel: true,
        }
    }
}

/// What happened to one admitted session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Session id (arrival order).
    pub id: u64,
    /// Descriptive name.
    pub name: String,
    /// Frames the session ran.
    pub frames: usize,
    /// Tick the session arrived at.
    pub arrived_tick: u64,
    /// Tick the session was placed at.
    pub admitted_tick: u64,
    /// Tick the session retired at.
    pub completed_tick: u64,
    /// Shard that hosted the session.
    pub shard: usize,
    /// Final exam score.
    pub score: f64,
    /// Whether the exam was passed.
    pub passed: bool,
    /// Modeled cost the session charged its shard.
    pub cost: Micros,
}

impl SessionOutcome {
    /// Arrival-to-retirement latency in fleet ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.completed_tick.saturating_sub(self.arrived_tick) + 1
    }
}

/// Everything a fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The configuration that produced this outcome.
    pub config: FleetConfig,
    /// Fleet ticks executed until the last session drained.
    pub ticks_run: u64,
    /// Modeled serving time: the sum over ticks of the busiest shard's cost
    /// (shards run concurrently, so each tick costs its critical shard).
    pub elapsed_modeled: Micros,
    /// Arrivals offered.
    pub offered: u64,
    /// Arrivals admitted (placed on a shard).
    pub admitted: u64,
    /// Sessions completed.
    pub completed: u64,
    /// Arrivals rejected by backpressure.
    pub rejected: u64,
    /// Rejections while a slot was free (must be zero).
    pub rejected_with_free_slot: u64,
    /// Largest admission-queue depth observed.
    pub peak_pending: usize,
    /// Per-session outcomes, in completion order.
    pub sessions: Vec<SessionOutcome>,
    /// Per-shard counters.
    pub shard_stats: Vec<ShardStats>,
}

impl FleetOutcome {
    /// Completed sessions per second of modeled serving time.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed_modeled.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// The `p`-th percentile (0–100) of session latency in fleet ticks.
    pub fn latency_percentile_ticks(&self, p: f64) -> u64 {
        if self.sessions.is_empty() {
            return 0;
        }
        let mut latencies: Vec<u64> =
            self.sessions.iter().map(SessionOutcome::latency_ticks).collect();
        latencies.sort_unstable();
        let rank = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
        latencies[rank.min(latencies.len() - 1)]
    }

    /// Fraction of the modeled serving time shard `i` spent busy.
    pub fn shard_utilization(&self, i: usize) -> f64 {
        let total = self.elapsed_modeled.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            (self.shard_stats[i].busy.as_secs_f64() / total).min(1.0)
        }
    }

    /// Mean final score over completed sessions.
    pub fn mean_score(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions.iter().map(|s| s.score).sum::<f64>() / self.sessions.len() as f64
    }

    /// Fraction of completed sessions that passed the exam.
    pub fn pass_rate(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions.iter().filter(|s| s.passed).count() as f64 / self.sessions.len() as f64
    }
}

/// Runs a whole fleet to drain: all arrivals offered, every admitted session
/// completed. A pure function of the configuration — running it twice yields
/// identical [`FleetOutcome`]s.
///
/// # Errors
///
/// Returns the first hard error raised by any session's executive.
pub fn run_fleet(config: &FleetConfig) -> Result<FleetOutcome, CbError> {
    let arrivals = generate(&config.workload);
    let mut admission = AdmissionState::new(AdmissionConfig {
        shards: config.shards,
        slots_per_shard: config.shard.slots,
        max_pending: config.max_pending,
    });
    let mut shards: Vec<Shard> = (0..config.shards).map(|i| Shard::new(i, config.shard)).collect();
    let mut queue: VecDeque<(crate::workload::SessionSpec, u64)> = VecDeque::new();
    let mut sessions: Vec<SessionOutcome> = Vec::with_capacity(arrivals.len());
    let mut next_arrival = 0usize;
    let mut elapsed = Micros::ZERO;
    let mut tick = 0u64;

    // Places the longest-waiting queued session, weighted by each shard's
    // modeled backlog (the per-session cost hints). Returns false when the
    // queue is empty or every slot is taken.
    let place_one = |admission: &mut AdmissionState,
                     shards: &mut Vec<Shard>,
                     queue: &mut VecDeque<(crate::workload::SessionSpec, u64)>,
                     tick: u64|
     -> Result<bool, CbError> {
        let backlog: Vec<Micros> = shards.iter().map(Shard::backlog_cost).collect();
        let Some(target) = admission.place_weighted(&backlog) else { return Ok(false) };
        let (spec, arrived) = queue.pop_front().expect("admission counted a queued session");
        shards[target].admit(spec, arrived, tick)?;
        Ok(true)
    };

    loop {
        // 1. Offer the arrivals due at this tick to the bounded queue. A full
        //    queue first drains into any free slot, so an arrival is only
        //    ever rejected when the queue AND every slot are taken — never
        //    while capacity sits idle.
        while next_arrival < arrivals.len() && arrivals[next_arrival].tick <= tick {
            while admission.pending() >= config.max_pending
                && place_one(&mut admission, &mut shards, &mut queue, tick)?
            {}
            if admission.offer() {
                queue.push_back((arrivals[next_arrival].spec.clone(), tick));
            }
            next_arrival += 1;
        }

        // 2. Place queued sessions least-loaded-first.
        while place_one(&mut admission, &mut shards, &mut queue, tick)? {}

        // 3. Batch-step every shard; fan out across threads when asked to.
        let results = step_all(&mut shards, config.parallel)?;

        // 4. Fold the results back in shard order (determinism) and account
        //    the tick at the critical shard's cost.
        let mut tick_makespan = Micros::ZERO;
        for (shard_id, (completed, busy)) in results.into_iter().enumerate() {
            tick_makespan = tick_makespan.max(busy);
            for done in completed {
                admission.complete(shard_id);
                sessions.push(session_outcome(done, tick, shard_id));
            }
        }
        elapsed += tick_makespan;
        tick += 1;

        let drained = next_arrival == arrivals.len()
            && queue.is_empty()
            && shards.iter().all(|s| s.resident_count() == 0);
        if drained {
            break;
        }
        assert!(
            tick < arrivals.last().map(|a| a.tick).unwrap_or(0) + 1_000_000,
            "fleet failed to drain: a session is starving"
        );
    }

    debug_assert!(admission.violations().is_empty(), "{:?}", admission.violations());
    Ok(FleetOutcome {
        config: *config,
        ticks_run: tick,
        elapsed_modeled: elapsed,
        offered: admission.offered,
        admitted: admission.admitted,
        completed: admission.completed,
        rejected: admission.rejected,
        rejected_with_free_slot: admission.rejected_with_free_slot,
        peak_pending: admission.peak_pending,
        sessions,
        shard_stats: shards.into_iter().map(|s| s.stats).collect(),
    })
}

fn session_outcome(done: Completed, tick: u64, shard: usize) -> SessionOutcome {
    SessionOutcome {
        id: done.id,
        name: done.name,
        frames: done.frames,
        arrived_tick: done.arrived_tick,
        admitted_tick: done.admitted_tick,
        completed_tick: tick,
        shard,
        score: done.report.score,
        passed: done.report.passed,
        cost: done.cost,
    }
}

type TickResult = (Vec<Completed>, Micros);

/// Steps every shard once; sequentially, or on one OS thread per shard.
fn step_all(shards: &mut [Shard], parallel: bool) -> Result<Vec<TickResult>, CbError> {
    if !parallel || shards.len() <= 1 {
        return shards.iter_mut().map(Shard::step_batch).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            shards.iter_mut().map(|shard| scope.spawn(move || shard.step_batch())).collect();
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ShardConfig { slots: 2, batch_frames: 8, pool_per_shape: 1 },
            max_pending: 4,
            workload: WorkloadConfig {
                sessions: 6,
                seed,
                base_frames: 16,
                mean_interarrival_ticks: 1,
            },
            parallel: false,
        }
    }

    #[test]
    fn fleet_drains_and_conserves_sessions() {
        let outcome = run_fleet(&tiny_config(2, 0xC0D)).unwrap();
        assert_eq!(outcome.offered, 6);
        assert_eq!(outcome.offered, outcome.completed + outcome.rejected);
        assert_eq!(outcome.sessions.len(), outcome.completed as usize);
        assert_eq!(outcome.rejected_with_free_slot, 0);
        assert!(outcome.elapsed_modeled > Micros::ZERO);
        assert!(outcome.sessions_per_sec() > 0.0);
        for s in &outcome.sessions {
            assert!(s.arrived_tick <= s.admitted_tick);
            assert!(s.admitted_tick <= s.completed_tick);
            assert!(s.frames > 0);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let config = tiny_config(2, 42);
        let a = run_fleet(&config).unwrap();
        let b = run_fleet(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_sequential_stepping_agree() {
        let mut config = tiny_config(3, 17);
        let sequential = run_fleet(&config).unwrap();
        config.parallel = true;
        let parallel = run_fleet(&config).unwrap();
        // The configs differ only in the `parallel` flag; everything else
        // must be identical.
        assert_eq!(sequential.sessions, parallel.sessions);
        assert_eq!(sequential.elapsed_modeled, parallel.elapsed_modeled);
        assert_eq!(sequential.shard_stats, parallel.shard_stats);
    }

    #[test]
    fn more_shards_raise_modeled_throughput() {
        let one = run_fleet(&tiny_config(1, 9)).unwrap();
        let four = run_fleet(&tiny_config(4, 9)).unwrap();
        assert_eq!(one.completed, four.completed, "same workload must complete either way");
        assert!(
            four.sessions_per_sec() > one.sessions_per_sec() * 1.5,
            "4 shards {:.2}/s vs 1 shard {:.2}/s",
            four.sessions_per_sec(),
            one.sessions_per_sec()
        );
    }

    #[test]
    fn saturated_fleet_rejects_by_backpressure() {
        let mut config = tiny_config(1, 3);
        config.shard.slots = 1;
        config.max_pending = 1;
        config.workload.sessions = 8;
        config.workload.mean_interarrival_ticks = 0;
        let outcome = run_fleet(&config).unwrap();
        assert!(outcome.rejected > 0, "an overwhelmed fleet must shed load");
        assert_eq!(outcome.rejected_with_free_slot, 0);
        assert_eq!(outcome.offered, outcome.completed + outcome.rejected);
    }
}
