//! The machine-readable fleet report (`FLEET_cod.json`).
//!
//! Same conventions as `BENCH_cod.json` and `SCENARIOS_cod.json` (see
//! [`cod_json`]): ordered members, `u64` quantities that may exceed 2^53
//! (seeds, fingerprints) as hex strings. Unlike the bench report the fleet
//! report carries **no wall-clock stamp**: a fleet run is a pure function of
//! its seed, and the acceptance gate diffs two runs byte for byte.

use cod_json::Json;
use sim_math::Fnv1a;

use crate::fleet::FleetOutcome;

/// Schema version of `FLEET_cod.json`; bump on breaking layout changes.
pub const SCHEMA: &str = "cod-fleet-v1";

/// Aggregated, serializable view of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Workload seed.
    pub seed: u64,
    /// Number of shards.
    pub shards: usize,
    /// Concurrent sessions per shard.
    pub slots_per_shard: usize,
    /// Frames per session per fleet tick.
    pub batch_frames: usize,
    /// Admission-queue bound.
    pub max_pending: usize,
    /// Arrivals offered / admitted / completed / rejected.
    pub offered: u64,
    /// Sessions placed onto a shard.
    pub admitted: u64,
    /// Sessions retired.
    pub completed: u64,
    /// Arrivals shed by backpressure.
    pub rejected: u64,
    /// Fleet ticks until drain.
    pub ticks: u64,
    /// Modeled serving time in milliseconds.
    pub elapsed_modeled_ms: f64,
    /// Completed sessions per modeled second.
    pub sessions_per_sec: f64,
    /// Latency percentiles in fleet ticks (p50, p95, p99).
    pub latency_ticks: [u64; 3],
    /// Mean final score of completed sessions.
    pub mean_score: f64,
    /// Fraction of completed sessions that passed.
    pub pass_rate: f64,
    /// Per-shard rows: `(utilization, completed, sims_built, sims_recycled,
    /// peak_residents)`.
    pub shard_rows: Vec<(f64, u64, u64, u64, usize)>,
    /// FNV-1a fingerprint over every session outcome — two runs of the same
    /// seed must agree bit for bit.
    pub fingerprint: u64,
}

impl FleetReport {
    /// Builds the report from a fleet outcome.
    pub fn from_outcome(outcome: &FleetOutcome) -> FleetReport {
        let mut h = Fnv1a::new();
        h.write_u64(outcome.sessions.len() as u64);
        for s in &outcome.sessions {
            h.write_u64(s.id);
            h.write_u64(s.name.len() as u64);
            h.write_bytes(s.name.as_bytes());
            h.write_u64(s.frames as u64);
            h.write_u64(s.arrived_tick);
            h.write_u64(s.admitted_tick);
            h.write_u64(s.completed_tick);
            h.write_u64(s.shard as u64);
            h.write_u64(s.score.to_bits());
            h.write_u64(s.passed as u64);
            h.write_u64(s.cost.0);
        }
        h.write_u64(outcome.rejected);
        h.write_u64(outcome.elapsed_modeled.0);

        FleetReport {
            seed: outcome.config.workload.seed,
            shards: outcome.config.shards,
            slots_per_shard: outcome.config.shard.slots,
            batch_frames: outcome.config.shard.batch_frames,
            max_pending: outcome.config.max_pending,
            offered: outcome.offered,
            admitted: outcome.admitted,
            completed: outcome.completed,
            rejected: outcome.rejected,
            ticks: outcome.ticks_run,
            elapsed_modeled_ms: outcome.elapsed_modeled.as_secs_f64() * 1e3,
            sessions_per_sec: outcome.sessions_per_sec(),
            latency_ticks: [
                outcome.latency_percentile_ticks(50.0),
                outcome.latency_percentile_ticks(95.0),
                outcome.latency_percentile_ticks(99.0),
            ],
            mean_score: outcome.mean_score(),
            pass_rate: outcome.pass_rate(),
            shard_rows: (0..outcome.shard_stats.len())
                .map(|i| {
                    let s = &outcome.shard_stats[i];
                    (
                        outcome.shard_utilization(i),
                        s.sessions_completed,
                        s.sims_built,
                        s.sims_recycled,
                        s.peak_residents,
                    )
                })
                .collect(),
            fingerprint: h.finish(),
        }
    }

    /// Serializes to the `FLEET_cod.json` schema (one run's worth).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::Str(format!("{:#x}", self.seed))),
            ("shards".into(), Json::Num(self.shards as f64)),
            ("slots_per_shard".into(), Json::Num(self.slots_per_shard as f64)),
            ("batch_frames".into(), Json::Num(self.batch_frames as f64)),
            ("max_pending".into(), Json::Num(self.max_pending as f64)),
            ("offered".into(), Json::Num(self.offered as f64)),
            ("admitted".into(), Json::Num(self.admitted as f64)),
            ("completed".into(), Json::Num(self.completed as f64)),
            ("rejected".into(), Json::Num(self.rejected as f64)),
            ("ticks".into(), Json::Num(self.ticks as f64)),
            ("elapsed_modeled_ms".into(), Json::Num(self.elapsed_modeled_ms)),
            ("sessions_per_sec".into(), Json::Num(self.sessions_per_sec)),
            ("latency_p50_ticks".into(), Json::Num(self.latency_ticks[0] as f64)),
            ("latency_p95_ticks".into(), Json::Num(self.latency_ticks[1] as f64)),
            ("latency_p99_ticks".into(), Json::Num(self.latency_ticks[2] as f64)),
            ("mean_score".into(), Json::Num(self.mean_score)),
            ("pass_rate".into(), Json::Num(self.pass_rate)),
            (
                "shards_detail".into(),
                Json::Arr(
                    self.shard_rows
                        .iter()
                        .enumerate()
                        .map(|(i, (util, completed, built, recycled, peak))| {
                            Json::Obj(vec![
                                ("shard".into(), Json::Num(i as f64)),
                                ("utilization".into(), Json::Num(*util)),
                                ("completed".into(), Json::Num(*completed as f64)),
                                ("sims_built".into(), Json::Num(*built as f64)),
                                ("sims_recycled".into(), Json::Num(*recycled as f64)),
                                ("peak_residents".into(), Json::Num(*peak as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("fingerprint".into(), Json::Str(format!("{:016x}", self.fingerprint))),
        ])
    }

    /// Renders the human-readable summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {} shards x {} slots | offered {} admitted {} completed {} rejected {}\n",
            self.shards,
            self.slots_per_shard,
            self.offered,
            self.admitted,
            self.completed,
            self.rejected,
        ));
        out.push_str(&format!(
            "  modeled serving time {:.1} ms | {:.2} sessions/s | latency p50/p95/p99 = {}/{}/{} ticks\n",
            self.elapsed_modeled_ms,
            self.sessions_per_sec,
            self.latency_ticks[0],
            self.latency_ticks[1],
            self.latency_ticks[2],
        ));
        out.push_str(&format!(
            "  mean score {:.1} | pass rate {:.0}% | fingerprint {:016x}\n",
            self.mean_score,
            self.pass_rate * 100.0,
            self.fingerprint
        ));
        out.push_str("  shard | util % | done | built | recycled | peak\n");
        for (i, (util, completed, built, recycled, peak)) in self.shard_rows.iter().enumerate() {
            out.push_str(&format!(
                "  {i:>5} | {:>6.1} | {completed:>4} | {built:>5} | {recycled:>8} | {peak:>4}\n",
                util * 100.0
            ));
        }
        out
    }
}

/// The whole `FLEET_cod.json` document: the headline run plus the one-shard
/// baseline it is gated against.
pub fn document(baseline: &FleetReport, fleet: &FleetReport, quick: bool) -> Json {
    let scaling = if baseline.sessions_per_sec > 0.0 {
        fleet.sessions_per_sec / baseline.sessions_per_sec
    } else {
        0.0
    };
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("quick".into(), Json::Bool(quick)),
        ("scaling_sessions_per_sec".into(), Json::Num(scaling)),
        ("baseline_1_shard".into(), baseline.to_json()),
        ("fleet".into(), fleet.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{run_fleet, FleetConfig};
    use crate::shard::ShardConfig;
    use crate::workload::WorkloadConfig;

    fn outcome() -> FleetOutcome {
        run_fleet(&FleetConfig {
            shards: 2,
            shard: ShardConfig { slots: 2, batch_frames: 8, pool_per_shape: 1 },
            max_pending: 4,
            workload: WorkloadConfig {
                sessions: 4,
                seed: 5,
                base_frames: 12,
                mean_interarrival_ticks: 1,
            },
            parallel: false,
        })
        .unwrap()
    }

    #[test]
    fn report_serializes_and_round_trips_through_the_shared_parser() {
        let report = FleetReport::from_outcome(&outcome());
        let doc = document(&report, &report, true);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(parsed.get("scaling_sessions_per_sec").and_then(Json::as_f64), Some(1.0));
        let fleet = parsed.get("fleet").unwrap();
        assert_eq!(fleet.get("offered").and_then(Json::as_f64), Some(4.0));
        assert!(fleet.get("fingerprint").and_then(Json::as_str).is_some());
        // Hex seed survives even above 2^53.
        let seed = fleet.get("seed").and_then(Json::as_str).unwrap();
        assert_eq!(u64::from_str_radix(seed.trim_start_matches("0x"), 16).unwrap(), 5);
    }

    #[test]
    fn same_outcome_same_fingerprint_and_bytes() {
        let a = FleetReport::from_outcome(&outcome());
        let b = FleetReport::from_outcome(&outcome());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn table_mentions_the_headline_numbers() {
        let report = FleetReport::from_outcome(&outcome());
        let table = report.render_table();
        assert!(table.contains("sessions/s"));
        assert!(table.contains("pass rate"));
    }
}
