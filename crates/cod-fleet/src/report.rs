//! The machine-readable fleet report (`FLEET_cod.json`).
//!
//! Same conventions as `BENCH_cod.json` and `SCENARIOS_cod.json` (see
//! [`cod_json`]): ordered members, `u64` quantities that may exceed 2^53
//! (seeds, fingerprints) as hex strings. Unlike the bench report the fleet
//! report carries **no wall-clock stamp**: a fleet run is a pure function of
//! its seed — priorities, preemption and live migration included — and the
//! acceptance gate diffs two runs byte for byte.

use cod_json::Json;
use crane_sim::{FidelityTier, SCORE_DRIFT_TOLERANCE};
use sim_math::Fnv1a;

use crate::fleet::{FleetOutcome, PlacementPolicy};
use crate::workload::Priority;

/// Schema version of `FLEET_cod.json`; bump on breaking layout changes.
/// v2: priority classes, preemption/migration counters, heterogeneous shard
/// speeds, interpolated latency percentiles.
/// v3: fidelity tiers — per-tier completion counts, p95s and mean scores,
/// promotion/demotion counters, and the tiered-capacity document section.
/// v4: each session's final telemetry-digest fingerprint folded into the
/// report fingerprint, so two runs only match when every session's physics
/// state matched frame for frame — the witness the determinism-under-threads
/// gate compares across execution modes. Wall-clock timings stay out of the
/// report entirely: they vary run to run by nature, and fingerprinting them
/// would break the byte-identity guarantee the gate exists to enforce.
pub const SCHEMA: &str = "cod-fleet-v4";

/// Per-shard row of the report: speed, utilization and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRow {
    /// Relative CPU speed of the shard.
    pub speed: f64,
    /// Fraction of the modeled serving time the shard was busy.
    pub utilization: f64,
    /// Sessions the shard retired.
    pub completed: u64,
    /// Simulators built from scratch.
    pub sims_built: u64,
    /// Sessions served by a recycled simulator.
    pub sims_recycled: u64,
    /// Residents preempted off this shard.
    pub preempted_out: u64,
    /// Residents migrated off this shard.
    pub migrated_out: u64,
    /// Sessions migrated onto this shard.
    pub migrated_in: u64,
    /// Frames re-executed to fast-forward resumed sessions.
    pub replayed_frames: u64,
    /// Residents promoted to the Full tier in place.
    pub promoted: u64,
    /// Residents demoted to the Coarse tier in place.
    pub demoted: u64,
    /// Largest residency observed.
    pub peak_residents: usize,
}

/// Aggregated, serializable view of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Workload seed.
    pub seed: u64,
    /// Number of shards.
    pub shards: usize,
    /// Relative CPU speed per shard.
    pub shard_speeds: Vec<f64>,
    /// Placement policy the run used.
    pub placement: PlacementPolicy,
    /// Whether preemption was enabled.
    pub preemption: bool,
    /// Whether live migration was enabled.
    pub migration: bool,
    /// Whether fidelity tiering was enabled.
    pub tiering: bool,
    /// Concurrent sessions per shard.
    pub slots_per_shard: usize,
    /// Frames per session per fleet tick.
    pub batch_frames: usize,
    /// Admission-queue bound.
    pub max_pending: usize,
    /// Arrivals offered / admitted / completed / rejected.
    pub offered: u64,
    /// Placements onto a shard (preempted sessions re-count on resumption).
    pub admitted: u64,
    /// Sessions retired.
    pub completed: u64,
    /// Arrivals shed by backpressure.
    pub rejected: u64,
    /// Residents preempted back to the queue.
    pub preempted: u64,
    /// Residents migrated live between shards.
    pub migrated: u64,
    /// Residents promoted live to the Full tier.
    pub promoted: u64,
    /// Residents demoted live to the Coarse tier.
    pub demoted: u64,
    /// Fleet ticks until drain.
    pub ticks: u64,
    /// Modeled serving time in milliseconds.
    pub elapsed_modeled_ms: f64,
    /// Completed sessions per modeled second.
    pub sessions_per_sec: f64,
    /// Latency percentiles in fleet ticks (p50, p95, p99), linearly
    /// interpolated like `cod_bench::measure::percentile`.
    pub latency_ticks: [f64; 3],
    /// p95 latency per priority class, indexed by [`Priority::index`].
    pub class_latency_p95: [f64; Priority::COUNT],
    /// Completed sessions per priority class, indexed by [`Priority::index`].
    pub class_completed: [u64; Priority::COUNT],
    /// Completed sessions per fidelity tier, indexed by
    /// [`FidelityTier::index`].
    pub tier_completed: [u64; FidelityTier::COUNT],
    /// p95 latency per fidelity tier, indexed by [`FidelityTier::index`].
    pub tier_latency_p95: [f64; FidelityTier::COUNT],
    /// Mean final score per fidelity tier, indexed by
    /// [`FidelityTier::index`].
    pub tier_mean_score: [f64; FidelityTier::COUNT],
    /// Mean final score of completed sessions.
    pub mean_score: f64,
    /// Fraction of completed sessions that passed.
    pub pass_rate: f64,
    /// Per-shard rows.
    pub shard_rows: Vec<ShardRow>,
    /// FNV-1a fingerprint over every session outcome — two runs of the same
    /// seed must agree bit for bit.
    pub fingerprint: u64,
}

fn placement_name(placement: PlacementPolicy) -> &'static str {
    match placement {
        PlacementPolicy::LeastResident => "least-resident",
        PlacementPolicy::SpeedWeighted => "speed-weighted",
    }
}

impl FleetReport {
    /// Builds the report from a fleet outcome.
    pub fn from_outcome(outcome: &FleetOutcome) -> FleetReport {
        let mut h = Fnv1a::new();
        h.write_u64(outcome.sessions.len() as u64);
        for s in &outcome.sessions {
            h.write_u64(s.id);
            h.write_u64(s.name.len() as u64);
            h.write_bytes(s.name.as_bytes());
            h.write_u64(s.frames as u64);
            h.write_u64(s.priority.index() as u64);
            h.write_u64(s.arrived_tick);
            h.write_u64(s.admitted_tick);
            h.write_u64(s.completed_tick);
            h.write_u64(s.shard as u64);
            h.write_u64(u64::from(s.preempted));
            h.write_u64(u64::from(s.migrated));
            h.write_u64(u64::from(s.promoted));
            h.write_u64(u64::from(s.demoted));
            h.write_u64(s.tier.index() as u64);
            h.write_u64(s.score.to_bits());
            h.write_u64(s.passed as u64);
            h.write_u64(s.cost.0);
            h.write_u64(s.telemetry);
        }
        h.write_u64(outcome.rejected);
        h.write_u64(outcome.preempted);
        h.write_u64(outcome.migrated);
        h.write_u64(outcome.promoted);
        h.write_u64(outcome.demoted);
        h.write_u64(outcome.elapsed_modeled.0);

        let class_latency_p95 = [
            outcome.latency_percentile_ticks_for(Some(Priority::Batch), 95.0),
            outcome.latency_percentile_ticks_for(Some(Priority::Training), 95.0),
            outcome.latency_percentile_ticks_for(Some(Priority::Interactive), 95.0),
        ];
        let class_completed = [
            outcome.completed_of_class(Priority::Batch) as u64,
            outcome.completed_of_class(Priority::Training) as u64,
            outcome.completed_of_class(Priority::Interactive) as u64,
        ];
        let mut tier_completed = [0u64; FidelityTier::COUNT];
        let mut tier_latency_p95 = [0.0; FidelityTier::COUNT];
        let mut tier_mean_score = [0.0; FidelityTier::COUNT];
        for tier in FidelityTier::ALL {
            tier_completed[tier.index()] = outcome.completed_of_tier(tier) as u64;
            tier_latency_p95[tier.index()] = outcome.latency_percentile_ticks_for_tier(tier, 95.0);
            tier_mean_score[tier.index()] = outcome.mean_score_of_tier(tier);
        }

        FleetReport {
            seed: outcome.config.workload.seed,
            shards: outcome.config.shards,
            shard_speeds: (0..outcome.config.shards).map(|i| outcome.config.speed_of(i)).collect(),
            placement: outcome.config.placement,
            preemption: outcome.config.preemption,
            migration: outcome.config.migration,
            tiering: outcome.config.tiering,
            slots_per_shard: outcome.config.shard.slots,
            batch_frames: outcome.config.shard.batch_frames,
            max_pending: outcome.config.max_pending,
            offered: outcome.offered,
            admitted: outcome.admitted,
            completed: outcome.completed,
            rejected: outcome.rejected,
            preempted: outcome.preempted,
            migrated: outcome.migrated,
            promoted: outcome.promoted,
            demoted: outcome.demoted,
            ticks: outcome.ticks_run,
            elapsed_modeled_ms: outcome.elapsed_modeled.as_secs_f64() * 1e3,
            sessions_per_sec: outcome.sessions_per_sec(),
            latency_ticks: [
                outcome.latency_percentile_ticks(50.0),
                outcome.latency_percentile_ticks(95.0),
                outcome.latency_percentile_ticks(99.0),
            ],
            class_latency_p95,
            class_completed,
            tier_completed,
            tier_latency_p95,
            tier_mean_score,
            mean_score: outcome.mean_score(),
            pass_rate: outcome.pass_rate(),
            shard_rows: (0..outcome.shard_stats.len())
                .map(|i| {
                    let s = &outcome.shard_stats[i];
                    ShardRow {
                        speed: outcome.config.speed_of(i),
                        utilization: outcome.shard_utilization(i),
                        completed: s.sessions_completed,
                        sims_built: s.sims_built,
                        sims_recycled: s.sims_recycled,
                        preempted_out: s.preempted_out,
                        migrated_out: s.migrated_out,
                        migrated_in: s.migrated_in,
                        replayed_frames: s.replayed_frames,
                        promoted: s.promoted,
                        demoted: s.demoted,
                        peak_residents: s.peak_residents,
                    }
                })
                .collect(),
            fingerprint: h.finish(),
        }
    }

    /// Serializes to the `FLEET_cod.json` schema (one run's worth).
    pub fn to_json(&self) -> Json {
        let class_obj = |values: &[f64; Priority::COUNT]| {
            Json::Obj(
                Priority::ALL
                    .iter()
                    .map(|p| (p.tag().to_owned(), Json::Num(values[p.index()])))
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("seed".into(), Json::Str(format!("{:#x}", self.seed))),
            ("shards".into(), Json::Num(self.shards as f64)),
            (
                "shard_speeds".into(),
                Json::Arr(self.shard_speeds.iter().map(|s| Json::Num(*s)).collect()),
            ),
            ("placement".into(), Json::Str(placement_name(self.placement).into())),
            ("preemption".into(), Json::Bool(self.preemption)),
            ("migration".into(), Json::Bool(self.migration)),
            ("tiering".into(), Json::Bool(self.tiering)),
            ("slots_per_shard".into(), Json::Num(self.slots_per_shard as f64)),
            ("batch_frames".into(), Json::Num(self.batch_frames as f64)),
            ("max_pending".into(), Json::Num(self.max_pending as f64)),
            ("offered".into(), Json::Num(self.offered as f64)),
            ("admitted".into(), Json::Num(self.admitted as f64)),
            ("completed".into(), Json::Num(self.completed as f64)),
            ("rejected".into(), Json::Num(self.rejected as f64)),
            ("preempted".into(), Json::Num(self.preempted as f64)),
            ("migrated".into(), Json::Num(self.migrated as f64)),
            ("promoted".into(), Json::Num(self.promoted as f64)),
            ("demoted".into(), Json::Num(self.demoted as f64)),
            ("ticks".into(), Json::Num(self.ticks as f64)),
            ("elapsed_modeled_ms".into(), Json::Num(self.elapsed_modeled_ms)),
            ("sessions_per_sec".into(), Json::Num(self.sessions_per_sec)),
            ("latency_p50_ticks".into(), Json::Num(self.latency_ticks[0])),
            ("latency_p95_ticks".into(), Json::Num(self.latency_ticks[1])),
            ("latency_p99_ticks".into(), Json::Num(self.latency_ticks[2])),
            ("latency_p95_by_class".into(), class_obj(&self.class_latency_p95)),
            (
                "completed_by_class".into(),
                Json::Obj(
                    Priority::ALL
                        .iter()
                        .map(|p| {
                            (p.tag().to_owned(), Json::Num(self.class_completed[p.index()] as f64))
                        })
                        .collect(),
                ),
            ),
            (
                "completed_by_tier".into(),
                Json::Obj(
                    FidelityTier::ALL
                        .iter()
                        .map(|t| {
                            (t.tag().to_owned(), Json::Num(self.tier_completed[t.index()] as f64))
                        })
                        .collect(),
                ),
            ),
            (
                "latency_p95_by_tier".into(),
                Json::Obj(
                    FidelityTier::ALL
                        .iter()
                        .map(|t| (t.tag().to_owned(), Json::Num(self.tier_latency_p95[t.index()])))
                        .collect(),
                ),
            ),
            (
                "mean_score_by_tier".into(),
                Json::Obj(
                    FidelityTier::ALL
                        .iter()
                        .map(|t| (t.tag().to_owned(), Json::Num(self.tier_mean_score[t.index()])))
                        .collect(),
                ),
            ),
            ("mean_score".into(), Json::Num(self.mean_score)),
            ("pass_rate".into(), Json::Num(self.pass_rate)),
            (
                "shards_detail".into(),
                Json::Arr(
                    self.shard_rows
                        .iter()
                        .enumerate()
                        .map(|(i, row)| {
                            Json::Obj(vec![
                                ("shard".into(), Json::Num(i as f64)),
                                ("speed".into(), Json::Num(row.speed)),
                                ("utilization".into(), Json::Num(row.utilization)),
                                ("completed".into(), Json::Num(row.completed as f64)),
                                ("sims_built".into(), Json::Num(row.sims_built as f64)),
                                ("sims_recycled".into(), Json::Num(row.sims_recycled as f64)),
                                ("preempted_out".into(), Json::Num(row.preempted_out as f64)),
                                ("migrated_out".into(), Json::Num(row.migrated_out as f64)),
                                ("migrated_in".into(), Json::Num(row.migrated_in as f64)),
                                ("replayed_frames".into(), Json::Num(row.replayed_frames as f64)),
                                ("promoted".into(), Json::Num(row.promoted as f64)),
                                ("demoted".into(), Json::Num(row.demoted as f64)),
                                ("peak_residents".into(), Json::Num(row.peak_residents as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("fingerprint".into(), Json::Str(format!("{:016x}", self.fingerprint))),
        ])
    }

    /// Renders the human-readable summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {} shards x {} slots ({}, preemption {}, migration {}, tiering {}) | offered {} admitted {} completed {} rejected {} preempted {} migrated {}\n",
            self.shards,
            self.slots_per_shard,
            placement_name(self.placement),
            if self.preemption { "on" } else { "off" },
            if self.migration { "on" } else { "off" },
            if self.tiering { "on" } else { "off" },
            self.offered,
            self.admitted,
            self.completed,
            self.rejected,
            self.preempted,
            self.migrated,
        ));
        out.push_str(&format!(
            "  modeled serving time {:.1} ms | {:.2} sessions/s | latency p50/p95/p99 = {:.1}/{:.1}/{:.1} ticks\n",
            self.elapsed_modeled_ms,
            self.sessions_per_sec,
            self.latency_ticks[0],
            self.latency_ticks[1],
            self.latency_ticks[2],
        ));
        out.push_str(&format!(
            "  p95 by class: int {:.1} / trn {:.1} / bat {:.1} ticks (completed {}/{}/{})\n",
            self.class_latency_p95[Priority::Interactive.index()],
            self.class_latency_p95[Priority::Training.index()],
            self.class_latency_p95[Priority::Batch.index()],
            self.class_completed[Priority::Interactive.index()],
            self.class_completed[Priority::Training.index()],
            self.class_completed[Priority::Batch.index()],
        ));
        if self.tiering {
            out.push_str(&format!(
                "  tiers: full {} / coarse {} completed | promoted {} demoted {} | p95 full {:.1} / coarse {:.1} ticks\n",
                self.tier_completed[FidelityTier::Full.index()],
                self.tier_completed[FidelityTier::Coarse.index()],
                self.promoted,
                self.demoted,
                self.tier_latency_p95[FidelityTier::Full.index()],
                self.tier_latency_p95[FidelityTier::Coarse.index()],
            ));
        }
        out.push_str(&format!(
            "  mean score {:.1} | pass rate {:.0}% | fingerprint {:016x}\n",
            self.mean_score,
            self.pass_rate * 100.0,
            self.fingerprint
        ));
        out.push_str(
            "  shard | speed | util % | done | built | recycled | pre> | mig> | >mig | peak\n",
        );
        for (i, row) in self.shard_rows.iter().enumerate() {
            out.push_str(&format!(
                "  {i:>5} | {:>5.2} | {:>6.1} | {:>4} | {:>5} | {:>8} | {:>4} | {:>4} | {:>4} | {:>4}\n",
                row.speed,
                row.utilization * 100.0,
                row.completed,
                row.sims_built,
                row.sims_recycled,
                row.preempted_out,
                row.migrated_out,
                row.migrated_in,
                row.peak_residents
            ));
        }
        out
    }
}

/// The tiered-capacity pair of the document: the same rack and seed run once
/// all-Full and once with tiering on, plus the largest per-session
/// final-score drift between the two runs. The drift is a property of the
/// paired [`FleetOutcome`]s (sessions matched by id), not recoverable from
/// the two reports alone, so callers compute and carry it here.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredSection {
    /// The burst workload served with every session on the Full tier.
    pub all_full: FleetReport,
    /// The same workload with fidelity tiering enabled.
    pub tiered: FleetReport,
    /// Largest `|tiered score - all-Full score|` over paired sessions.
    pub max_score_drift: f64,
}

/// The whole `FLEET_cod.json` document: the headline run, the one-shard
/// baseline it is gated against, and — when provided — the heterogeneous pair
/// (residency-only vs speed-weighted placement on the 1×fast + 3×slow fleet)
/// behind the E10 gate and the tiered-capacity pair behind the fidelity gate.
pub fn document(
    baseline: &FleetReport,
    fleet: &FleetReport,
    hetero: Option<(&FleetReport, &FleetReport)>,
    tiered: Option<&TieredSection>,
    quick: bool,
) -> Json {
    let ratio = |num: &FleetReport, den: &FleetReport| {
        if den.sessions_per_sec > 0.0 {
            num.sessions_per_sec / den.sessions_per_sec
        } else {
            0.0
        }
    };
    let mut members = vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("quick".into(), Json::Bool(quick)),
        ("scaling_sessions_per_sec".into(), Json::Num(ratio(fleet, baseline))),
        ("baseline_1_shard".into(), baseline.to_json()),
        ("fleet".into(), fleet.to_json()),
    ];
    if let Some((residency, weighted)) = hetero {
        members.push((
            "hetero".into(),
            Json::Obj(vec![
                ("speedup_speed_weighted".into(), Json::Num(ratio(weighted, residency))),
                ("least_resident".into(), residency.to_json()),
                ("speed_weighted".into(), weighted.to_json()),
            ]),
        ));
    }
    if let Some(t) = tiered {
        members.push((
            "tiered".into(),
            Json::Obj(vec![
                ("capacity_multiplier".into(), Json::Num(ratio(&t.tiered, &t.all_full))),
                ("max_score_drift".into(), Json::Num(t.max_score_drift)),
                ("score_drift_tolerance".into(), Json::Num(SCORE_DRIFT_TOLERANCE)),
                ("all_full".into(), t.all_full.to_json()),
                ("tiered".into(), t.tiered.to_json()),
            ]),
        ));
    }
    Json::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{run_fleet, ExecutionMode, FleetConfig};
    use crate::shard::ShardConfig;
    use crate::workload::WorkloadConfig;

    fn outcome() -> FleetOutcome {
        run_fleet(&FleetConfig {
            shards: 2,
            shard: ShardConfig {
                slots: 2,
                batch_frames: 8,
                pool_per_shape: 1,
                ..ShardConfig::default()
            },
            shard_speeds: Vec::new(),
            placement: PlacementPolicy::SpeedWeighted,
            preemption: false,
            migration: false,
            tiering: false,
            max_pending: 4,
            workload: WorkloadConfig {
                sessions: 4,
                seed: 5,
                base_frames: 12,
                mean_interarrival_ticks: 1,
            },
            execution: ExecutionMode::Modeled,
            obs: Default::default(),
        })
        .unwrap()
    }

    #[test]
    fn every_execution_mode_serializes_to_identical_bytes() {
        // The report carries no execution-mode or wall-clock field, so the
        // bytes cannot depend on who stepped the shards — the invariant the
        // `--wallclock` gate and the determinism stress test lean on.
        let mut config = outcome().config;
        let modeled = FleetReport::from_outcome(&run_fleet(&config).unwrap());
        let baseline = modeled.to_json().to_pretty();
        for mode in [ExecutionMode::ThreadPerShard, ExecutionMode::WallClock { threads: 3 }] {
            config.execution = mode;
            let report = FleetReport::from_outcome(&run_fleet(&config).unwrap());
            assert_eq!(report.fingerprint, modeled.fingerprint, "fingerprint under {mode:?}");
            assert_eq!(report.to_json().to_pretty(), baseline, "bytes under {mode:?}");
        }
    }

    #[test]
    fn report_serializes_and_round_trips_through_the_shared_parser() {
        let report = FleetReport::from_outcome(&outcome());
        let doc = document(&report, &report, None, None, true);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(parsed.get("scaling_sessions_per_sec").and_then(Json::as_f64), Some(1.0));
        assert!(parsed.get("hetero").is_none(), "no hetero section unless provided");
        assert!(parsed.get("tiered").is_none(), "no tiered section unless provided");
        let fleet = parsed.get("fleet").unwrap();
        assert_eq!(fleet.get("offered").and_then(Json::as_f64), Some(4.0));
        assert_eq!(fleet.get("placement").and_then(Json::as_str), Some("speed-weighted"));
        assert_eq!(fleet.get("preempted").and_then(Json::as_f64), Some(0.0));
        assert_eq!(fleet.get("tiering").and_then(Json::as_bool), Some(false));
        assert_eq!(fleet.get("promoted").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            fleet.get("completed_by_tier").and_then(|t| t.get("full")).and_then(Json::as_f64),
            Some(4.0),
            "an untiered run completes everything on the Full tier"
        );
        assert!(fleet.get("latency_p95_by_tier").and_then(|t| t.get("coarse")).is_some());
        assert!(fleet.get("latency_p95_by_class").and_then(|c| c.get("int")).is_some());
        assert!(fleet.get("fingerprint").and_then(Json::as_str).is_some());
        // Hex seed survives even above 2^53.
        let seed = fleet.get("seed").and_then(Json::as_str).unwrap();
        assert_eq!(u64::from_str_radix(seed.trim_start_matches("0x"), 16).unwrap(), 5);
    }

    #[test]
    fn hetero_section_carries_both_policies() {
        let report = FleetReport::from_outcome(&outcome());
        let doc = document(&report, &report, Some((&report, &report)), None, true);
        let parsed = Json::parse(&doc.to_pretty()).expect("valid JSON");
        let hetero = parsed.get("hetero").expect("hetero section present");
        assert_eq!(hetero.get("speedup_speed_weighted").and_then(Json::as_f64), Some(1.0));
        assert!(hetero.get("least_resident").is_some());
        assert!(hetero.get("speed_weighted").is_some());
    }

    #[test]
    fn tiered_section_carries_both_runs_and_the_pinned_tolerance() {
        let report = FleetReport::from_outcome(&outcome());
        let section = TieredSection {
            all_full: report.clone(),
            tiered: report.clone(),
            max_score_drift: 1.25,
        };
        let doc = document(&report, &report, None, Some(&section), true);
        let parsed = Json::parse(&doc.to_pretty()).expect("valid JSON");
        let tiered = parsed.get("tiered").expect("tiered section present");
        assert_eq!(tiered.get("capacity_multiplier").and_then(Json::as_f64), Some(1.0));
        assert_eq!(tiered.get("max_score_drift").and_then(Json::as_f64), Some(1.25));
        assert_eq!(
            tiered.get("score_drift_tolerance").and_then(Json::as_f64),
            Some(SCORE_DRIFT_TOLERANCE)
        );
        assert!(tiered.get("all_full").is_some());
        assert!(tiered.get("tiered").is_some());
    }

    #[test]
    fn same_outcome_same_fingerprint_and_bytes() {
        let a = FleetReport::from_outcome(&outcome());
        let b = FleetReport::from_outcome(&outcome());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn table_mentions_the_headline_numbers() {
        let report = FleetReport::from_outcome(&outcome());
        let table = report.render_table();
        assert!(table.contains("sessions/s"));
        assert!(table.contains("pass rate"));
        assert!(table.contains("p95 by class"));
        assert!(table.contains("speed"));
    }
}
