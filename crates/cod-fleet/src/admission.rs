//! Admission control and placement bookkeeping, kept pure so its safety
//! properties can be property-tested without building simulators.
//!
//! The fleet owns the actual sessions; this state machine owns the *counts*:
//! how many sessions each shard hosts, how many arrivals wait in the bounded
//! admission queue, and the conservation ledger (offered = admitted +
//! rejected + pending, admitted = completed + resident). Placement picks the
//! least-loaded shard with a free slot, optionally weighted by the shards'
//! modeled backlog cost (see [`cod_cluster::least_loaded`]).

use cod_cluster::least_loaded;
use cod_net::Micros;

/// Sizing of the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Number of shards (worker slots pools).
    pub shards: usize,
    /// Concurrent sessions one shard may host.
    pub slots_per_shard: usize,
    /// Bound on the admission queue; arrivals beyond it are rejected
    /// (backpressure).
    pub max_pending: usize,
}

/// The admission/placement state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionState {
    config: AdmissionConfig,
    /// Resident session count per shard.
    residents: Vec<usize>,
    /// Arrivals accepted into the queue but not yet placed.
    pending: usize,
    /// Total arrivals ever offered.
    pub offered: u64,
    /// Arrivals placed onto a shard.
    pub admitted: u64,
    /// Arrivals turned away because the queue was full.
    pub rejected: u64,
    /// Sessions retired from a shard.
    pub completed: u64,
    /// Rejections that happened while a shard slot was still free. Such a
    /// rejection is avoidable (the queue could have drained into the slot
    /// first), so a correct *driver* keeps this at zero; the fleet invariants
    /// assert it.
    pub rejected_with_free_slot: u64,
    /// Largest queue depth observed.
    pub peak_pending: usize,
    /// Largest per-shard residency observed.
    pub peak_residents: usize,
}

impl AdmissionState {
    /// Creates an empty controller.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `slots_per_shard` is zero.
    pub fn new(config: AdmissionConfig) -> AdmissionState {
        assert!(config.shards > 0, "at least one shard is required");
        assert!(config.slots_per_shard > 0, "shards need at least one slot");
        AdmissionState {
            residents: vec![0; config.shards],
            config,
            pending: 0,
            offered: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            rejected_with_free_slot: 0,
            peak_pending: 0,
            peak_residents: 0,
        }
    }

    /// The sizing this controller was built with.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Number of sessions currently waiting in the queue.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Resident session count per shard.
    pub fn residents(&self) -> &[usize] {
        &self.residents
    }

    /// Total sessions resident across all shards.
    pub fn resident_total(&self) -> usize {
        self.residents.iter().sum()
    }

    /// Free slots across the whole fleet.
    pub fn free_slots(&self) -> usize {
        self.config.shards * self.config.slots_per_shard - self.resident_total()
    }

    /// Offers one arrival: queued (`true`) or rejected by backpressure
    /// (`false`). A rejection at a moment when a shard slot is still free is
    /// *avoidable* — the driver could have drained the queue into the free
    /// slot first — and is counted in
    /// [`AdmissionState::rejected_with_free_slot`]; a correct driver (see
    /// [`crate::fleet::run_fleet`]) places queued sessions before bouncing an
    /// arrival, keeping that counter at zero.
    pub fn offer(&mut self) -> bool {
        self.offered += 1;
        if self.pending >= self.config.max_pending {
            self.rejected += 1;
            if self.free_slots() > 0 {
                self.rejected_with_free_slot += 1;
            }
            return false;
        }
        self.pending += 1;
        self.peak_pending = self.peak_pending.max(self.pending);
        true
    }

    /// Places the longest-waiting queued session onto the least-loaded shard
    /// with a free slot, weighting ties by the shards' modeled backlog cost
    /// when provided. Returns the chosen shard, or `None` when the queue is
    /// empty or every slot is taken (backpressure holds the queue).
    pub fn place_weighted(&mut self, backlog: &[Micros]) -> Option<usize> {
        if self.pending == 0 {
            return None;
        }
        let chosen = self.choose_shard(backlog)?;
        self.pending -= 1;
        self.admitted += 1;
        self.residents[chosen] += 1;
        self.peak_residents = self.peak_residents.max(self.residents[chosen]);
        Some(chosen)
    }

    /// [`AdmissionState::place_weighted`] with resident counts as the load.
    pub fn place(&mut self) -> Option<usize> {
        self.place_weighted(&[])
    }

    /// Retires one session from `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` hosts no session.
    pub fn complete(&mut self, shard: usize) {
        assert!(self.residents[shard] > 0, "shard {shard} has no resident session to retire");
        self.residents[shard] -= 1;
        self.completed += 1;
    }

    /// The shard a new session would be placed on, without placing it: the
    /// least-loaded shard (by backlog cost when given, else by residency)
    /// among those with a free slot.
    fn choose_shard(&self, backlog: &[Micros]) -> Option<usize> {
        let slots = self.config.slots_per_shard;
        let loads: Vec<Micros> = self
            .residents
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if *r >= slots {
                    Micros(u64::MAX)
                } else if let Some(cost) = backlog.get(i) {
                    *cost
                } else {
                    Micros(*r as u64)
                }
            })
            .collect();
        let chosen = least_loaded(&loads)?;
        if self.residents[chosen] >= slots {
            return None;
        }
        Some(chosen)
    }

    /// Verifies the conservation ledger and capacity bounds; returns every
    /// violated property.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.offered != self.admitted + self.rejected + self.pending as u64 {
            out.push(format!(
                "offered {} != admitted {} + rejected {} + pending {}",
                self.offered, self.admitted, self.rejected, self.pending
            ));
        }
        if self.admitted != self.completed + self.resident_total() as u64 {
            out.push(format!(
                "admitted {} != completed {} + resident {}",
                self.admitted,
                self.completed,
                self.resident_total()
            ));
        }
        for (i, r) in self.residents.iter().enumerate() {
            if *r > self.config.slots_per_shard {
                out.push(format!(
                    "shard {i} hosts {r} sessions, capacity {}",
                    self.config.slots_per_shard
                ));
            }
        }
        if self.pending > self.config.max_pending {
            out.push(format!(
                "queue depth {} exceeds bound {}",
                self.pending, self.config.max_pending
            ));
        }
        // `rejected_with_free_slot` is deliberately not checked here: for the
        // bare state machine an avoidable rejection is the driver's doing.
        // The fleet driver drains the queue before bouncing arrivals, and
        // `cod_testkit::fleet_invariants` asserts the counter stays zero.
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config(shards: usize, slots: usize, max_pending: usize) -> AdmissionConfig {
        AdmissionConfig { shards, slots_per_shard: slots, max_pending }
    }

    #[test]
    fn offers_queue_until_the_bound_then_reject() {
        let mut adm = AdmissionState::new(config(2, 1, 3));
        for _ in 0..3 {
            assert!(adm.offer());
        }
        assert!(!adm.offer(), "fourth arrival must bounce off the bounded queue");
        assert_eq!(adm.rejected, 1);
        assert_eq!(adm.pending(), 3);
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
    }

    #[test]
    fn placement_prefers_the_least_loaded_shard() {
        let mut adm = AdmissionState::new(config(3, 2, 10));
        for _ in 0..4 {
            assert!(adm.offer());
        }
        assert_eq!(adm.place(), Some(0));
        assert_eq!(adm.place(), Some(1));
        assert_eq!(adm.place(), Some(2));
        assert_eq!(adm.place(), Some(0));
        assert_eq!(adm.residents(), &[2, 1, 1]);
    }

    #[test]
    fn backlog_weights_override_residency_ties() {
        let mut adm = AdmissionState::new(config(2, 4, 10));
        assert!(adm.offer());
        // Shard 0 nominally less resident but modeled as far more loaded.
        let backlog = [Micros::from_millis(900), Micros::from_millis(10)];
        assert_eq!(adm.place_weighted(&backlog), Some(1));
    }

    #[test]
    fn place_on_a_full_fleet_backpressures() {
        let mut adm = AdmissionState::new(config(1, 1, 5));
        assert!(adm.offer());
        assert!(adm.offer());
        assert_eq!(adm.place(), Some(0));
        assert_eq!(adm.place(), None, "no slot free: the queue must hold");
        adm.complete(0);
        assert_eq!(adm.place(), Some(0));
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
    }

    proptest! {
        /// Drive the controller with an arbitrary event schedule: capacity is
        /// never exceeded, nothing is rejected while a slot is free (the queue
        /// always absorbs first), and the session ledger always balances.
        #[test]
        fn prop_admission_is_safe(shards in 1usize..5, slots in 1usize..4,
                                  max_pending in 1usize..6,
                                  events in proptest::collection::vec(0u8..3, 1..120) ) {
            let mut adm = AdmissionState::new(config(shards, slots, max_pending));
            for event in events {
                match event {
                    0 => { let _ = adm.offer(); }
                    1 => { let _ = adm.place(); }
                    _ => {
                        // Retire from the busiest shard, if any session runs.
                        if let Some((shard, _)) = adm
                            .residents()
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| **r > 0)
                            .max_by_key(|(_, r)| **r)
                        {
                            adm.complete(shard);
                        }
                    }
                }
                prop_assert!(adm.violations().is_empty(), "{:?}", adm.violations());
                // A rejection can only ever happen at a full queue.
                prop_assert!(adm.rejected == 0 || adm.peak_pending == max_pending);
            }
        }

        /// The fleet's driver discipline — drain a full queue into free slots
        /// before bouncing an arrival — never rejects avoidably, under any
        /// interleaving of arrivals and completions.
        #[test]
        fn prop_drain_first_driver_never_rejects_avoidably(
            shards in 1usize..4, slots in 1usize..4, max_pending in 1usize..5,
            events in proptest::collection::vec(0u8..3, 1..120)) {
            let mut adm = AdmissionState::new(config(shards, slots, max_pending));
            for event in events {
                match event {
                    0 | 1 => {
                        while adm.pending() >= max_pending && adm.place().is_some() {}
                        let _ = adm.offer();
                    }
                    _ => {
                        if let Some((shard, _)) =
                            adm.residents().iter().enumerate().find(|(_, r)| **r > 0)
                        {
                            adm.complete(shard);
                        }
                    }
                }
                prop_assert_eq!(adm.rejected_with_free_slot, 0,
                                "drain-first driver rejected while a slot was free");
            }
        }

        /// Greedy place-after-offer never strands a queued session while a
        /// slot is free.
        #[test]
        fn prop_no_session_waits_beside_a_free_slot(shards in 1usize..4, slots in 1usize..4,
                                                    offers in 1usize..40) {
            let mut adm = AdmissionState::new(config(shards, slots, 64));
            for _ in 0..offers {
                let _ = adm.offer();
                while adm.place().is_some() {}
                prop_assert!(adm.pending() == 0 || adm.free_slots() == 0,
                             "queued {} with {} free slots", adm.pending(), adm.free_slots());
            }
        }
    }
}
