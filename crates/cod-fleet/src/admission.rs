//! Admission control and placement bookkeeping, kept pure so its safety
//! properties can be property-tested without building simulators.
//!
//! The fleet owns the actual sessions; this state machine owns the *counts*:
//! how many sessions each shard hosts, how many arrivals of each priority
//! class wait in the bounded admission queue, and the conservation ledger.
//! With preemption in the picture the ledger gains a `preempted` term (a
//! preempted resident returns to the queue and is admitted again later):
//!
//! ```text
//! offered  = admitted + rejected + pending - preempted
//! admitted = completed + resident + preempted
//! ```
//!
//! The queue is a *priority* queue over [`Priority`] classes: placement
//! always drains the most urgent non-empty class first (FIFO within a
//! class — the fleet driver keeps the actual specs in matching order).
//! Placement picks the least-loaded shard with a free slot, optionally
//! weighted by the shards' modeled backlog cost (see
//! [`cod_cluster::least_loaded`]).

use cod_net::Micros;

use crate::workload::Priority;

/// Sizing of the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Number of shards (worker slots pools).
    pub shards: usize,
    /// Concurrent sessions one shard may host.
    pub slots_per_shard: usize,
    /// Bound on the admission queue; arrivals beyond it are rejected
    /// (backpressure).
    pub max_pending: usize,
}

/// The admission/placement state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionState {
    config: AdmissionConfig,
    /// Resident session count per shard.
    residents: Vec<usize>,
    /// Queued sessions per priority class (indexed by [`Priority::index`]).
    pending_by_class: [usize; Priority::COUNT],
    /// Total arrivals ever offered.
    pub offered: u64,
    /// Placements onto a shard (re-placements of preempted sessions count
    /// again).
    pub admitted: u64,
    /// Arrivals turned away because the queue was full.
    pub rejected: u64,
    /// Sessions retired from a shard.
    pub completed: u64,
    /// Residents pushed back to the queue to make room for a more urgent
    /// session.
    pub preempted: u64,
    /// Residents moved live from one shard to another.
    pub migrated: u64,
    /// Rejections that happened while a shard slot was still free. Such a
    /// rejection is avoidable (the queue could have drained into the slot
    /// first), so a correct *driver* keeps this at zero; the fleet invariants
    /// assert it.
    pub rejected_with_free_slot: u64,
    /// Largest queue depth observed.
    pub peak_pending: usize,
    /// Largest per-shard residency observed.
    pub peak_residents: usize,
}

impl AdmissionState {
    /// Creates an empty controller.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `slots_per_shard` is zero.
    pub fn new(config: AdmissionConfig) -> AdmissionState {
        assert!(config.shards > 0, "at least one shard is required");
        assert!(config.slots_per_shard > 0, "shards need at least one slot");
        AdmissionState {
            residents: vec![0; config.shards],
            config,
            pending_by_class: [0; Priority::COUNT],
            offered: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            preempted: 0,
            migrated: 0,
            rejected_with_free_slot: 0,
            peak_pending: 0,
            peak_residents: 0,
        }
    }

    /// The sizing this controller was built with.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Number of sessions currently waiting in the queue, over all classes.
    pub fn pending(&self) -> usize {
        self.pending_by_class.iter().sum()
    }

    /// Queued session counts per priority class (indexed by
    /// [`Priority::index`]).
    pub fn pending_by_class(&self) -> [usize; Priority::COUNT] {
        self.pending_by_class
    }

    /// The most urgent class with a queued session, if any.
    pub fn highest_pending(&self) -> Option<Priority> {
        Priority::ALL.iter().rev().copied().find(|p| self.pending_by_class[p.index()] > 0)
    }

    /// Resident session count per shard.
    pub fn residents(&self) -> &[usize] {
        &self.residents
    }

    /// Total sessions resident across all shards.
    pub fn resident_total(&self) -> usize {
        self.residents.iter().sum()
    }

    /// Free slots across the whole fleet.
    pub fn free_slots(&self) -> usize {
        self.config.shards * self.config.slots_per_shard - self.resident_total()
    }

    /// Offers one arrival of class `priority`: queued (`true`) or rejected by
    /// backpressure (`false`). A rejection at a moment when a shard slot is
    /// still free is *avoidable* — the driver could have drained the queue
    /// into the free slot first — and is counted in
    /// [`AdmissionState::rejected_with_free_slot`]; a correct driver (see
    /// [`crate::fleet::run_fleet`]) places queued sessions before bouncing an
    /// arrival, keeping that counter at zero.
    pub fn offer(&mut self, priority: Priority) -> bool {
        self.offered += 1;
        if self.pending() >= self.config.max_pending {
            self.rejected += 1;
            if self.free_slots() > 0 {
                self.rejected_with_free_slot += 1;
            }
            return false;
        }
        self.pending_by_class[priority.index()] += 1;
        self.peak_pending = self.peak_pending.max(self.pending());
        true
    }

    /// Places the longest-waiting session of the most urgent queued class
    /// onto the least-loaded shard with a free slot, weighting ties by the
    /// shards' modeled backlog cost when provided. Returns the chosen shard
    /// and the class drained, or `None` when the queue is empty or every slot
    /// is taken (backpressure holds the queue).
    pub fn place_weighted(&mut self, backlog: &[Micros]) -> Option<(usize, Priority)> {
        let priority = self.highest_pending()?;
        let chosen = self.choose_shard(backlog)?;
        self.pending_by_class[priority.index()] -= 1;
        self.admitted += 1;
        self.residents[chosen] += 1;
        self.peak_residents = self.peak_residents.max(self.residents[chosen]);
        Some((chosen, priority))
    }

    /// [`AdmissionState::place_weighted`] with resident counts as the load.
    pub fn place(&mut self) -> Option<(usize, Priority)> {
        self.place_weighted(&[])
    }

    /// Retires one session from `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` hosts no session.
    pub fn complete(&mut self, shard: usize) {
        assert!(self.residents[shard] > 0, "shard {shard} has no resident session to retire");
        self.residents[shard] -= 1;
        self.completed += 1;
    }

    /// Whether a resident may be preempted right now: the queue must have
    /// room to take it back, or the bounded-queue invariant would break.
    pub fn can_preempt(&self) -> bool {
        self.pending() < self.config.max_pending
    }

    /// Pushes one resident of class `victim` from `shard` back into the
    /// queue, to make room for a more urgent session. The session stays
    /// admitted-then-preempted in the ledger; its eventual re-placement
    /// counts in `admitted` again.
    ///
    /// # Panics
    ///
    /// Panics if `shard` hosts no session or the queue has no room (check
    /// [`AdmissionState::can_preempt`] first).
    pub fn preempt(&mut self, shard: usize, victim: Priority) {
        assert!(self.residents[shard] > 0, "shard {shard} has no resident session to preempt");
        assert!(self.can_preempt(), "the queue has no room for a preempted session");
        self.residents[shard] -= 1;
        self.pending_by_class[victim.index()] += 1;
        self.preempted += 1;
        self.peak_pending = self.peak_pending.max(self.pending());
    }

    /// Moves one resident live from `from` to `to` (the fleet replays the
    /// session deterministically on the target shard).
    ///
    /// # Panics
    ///
    /// Panics if `from` hosts no session, `to` has no free slot, or the two
    /// are the same shard.
    pub fn migrate(&mut self, from: usize, to: usize) {
        assert!(from != to, "migration requires two distinct shards");
        assert!(self.residents[from] > 0, "shard {from} has no resident session to migrate");
        assert!(
            self.residents[to] < self.config.slots_per_shard,
            "shard {to} has no free slot for a migrated session"
        );
        self.residents[from] -= 1;
        self.residents[to] += 1;
        self.migrated += 1;
        self.peak_residents = self.peak_residents.max(self.residents[to]);
    }

    /// The shard a new session would be placed on, without placing it: the
    /// least-loaded shard (by backlog cost when given, else by residency)
    /// among those with a free slot, ties breaking toward the lowest index
    /// (the [`cod_cluster::least_loaded`] rule). Full shards are excluded
    /// outright rather than marked with a sentinel cost, so even a shard
    /// whose advertised cost saturates at `u64::MAX` stays placeable.
    fn choose_shard(&self, backlog: &[Micros]) -> Option<usize> {
        let slots = self.config.slots_per_shard;
        self.residents
            .iter()
            .enumerate()
            .filter(|(_, r)| **r < slots)
            .map(|(i, r)| (backlog.get(i).copied().unwrap_or(Micros(*r as u64)), i))
            .min_by_key(|(load, i)| (*load, *i))
            .map(|(_, i)| i)
    }

    /// Verifies the conservation ledger and capacity bounds; returns every
    /// violated property.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let pending = self.pending() as u64;
        if self.offered + self.preempted != self.admitted + self.rejected + pending {
            out.push(format!(
                "offered {} + preempted {} != admitted {} + rejected {} + pending {}",
                self.offered, self.preempted, self.admitted, self.rejected, pending
            ));
        }
        if self.admitted != self.completed + self.preempted + self.resident_total() as u64 {
            out.push(format!(
                "admitted {} != completed {} + preempted {} + resident {}",
                self.admitted,
                self.completed,
                self.preempted,
                self.resident_total()
            ));
        }
        for (i, r) in self.residents.iter().enumerate() {
            if *r > self.config.slots_per_shard {
                out.push(format!(
                    "shard {i} hosts {r} sessions, capacity {}",
                    self.config.slots_per_shard
                ));
            }
        }
        if self.pending() > self.config.max_pending {
            out.push(format!(
                "queue depth {} exceeds bound {}",
                self.pending(),
                self.config.max_pending
            ));
        }
        // `rejected_with_free_slot` is deliberately not checked here: for the
        // bare state machine an avoidable rejection is the driver's doing.
        // The fleet driver drains the queue before bouncing arrivals, and
        // `cod_testkit::fleet_invariants` asserts the counter stays zero.
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config(shards: usize, slots: usize, max_pending: usize) -> AdmissionConfig {
        AdmissionConfig { shards, slots_per_shard: slots, max_pending }
    }

    fn priority(code: u8) -> Priority {
        Priority::ALL[code as usize % Priority::COUNT]
    }

    #[test]
    fn offers_queue_until_the_bound_then_reject() {
        let mut adm = AdmissionState::new(config(2, 1, 3));
        for _ in 0..3 {
            assert!(adm.offer(Priority::Training));
        }
        assert!(!adm.offer(Priority::Training), "fourth arrival must bounce off the bounded queue");
        assert_eq!(adm.rejected, 1);
        assert_eq!(adm.pending(), 3);
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
    }

    #[test]
    fn placement_prefers_the_least_loaded_shard() {
        let mut adm = AdmissionState::new(config(3, 2, 10));
        for _ in 0..4 {
            assert!(adm.offer(Priority::Batch));
        }
        assert_eq!(adm.place(), Some((0, Priority::Batch)));
        assert_eq!(adm.place(), Some((1, Priority::Batch)));
        assert_eq!(adm.place(), Some((2, Priority::Batch)));
        assert_eq!(adm.place(), Some((0, Priority::Batch)));
        assert_eq!(adm.residents(), &[2, 1, 1]);
    }

    #[test]
    fn placement_drains_the_most_urgent_class_first() {
        let mut adm = AdmissionState::new(config(1, 4, 10));
        assert!(adm.offer(Priority::Batch));
        assert!(adm.offer(Priority::Interactive));
        assert!(adm.offer(Priority::Training));
        assert_eq!(adm.highest_pending(), Some(Priority::Interactive));
        assert_eq!(adm.place().map(|(_, p)| p), Some(Priority::Interactive));
        assert_eq!(adm.place().map(|(_, p)| p), Some(Priority::Training));
        assert_eq!(adm.place().map(|(_, p)| p), Some(Priority::Batch));
        assert_eq!(adm.highest_pending(), None);
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
    }

    #[test]
    fn backlog_weights_override_residency_ties() {
        let mut adm = AdmissionState::new(config(2, 4, 10));
        assert!(adm.offer(Priority::Training));
        // Shard 0 nominally less resident but modeled as far more loaded.
        let backlog = [Micros::from_millis(900), Micros::from_millis(10)];
        assert_eq!(adm.place_weighted(&backlog), Some((1, Priority::Training)));
    }

    #[test]
    fn place_on_a_full_fleet_backpressures() {
        let mut adm = AdmissionState::new(config(1, 1, 5));
        assert!(adm.offer(Priority::Batch));
        assert!(adm.offer(Priority::Batch));
        assert_eq!(adm.place(), Some((0, Priority::Batch)));
        assert_eq!(adm.place(), None, "no slot free: the queue must hold");
        adm.complete(0);
        assert_eq!(adm.place(), Some((0, Priority::Batch)));
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
    }

    #[test]
    fn saturated_cost_hints_never_shadow_a_free_slot() {
        // Regression: a full shard used to be marked with a Micros(u64::MAX)
        // sentinel, so a free shard whose advertised cost also saturated at
        // u64::MAX could lose the tie to a lower-indexed *full* shard and the
        // session was rejected beside idle capacity.
        let mut adm = AdmissionState::new(config(2, 1, 4));
        assert!(adm.offer(Priority::Batch));
        assert!(adm.offer(Priority::Batch));
        assert_eq!(adm.place_weighted(&[Micros(u64::MAX); 2]), Some((0, Priority::Batch)));
        assert_eq!(
            adm.place_weighted(&[Micros(u64::MAX); 2]),
            Some((1, Priority::Batch)),
            "shard 1 is free and must win even at a saturated cost hint"
        );
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
    }

    #[test]
    fn preemption_requeues_the_victim_and_balances_the_ledger() {
        let mut adm = AdmissionState::new(config(1, 1, 4));
        assert!(adm.offer(Priority::Batch));
        assert_eq!(adm.place(), Some((0, Priority::Batch)));
        // An interactive arrival finds the fleet full; the batch resident is
        // preempted back to the queue and the interactive session takes over.
        assert!(adm.offer(Priority::Interactive));
        assert_eq!(adm.place(), None, "slot taken: must preempt first");
        assert!(adm.can_preempt());
        adm.preempt(0, Priority::Batch);
        assert_eq!(adm.preempted, 1);
        assert_eq!(adm.pending_by_class(), [1, 0, 1]);
        assert_eq!(adm.place(), Some((0, Priority::Interactive)));
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
        // The interactive session completes; the batch victim resumes.
        adm.complete(0);
        assert_eq!(adm.place(), Some((0, Priority::Batch)));
        adm.complete(0);
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
        assert_eq!(adm.admitted, 3, "re-placement of the victim counts again");
        assert_eq!(adm.completed, 2);
    }

    #[test]
    fn preemption_respects_the_queue_bound() {
        let mut adm = AdmissionState::new(config(1, 1, 1));
        assert!(adm.offer(Priority::Batch));
        assert_eq!(adm.place(), Some((0, Priority::Batch)));
        assert!(adm.offer(Priority::Interactive));
        assert!(!adm.can_preempt(), "queue full: the victim would overflow the bound");
    }

    #[test]
    fn migration_moves_residency_between_shards() {
        let mut adm = AdmissionState::new(config(2, 2, 4));
        assert!(adm.offer(Priority::Training));
        assert!(adm.offer(Priority::Training));
        assert_eq!(adm.place(), Some((0, Priority::Training)));
        assert_eq!(adm.place(), Some((1, Priority::Training)));
        adm.migrate(0, 1);
        assert_eq!(adm.residents(), &[0, 2]);
        assert_eq!(adm.migrated, 1);
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
        adm.complete(1);
        adm.complete(1);
        assert!(adm.violations().is_empty(), "{:?}", adm.violations());
    }

    #[test]
    #[should_panic]
    fn migration_to_a_full_shard_is_rejected() {
        let mut adm = AdmissionState::new(config(2, 1, 4));
        assert!(adm.offer(Priority::Batch));
        assert!(adm.offer(Priority::Batch));
        assert!(adm.place().is_some());
        assert!(adm.place().is_some());
        adm.migrate(0, 1);
    }

    proptest! {
        /// Drive the controller with an arbitrary event schedule — offers of
        /// every class, placements, completions, preemptions and migrations:
        /// capacity is never exceeded and the session ledger always balances.
        #[test]
        fn prop_admission_is_safe(shards in 1usize..5, slots in 1usize..4,
                                  max_pending in 1usize..6,
                                  events in proptest::collection::vec((0u8..5, 0u8..6), 1..120) ) {
            let mut adm = AdmissionState::new(config(shards, slots, max_pending));
            for (event, arg) in events {
                match event {
                    0 => { let _ = adm.offer(priority(arg)); }
                    1 => { let _ = adm.place(); }
                    2 => {
                        // Preempt from the busiest shard when allowed. The
                        // driver tracks victims' real classes; for the ledger
                        // any class is equivalent.
                        if adm.can_preempt() {
                            if let Some((shard, _)) = adm
                                .residents()
                                .iter()
                                .enumerate()
                                .filter(|(_, r)| **r > 0)
                                .max_by_key(|(_, r)| **r)
                            {
                                adm.preempt(shard, priority(arg));
                            }
                        }
                    }
                    3 => {
                        // Migrate busiest -> least loaded when legal.
                        let busiest = adm.residents().iter().enumerate()
                            .filter(|(_, r)| **r > 0).max_by_key(|(_, r)| **r).map(|(i, _)| i);
                        let emptiest = adm.residents().iter().enumerate()
                            .filter(|(_, r)| **r < slots).min_by_key(|(_, r)| **r).map(|(i, _)| i);
                        if let (Some(from), Some(to)) = (busiest, emptiest) {
                            if from != to {
                                adm.migrate(from, to);
                            }
                        }
                    }
                    _ => {
                        // Retire from the busiest shard, if any session runs.
                        if let Some((shard, _)) = adm
                            .residents()
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| **r > 0)
                            .max_by_key(|(_, r)| **r)
                        {
                            adm.complete(shard);
                        }
                    }
                }
                prop_assert!(adm.violations().is_empty(), "{:?}", adm.violations());
                // A rejection can only ever happen at a full queue.
                prop_assert!(adm.rejected == 0 || adm.peak_pending == max_pending);
            }
        }

        /// The fleet's driver discipline — drain a full queue into free slots
        /// before bouncing an arrival — never rejects avoidably, under any
        /// interleaving of arrivals and completions.
        #[test]
        fn prop_drain_first_driver_never_rejects_avoidably(
            shards in 1usize..4, slots in 1usize..4, max_pending in 1usize..5,
            events in proptest::collection::vec((0u8..3, 0u8..6), 1..120)) {
            let mut adm = AdmissionState::new(config(shards, slots, max_pending));
            for (event, arg) in events {
                match event {
                    0 | 1 => {
                        while adm.pending() >= max_pending && adm.place().is_some() {}
                        let _ = adm.offer(priority(arg));
                    }
                    _ => {
                        if let Some((shard, _)) =
                            adm.residents().iter().enumerate().find(|(_, r)| **r > 0)
                        {
                            adm.complete(shard);
                        }
                    }
                }
                prop_assert_eq!(adm.rejected_with_free_slot, 0,
                                "drain-first driver rejected while a slot was free");
            }
        }

        /// Greedy place-after-offer never strands a queued session while a
        /// slot is free, and never drains a less urgent class while a more
        /// urgent one still waits.
        #[test]
        fn prop_no_session_waits_beside_a_free_slot(shards in 1usize..4, slots in 1usize..4,
                                                    offers in proptest::collection::vec(0u8..6, 1..40)) {
            let mut adm = AdmissionState::new(config(shards, slots, 64));
            for code in offers {
                let _ = adm.offer(priority(code));
                let mut last = Priority::Interactive;
                while let Some((_, placed)) = adm.place() {
                    prop_assert!(placed <= last, "placed {placed:?} after {last:?}");
                    last = placed;
                }
                prop_assert!(adm.pending() == 0 || adm.free_slots() == 0,
                             "queued {} with {} free slots", adm.pending(), adm.free_slots());
            }
        }
    }
}
