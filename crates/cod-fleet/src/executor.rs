//! The wall-clock execution engine: a work-stealing pool of pinned worker
//! threads stepping shard batches in real time.
//!
//! The modeled-time paths ([`crate::fleet::ExecutionMode::Modeled`] and the
//! legacy thread-per-shard fan-out) answer "how much CPU would this tick
//! cost"; this module answers "how fast does the hardware actually serve
//! it". A [`WallClockExecutor`] spawns its workers **once per fleet run** —
//! each worker is pinned to its index for the lifetime of the run, so the
//! per-tick cost is a task hand-off, not a thread spawn — and every tick the
//! fleet driver injects one *shard-batch task* per shard:
//!
//! * tasks enter through a lock-free [`crossbeam::deque::Injector`] (the
//!   admission-to-shard hand-off);
//! * each worker drains its own [`crossbeam::deque::Worker`] deque first,
//!   then batch-steals from the injector, then steals from sibling
//!   [`crossbeam::deque::Stealer`]s — the classic work-stealing loop, so a
//!   worker that finishes its shard early takes load off a slower sibling
//!   instead of idling;
//! * results return over a `crossbeam::channel` and are **merged in shard-id
//!   order**, which is what keeps a wall-clock run bit-identical to a
//!   modeled run of the same configuration at *any* thread count: threads
//!   decide only who executes a shard's batch, never what the batch computes
//!   or the order its results are folded in.
//!
//! Wall-clock timings live beside the deterministic outcome (see
//! [`crate::fleet::WallClockStats`]), never inside it: `FLEET_cod.json`
//! carries no wall numbers and stays byte-identical per seed whether a run
//! took one thread or eight.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cod_cb::CbError;
use cod_net::Micros;
use cod_trace::WallTrace;
use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use crate::shard::{Completed, Shard};

/// A wall-clock stopwatch: started once, read as a [`Duration`] since.
///
/// This is the only sanctioned way for fleet code outside this module to
/// measure real time. `cod_audit` bans `Instant`/`elapsed(` everywhere but
/// the explicit wall-clock allowlist (this file is on it), so routing every
/// fleet timing through here keeps the fence mechanical: a stray clock read
/// in the deterministic tick loop is a lint error, not a seed hunt. The
/// reading deliberately lands in a [`Duration`] — a value, not a clock — so
/// the borrow ends at the fence.
#[derive(Debug, Clone, Copy)]
pub struct WallStopwatch {
    started: Instant,
}

impl WallStopwatch {
    /// Starts the stopwatch now.
    pub fn start() -> WallStopwatch {
        WallStopwatch { started: Instant::now() }
    }

    /// Real time since [`WallStopwatch::start`].
    pub fn read(&self) -> Duration {
        self.started.elapsed()
    }
}

/// One tick's result for one shard: its retirements plus its modeled busy
/// time.
pub(crate) type TickResult = (Vec<Completed>, Micros);

/// A shard-batch task: the shard is moved into the pool for the duration of
/// its step and handed back with the result.
type Task = Shard;

/// What a worker sends back for one task.
enum TaskDone {
    /// The shard stepped its batch (the step itself may still carry a
    /// session error); the shard comes back for the next tick.
    Stepped(Box<Shard>, Result<TickResult, CbError>),
    /// The task panicked; the shard is lost with the worker's stack.
    Panicked,
}

/// Per-worker observability counters. Purely diagnostic: they describe how
/// the race unfolded (who stole what, who idled how long), never what was
/// computed, and are never serialized into `FLEET_cod.json`.
#[derive(Debug, Default)]
struct WorkerCounters {
    /// Tasks this worker took from outside its local deque — injector
    /// batch-takes plus sibling steals.
    steals: AtomicU64,
    /// Times this worker came up empty-handed and backed off.
    idle_spins: AtomicU64,
    /// Total shard-batch tasks this worker ran, whatever their source.
    tasks: AtomicU64,
}

/// A pool of long-lived worker threads stepping shard batches via work
/// stealing. Create one per fleet run; submit one tick at a time through
/// [`WallClockExecutor::step_shards`].
pub struct WallClockExecutor {
    injector: Arc<Injector<Task>>,
    done_rx: Receiver<TaskDone>,
    live: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Vec<WorkerCounters>>,
}

impl WallClockExecutor {
    /// Spawns `threads` workers (clamped to at least one). Workers are
    /// pinned to their index for the lifetime of the executor: worker `i`
    /// keeps its own deque and its name (`fleet-worker-i`) from first tick
    /// to shutdown, so the per-tick cost is a queue hand-off, not a thread
    /// spawn.
    pub fn new(threads: usize) -> WallClockExecutor {
        WallClockExecutor::new_traced(threads, None)
    }

    /// [`WallClockExecutor::new`] with an optional wall-clock trace sink.
    /// When `wall` is `Some`, every worker records per-task spans, steal
    /// instants and idle gaps into its own trace lane
    /// ([`WallTrace::worker_lane`]); when `None` the loop is exactly the
    /// untraced hot path.
    pub fn new_traced(threads: usize, wall: Option<Arc<WallTrace>>) -> WallClockExecutor {
        let threads = threads.max(1);
        let injector = Arc::new(Injector::new());
        let (done_tx, done_rx) = unbounded();
        let live = Arc::new(AtomicBool::new(true));

        let counters: Arc<Vec<WorkerCounters>> =
            Arc::new((0..threads).map(|_| WorkerCounters::default()).collect());

        let deques: Vec<Worker<Task>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Task>> = deques.iter().map(Worker::stealer).collect();
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let injector = Arc::clone(&injector);
                let live = Arc::clone(&live);
                let stealers = stealers.clone();
                let done_tx = done_tx.clone();
                let counters = Arc::clone(&counters);
                let wall = wall.clone();
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{index}"))
                    .spawn(move || {
                        worker_loop(
                            index,
                            &local,
                            &injector,
                            &stealers,
                            &done_tx,
                            &live,
                            &counters,
                            wall.as_deref(),
                        )
                    })
                    .expect("spawn fleet worker")
            })
            .collect();

        WallClockExecutor { injector, done_rx, live, workers, counters }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Per-worker count of tasks taken from outside the worker's own deque
    /// (injector batch-takes plus sibling steals), indexed by worker.
    /// Diagnostic only — the values depend on the race and are never part of
    /// the deterministic outcome.
    pub fn worker_steals(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.steals.load(Ordering::Relaxed)).collect()
    }

    /// Per-worker count of empty-handed scheduling rounds (yield or sleep),
    /// indexed by worker. Diagnostic only.
    pub fn worker_idle_spins(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.idle_spins.load(Ordering::Relaxed)).collect()
    }

    /// Per-worker count of shard-batch tasks run (from any source), indexed
    /// by worker. Diagnostic only.
    pub fn worker_tasks(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.tasks.load(Ordering::Relaxed)).collect()
    }

    /// Steps every shard's batch once across the pool and merges the results
    /// **in shard-id order**, so the outcome is independent of which worker
    /// ran what and of how the steals interleaved. The shards are moved into
    /// the pool for the duration of the tick and handed back in id order.
    ///
    /// # Errors
    ///
    /// Returns the first (by shard id) hard error any session raised; all
    /// shards still complete their batch first, so the pool is quiescent
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while stepping a shard, mirroring
    /// the thread-per-shard path's join behavior.
    pub(crate) fn step_shards(&self, shards: &mut Vec<Shard>) -> Result<Vec<TickResult>, CbError> {
        let expected = shards.len();
        // Hand every shard to the pool. Shard ids are fleet indices, so id
        // order and vector order agree; the injector serves them FIFO but
        // nothing below depends on that.
        for shard in shards.drain(..) {
            self.injector.push(shard);
        }
        let mut slots: Vec<Option<(Shard, Result<TickResult, CbError>)>> = Vec::new();
        slots.resize_with(expected, || None);
        for _ in 0..expected {
            match self.done_rx.recv().expect("fleet workers are alive") {
                TaskDone::Stepped(shard, result) => {
                    let id = shard.id;
                    debug_assert!(slots[id].is_none(), "shard {id} stepped twice in one tick");
                    slots[id] = Some((*shard, result));
                }
                TaskDone::Panicked => panic!("shard thread panicked"),
            }
        }
        // Reassemble in shard-id order: the merge order — and therefore the
        // whole outcome — is a function of the configuration, not the race.
        let mut results = Vec::with_capacity(expected);
        for slot in slots {
            let (shard, result) = slot.expect("every shard reported back");
            shards.push(shard);
            results.push(result);
        }
        results.into_iter().collect()
    }
}

impl Drop for WallClockExecutor {
    fn drop(&mut self) {
        self.live.store(false, Ordering::Release);
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a task already delivered its
            // verdict through the channel; nothing useful left to propagate.
            let _ = worker.join();
        }
    }
}

/// Where [`find_task`] got its task from — the label each steal instant
/// carries in the wall-clock trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskSource {
    /// The worker's own deque: not a steal.
    Local,
    /// A batch-take off the shared injector.
    Injector,
    /// A single task stolen from a sibling's deque.
    Sibling,
}

/// One worker's life: drain the local deque, else batch-steal from the
/// injector, else steal from a sibling, else back off until shutdown.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    index: usize,
    local: &Worker<Task>,
    injector: &Injector<Task>,
    stealers: &[Stealer<Task>],
    done_tx: &Sender<TaskDone>,
    live: &AtomicBool,
    counters: &[WorkerCounters],
    wall: Option<&WallTrace>,
) {
    let lane = WallTrace::worker_lane(index);
    let mut idle_spins = 0u32;
    // Wall-clock µs at which the current idle gap started, if one is open.
    let mut idle_since: Option<u64> = None;
    loop {
        match find_task(index, local, injector, stealers) {
            Some((mut shard, source)) => {
                if source != TaskSource::Local {
                    counters[index].steals.fetch_add(1, Ordering::Relaxed);
                }
                counters[index].tasks.fetch_add(1, Ordering::Relaxed);
                idle_spins = 0;
                let start = wall.map(|w| {
                    if let Some(since) = idle_since.take() {
                        w.complete(lane, "idle".to_string(), "idle", since);
                    }
                    match source {
                        TaskSource::Local => {}
                        TaskSource::Injector => w.instant(lane, "injector-take", "steal"),
                        TaskSource::Sibling => w.instant(lane, "sibling-steal", "steal"),
                    }
                    w.now_us()
                });
                let shard_id = shard.id;
                shard.set_wall_lane(lane);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let result = shard.step_batch();
                    (shard, result)
                }));
                if let (Some(w), Some(start)) = (wall, start) {
                    w.complete(lane, format!("shard{shard_id}"), "step", start);
                }
                let done = match result {
                    Ok((shard, result)) => TaskDone::Stepped(Box::new(shard), result),
                    Err(_) => TaskDone::Panicked,
                };
                if done_tx.send(done).is_err() {
                    return; // Executor dropped mid-tick; nobody is listening.
                }
            }
            None => {
                if !live.load(Ordering::Acquire) {
                    if let (Some(w), Some(since)) = (wall, idle_since.take()) {
                        w.complete(lane, "idle".to_string(), "idle", since);
                    }
                    return;
                }
                if let Some(w) = wall {
                    if idle_since.is_none() {
                        idle_since = Some(w.now_us());
                    }
                }
                // Briefly spin-yield for the next tick's tasks, then sleep:
                // ticks are milliseconds apart, so the pool must not burn a
                // core per worker while the fleet driver places sessions.
                counters[index].idle_spins.fetch_add(1, Ordering::Relaxed);
                idle_spins = idle_spins.saturating_add(1);
                if idle_spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            }
        }
    }
}

/// The steal policy: local work first, then a batch off the injector (moving
/// up to half the queue into the local deque so siblings contend less), then
/// a single task off the first non-empty sibling. The source says where the
/// task came from (for the steal counters and the trace's steal instants).
fn find_task(
    index: usize,
    local: &Worker<Task>,
    injector: &Injector<Task>,
    stealers: &[Stealer<Task>],
) -> Option<(Task, TaskSource)> {
    if let Some(task) = local.pop() {
        return Some((task, TaskSource::Local));
    }
    if let Steal::Success(task) = injector.steal_batch_and_pop(local) {
        return Some((task, TaskSource::Injector));
    }
    for (i, stealer) in stealers.iter().enumerate() {
        if i == index {
            continue;
        }
        if let Steal::Success(task) = stealer.steal() {
            return Some((task, TaskSource::Sibling));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardConfig;
    use crate::workload::{generate, WorkloadConfig};

    fn shard_with_session(id: usize, seed: u64, frames: usize) -> Shard {
        let mut shard = Shard::new(
            id,
            ShardConfig { slots: 2, batch_frames: 4, pool_per_shape: 1, ..ShardConfig::default() },
            1.0,
        );
        let mut arrivals = generate(&WorkloadConfig {
            sessions: 1,
            seed,
            base_frames: frames,
            mean_interarrival_ticks: 0,
        });
        let mut spec = arrivals.remove(0).spec;
        spec.id = id as u64;
        spec.frames = frames;
        spec.config.exam_frames = frames;
        shard.admit(spec, 0, 0).unwrap();
        shard
    }

    #[test]
    fn executor_steps_match_sequential_steps_at_any_thread_count() {
        for threads in [1usize, 2, 4] {
            // Sequential reference.
            let mut expected = Vec::new();
            let mut reference: Vec<Shard> =
                (0..3).map(|i| shard_with_session(i, 7 + i as u64, 8)).collect();
            for shard in reference.iter_mut() {
                expected.push(shard.step_batch().unwrap());
            }
            // Pool run of identically prepared shards.
            let executor = WallClockExecutor::new(threads);
            let mut shards: Vec<Shard> =
                (0..3).map(|i| shard_with_session(i, 7 + i as u64, 8)).collect();
            let results = executor.step_shards(&mut shards).unwrap();
            assert_eq!(results.len(), 3);
            for (i, ((completed, busy), (exp_completed, exp_busy))) in
                results.iter().zip(&expected).enumerate()
            {
                assert_eq!(busy, exp_busy, "shard {i} busy time diverged at {threads} threads");
                assert_eq!(completed, exp_completed, "shard {i} diverged at {threads} threads");
            }
            // Shards come back in id order, ready for the next tick.
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.id, i);
            }
        }
    }

    #[test]
    fn executor_survives_many_ticks_and_returns_shards_every_time() {
        let executor = WallClockExecutor::new(2);
        assert_eq!(executor.threads(), 2);
        let mut shards: Vec<Shard> = (0..2).map(|i| shard_with_session(i, 3, 12)).collect();
        let mut retired = 0usize;
        for _ in 0..3 {
            let results = executor.step_shards(&mut shards).unwrap();
            assert_eq!(shards.len(), 2, "every shard must come home each tick");
            retired += results.iter().map(|(done, _)| done.len()).sum::<usize>();
        }
        assert_eq!(retired, 2, "both 12-frame sessions retire within 3 x 4-frame ticks");
    }

    #[test]
    fn zero_threads_clamps_to_one_worker() {
        let executor = WallClockExecutor::new(0);
        assert_eq!(executor.threads(), 1);
        let mut shards = vec![shard_with_session(0, 5, 4)];
        let results = executor.step_shards(&mut shards).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0.len(), 1, "the 4-frame session retires in one 4-frame tick");
    }

    #[test]
    fn worker_panic_surfaces_like_a_failed_join() {
        let executor = WallClockExecutor::new(2);
        let mut shards: Vec<Shard> = (0..2).map(|i| shard_with_session(i, 9, 8)).collect();
        shards[1].poison_for_test = true;
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            executor.step_shards(&mut shards)
        }))
        .expect_err("a poisoned shard must panic the tick");
        let message = panic.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "shard thread panicked");
    }
}
