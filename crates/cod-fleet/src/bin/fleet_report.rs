//! Runs the fleet serving benchmark and writes the machine-readable
//! `FLEET_cod.json` report.
//!
//! ```text
//! cargo run --release -p cod-fleet --bin fleet_report [-- --quick] [--seed N] [--shards N] [--out PATH]
//! ```
//!
//! The same seeded workload is served twice — on one shard (the baseline) and
//! on `--shards` shards — and the ratio of their modeled sessions/sec is the
//! fleet's scaling factor. Exits non-zero if scaling from 1 shard to 4+
//! shards drops below 2x, mirroring the >=3x COD speedup gate of
//! `bench_report`. The report carries no wall-clock stamp: two runs with the
//! same seed produce byte-identical files.

use std::process::ExitCode;
use std::time::Instant;

use cod_fleet::{document, run_fleet, FleetConfig, FleetReport};

/// Minimum acceptable sessions/sec scaling from one shard to the full fleet.
const SCALING_FLOOR: f64 = 2.0;

const USAGE: &str = "usage: fleet_report [--quick] [--seed N] [--shards N] [--out PATH]";

struct Args {
    quick: bool,
    seed: u64,
    shards: usize,
    out: String,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { quick: false, seed: 0xC0D, shards: 4, out: "FLEET_cod.json".into(), help: false };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--seed needs an integer\n{USAGE}"))?;
            }
            "--shards" => {
                args.shards = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--shards needs a positive integer\n{USAGE}"))?;
            }
            "--out" => {
                args.out = argv.next().ok_or_else(|| format!("--out needs a path\n{USAGE}"))?;
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let make_config = |shards: usize| {
        if args.quick {
            FleetConfig::quick(shards, args.seed)
        } else {
            FleetConfig::full(shards, args.seed)
        }
    };

    let workload = make_config(args.shards).workload;
    println!(
        "fleet serving: {} sessions (seed {:#x}), {} shards vs 1-shard baseline ({} mode)",
        workload.sessions,
        args.seed,
        args.shards,
        if args.quick { "quick" } else { "full" },
    );

    let wall = Instant::now();
    let baseline = match run_fleet(&make_config(1)) {
        Ok(outcome) => outcome,
        Err(err) => return die(&format!("baseline run failed: {err}")),
    };
    let baseline_wall = wall.elapsed();
    let wall = Instant::now();
    let fleet = match run_fleet(&make_config(args.shards)) {
        Ok(outcome) => outcome,
        Err(err) => return die(&format!("fleet run failed: {err}")),
    };
    let fleet_wall = wall.elapsed();

    let baseline_report = FleetReport::from_outcome(&baseline);
    let fleet_report = FleetReport::from_outcome(&fleet);

    println!("\n--- 1-shard baseline ({baseline_wall:.2?} wall) ---");
    print!("{}", baseline_report.render_table());
    println!("\n--- {}-shard fleet ({fleet_wall:.2?} wall) ---", args.shards);
    print!("{}", fleet_report.render_table());

    let text = document(&baseline_report, &fleet_report, args.quick).to_pretty();
    if let Err(err) = std::fs::write(&args.out, text) {
        return die(&format!("cannot write {}: {err}", args.out));
    }
    println!("\nwrote {}", args.out);

    let scaling = if baseline_report.sessions_per_sec > 0.0 {
        fleet_report.sessions_per_sec / baseline_report.sessions_per_sec
    } else {
        0.0
    };
    if args.shards >= 4 && scaling < SCALING_FLOOR {
        eprintln!(
            "REGRESSION: sessions/sec scaling {scaling:.2}x (1 -> {} shards) fell below the {SCALING_FLOOR:.1}x floor",
            args.shards
        );
        return ExitCode::FAILURE;
    }
    println!(
        "sessions/sec scaling 1 -> {} shards: {scaling:.2}x (floor {SCALING_FLOOR:.1}x) — ok",
        args.shards
    );
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ExitCode {
    eprintln!("fleet_report: {msg}");
    ExitCode::FAILURE
}
