//! Runs the fleet serving benchmark and writes the machine-readable
//! `FLEET_cod.json` report.
//!
//! ```text
//! cargo run --release -p cod-fleet --bin fleet_report [-- --quick] [--seed N] [--shards N] [--out PATH]
//! ```
//!
//! The same seeded workload is served seven times:
//!
//! 1. on one shard (the scaling baseline);
//! 2. on `--shards` homogeneous shards — the ratio of modeled sessions/sec is
//!    the fleet's scaling factor, gated at >= 2x for 4+ shards;
//! 3. on the heterogeneous fleet (1×2.0-speed + 3×0.5-speed) with
//!    residency-only placement;
//! 4. on the same heterogeneous fleet with speed-weighted placement,
//!    priorities, preemption and live migration engaged;
//! 5. on the aware fleet with halved slots (the priority-pressure run), so
//!    the fleet saturates and preemption genuinely fires; and
//! 6. + 7. the tiered-capacity pair: a burst workload (every session at the
//!    door at once) served all-Full and then with fidelity tiering on —
//!    same rack, same seed, only the tiering policy differs.
//!
//! With `--wallclock`, the headline fleet run is additionally served under
//! the work-stealing executor at 1 and 4 worker threads
//! ([`cod_fleet::ExecutionMode::WallClock`]): the two runs' reports must be
//! byte-identical to the headline report (thread scheduling must never leak
//! into the deterministic output), and — on runners with at least 4 cores —
//! real sessions/sec must scale by at least [`WALLCLOCK_SCALING_FLOOR`]x
//! from 1 to 4 threads. On smaller machines the scaling gate downgrades to
//! an informational line (no amount of work stealing buys real parallelism
//! without cores); the byte-identity gate always applies.
//!
//! Exits non-zero if the homogeneous scaling drops below 2x, if the
//! speed-weighted heterogeneous run does not strictly beat the
//! residency-only one (the E10 gate), if the aware run never migrates, if
//! the pressure run never preempts, if interactive-class p95 latency
//! regresses above batch-class p95 under pressure, or if the tiered run
//! fails its gates: modeled capacity at least [`TIERED_CAPACITY_FLOOR`]x the
//! all-Full run, at least one live promotion and one live demotion, and the
//! largest per-session final-score drift within the pinned
//! [`SCORE_DRIFT_TOLERANCE`]. The report carries no wall-clock stamp: two
//! runs with the same seed produce byte-identical files — preemption,
//! migration and retiering included.

use std::collections::BTreeMap;
use std::process::ExitCode;

use cod_fleet::{
    document, run_fleet, run_fleet_timed, ExecutionMode, FleetConfig, FleetReport, PlacementPolicy,
    Priority, TieredSection, WallStopwatch,
};
use crane_sim::SCORE_DRIFT_TOLERANCE;

/// Minimum acceptable sessions/sec scaling from one shard to the full fleet.
const SCALING_FLOOR: f64 = 2.0;

/// Minimum acceptable *wall-clock* sessions/sec scaling from 1 to 4 executor
/// threads under `--wallclock`. Deliberately conservative: shard batches are
/// coarse and the workload small, so perfect 4x is never on the table, and
/// small CI runners share cores with the rest of the job — 1.5x is the floor
/// real parallelism must clear, not a target.
const WALLCLOCK_SCALING_FLOOR: f64 = 1.5;

/// Minimum acceptable modeled-capacity multiplier of the tiered run over the
/// all-Full run on the same rack and seed.
const TIERED_CAPACITY_FLOOR: f64 = 2.0;

const USAGE: &str =
    "usage: fleet_report [--quick] [--wallclock] [--seed N] [--shards N] [--out PATH]";

struct Args {
    quick: bool,
    wallclock: bool,
    seed: u64,
    shards: usize,
    out: String,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        wallclock: false,
        seed: 0xC0D,
        shards: 4,
        out: "FLEET_cod.json".into(),
        help: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--wallclock" => args.wallclock = true,
            "--seed" => {
                args.seed = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--seed needs an integer\n{USAGE}"))?;
            }
            "--shards" => {
                args.shards = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--shards needs a positive integer\n{USAGE}"))?;
            }
            "--out" => {
                args.out = argv.next().ok_or_else(|| format!("--out needs a path\n{USAGE}"))?;
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let make_config = |shards: usize| {
        if args.quick {
            FleetConfig::quick(shards, args.seed)
        } else {
            FleetConfig::full(shards, args.seed)
        }
    };
    // The heterogeneous pair: same workload, 1×2.0 + 3×0.5 shards; only the
    // serving policies differ between the two runs.
    let hetero_base = FleetConfig { shard_speeds: vec![2.0, 0.5, 0.5, 0.5], ..make_config(4) };
    let hetero_naive = FleetConfig {
        placement: PlacementPolicy::LeastResident,
        preemption: false,
        migration: false,
        ..hetero_base.clone()
    };
    let hetero_aware = FleetConfig {
        placement: PlacementPolicy::SpeedWeighted,
        preemption: true,
        migration: true,
        ..hetero_base
    };
    // The priority-pressure run: the aware stack with halved slots, so the
    // fleet saturates and preemption actually fires. Purely a gate run; it
    // is not part of the E10 pair (whose two sides must differ only in
    // policy) and is not written to the report.
    let mut hetero_pressure = hetero_aware.clone();
    hetero_pressure.shard.slots /= 2;

    // The tiered-capacity pair: the homogeneous rack under a burst workload
    // (every session arrives at once, so admission pressure is real), served
    // all-Full and then with fidelity tiering on. Preemption and migration
    // are engaged on both sides — tiering concentrates the expensive Full
    // residents on few shards, and without rebalancing the busiest shard
    // would mask most of the capacity the Coarse tier frees. Identical
    // except for the tiering flag.
    let mut tiered_full = make_config(args.shards);
    tiered_full.workload.mean_interarrival_ticks = 0;
    tiered_full.preemption = true;
    tiered_full.migration = true;
    // Admit just under half the burst: the capacity question is how fast the
    // fleet *serves* a backlog, so the queue must be deep enough to keep the
    // Coarse tail long — but bounded, because the bound is what lets the
    // queue drain to calm while a Training session is still resident, and a
    // calm tick with a live Training candidate is what makes the promotion
    // path fire inside this run.
    tiered_full.max_pending = tiered_full.workload.sessions / 2 - 2;
    let tiered_on = FleetConfig { tiering: true, ..tiered_full.clone() };

    let workload = make_config(args.shards).workload;
    println!(
        "fleet serving: {} sessions (seed {:#x}), {} shards vs 1-shard baseline, plus the \
         heterogeneous 1x2.0 + 3x0.5 pair ({} mode)",
        workload.sessions,
        args.seed,
        args.shards,
        if args.quick { "quick" } else { "full" },
    );

    let timed = |config: &FleetConfig, label: &str| match run_fleet(config) {
        Ok(outcome) => Ok(FleetReport::from_outcome(&outcome)),
        Err(err) => Err(format!("{label} run failed: {err}")),
    };

    let wall = WallStopwatch::start();
    let baseline = match timed(&make_config(1), "baseline") {
        Ok(report) => report,
        Err(msg) => return die(&msg),
    };
    let baseline_wall = wall.read();
    let wall = WallStopwatch::start();
    let fleet = match timed(&make_config(args.shards), "fleet") {
        Ok(report) => report,
        Err(msg) => return die(&msg),
    };
    let fleet_wall = wall.read();
    let wall = WallStopwatch::start();
    let naive = match timed(&hetero_naive, "heterogeneous least-resident") {
        Ok(report) => report,
        Err(msg) => return die(&msg),
    };
    let aware = match timed(&hetero_aware, "heterogeneous speed-weighted") {
        Ok(report) => report,
        Err(msg) => return die(&msg),
    };
    let pressure = match timed(&hetero_pressure, "heterogeneous priority-pressure") {
        Ok(report) => report,
        Err(msg) => return die(&msg),
    };
    let hetero_wall = wall.read();
    // The tiered pair keeps its outcomes: the score-drift gate pairs the two
    // runs' sessions by id, which the serialized reports no longer carry.
    let wall = WallStopwatch::start();
    let all_full_outcome = match run_fleet(&tiered_full) {
        Ok(outcome) => outcome,
        Err(err) => return die(&format!("all-Full burst run failed: {err}")),
    };
    let tiered_outcome = match run_fleet(&tiered_on) {
        Ok(outcome) => outcome,
        Err(err) => return die(&format!("tiered burst run failed: {err}")),
    };
    let tiered_wall = wall.read();
    let full_scores: BTreeMap<u64, f64> =
        all_full_outcome.sessions.iter().map(|s| (s.id, s.score)).collect();
    let max_score_drift = tiered_outcome
        .sessions
        .iter()
        .filter_map(|s| full_scores.get(&s.id).map(|full| (s.score - full).abs()))
        .fold(0.0_f64, f64::max);
    let tiered = TieredSection {
        all_full: FleetReport::from_outcome(&all_full_outcome),
        tiered: FleetReport::from_outcome(&tiered_outcome),
        max_score_drift,
    };

    println!("\n--- 1-shard baseline ({baseline_wall:.2?} wall) ---");
    print!("{}", baseline.render_table());
    println!("\n--- {}-shard fleet ({fleet_wall:.2?} wall) ---", args.shards);
    print!("{}", fleet.render_table());
    println!("\n--- heterogeneous pair ({hetero_wall:.2?} wall) ---");
    println!("residency-only placement:");
    print!("{}", naive.render_table());
    println!("speed-weighted + priorities + preemption + migration:");
    print!("{}", aware.render_table());
    println!("priority pressure (halved slots, saturating):");
    print!("{}", pressure.render_table());
    println!("\n--- tiered-capacity pair, burst workload ({tiered_wall:.2?} wall) ---");
    println!("all-Full:");
    print!("{}", tiered.all_full.render_table());
    println!("fidelity tiering on:");
    print!("{}", tiered.tiered.render_table());

    let text =
        document(&baseline, &fleet, Some((&naive, &aware)), Some(&tiered), args.quick).to_pretty();
    if let Err(err) = std::fs::write(&args.out, text) {
        return die(&format!("cannot write {}: {err}", args.out));
    }
    println!("\nwrote {}", args.out);

    let mut failed = false;
    let scaling = if baseline.sessions_per_sec > 0.0 {
        fleet.sessions_per_sec / baseline.sessions_per_sec
    } else {
        0.0
    };
    if args.shards >= 4 && scaling < SCALING_FLOOR {
        eprintln!(
            "REGRESSION: sessions/sec scaling {scaling:.2}x (1 -> {} shards) fell below the {SCALING_FLOOR:.1}x floor",
            args.shards
        );
        failed = true;
    } else {
        println!(
            "sessions/sec scaling 1 -> {} shards: {scaling:.2}x (floor {SCALING_FLOOR:.1}x) — ok",
            args.shards
        );
    }

    // E10 gate: on unequal machines, weighing placement by speed-scaled
    // backlog must strictly beat counting residents.
    if aware.sessions_per_sec <= naive.sessions_per_sec {
        eprintln!(
            "REGRESSION: speed-weighted placement {:.2}/s does not beat residency-only {:.2}/s \
             on the 1x2.0 + 3x0.5 fleet",
            aware.sessions_per_sec, naive.sessions_per_sec
        );
        failed = true;
    } else {
        println!(
            "heterogeneous fleet: speed-weighted {:.2}/s vs residency-only {:.2}/s ({:.2}x) — ok",
            aware.sessions_per_sec,
            naive.sessions_per_sec,
            aware.sessions_per_sec / naive.sessions_per_sec
        );
    }

    // Priority gate, on the pressure run (halved slots so the fleet
    // saturates): preemption must actually fire — a gate over a mechanism
    // the run never exercised proves nothing — and interactive sessions
    // must not wait longer than batch sessions at the tail. Percentiles of
    // an empty class read 0.0, so only compare classes that completed
    // sessions (an exotic --seed could drain one class empty).
    if pressure.preempted == 0 {
        eprintln!(
            "REGRESSION: the saturated priority run performed no preemption — the priority gate \
             is vacuous"
        );
        failed = true;
    } else {
        println!("preemptions in the saturated priority run: {} — ok", pressure.preempted);
    }
    let int_p95 = pressure.class_latency_p95[Priority::Interactive.index()];
    let bat_p95 = pressure.class_latency_p95[Priority::Batch.index()];
    let int_n = pressure.class_completed[Priority::Interactive.index()];
    let bat_n = pressure.class_completed[Priority::Batch.index()];
    if int_n == 0 || bat_n == 0 {
        println!(
            "priority latency gate skipped: {int_n} interactive / {bat_n} batch sessions \
             completed — nothing to compare"
        );
    } else if int_p95 > bat_p95 {
        eprintln!(
            "REGRESSION: interactive-class p95 latency {int_p95:.1} ticks exceeds batch-class \
             p95 {bat_p95:.1} ticks despite priority admission"
        );
        failed = true;
    } else {
        println!("interactive p95 {int_p95:.1} ticks <= batch p95 {bat_p95:.1} ticks — ok");
    }

    // The determinism contract is exercised under migration: the aware run
    // must actually migrate, or the byte-exact replay gate proves nothing.
    if aware.migrated == 0 {
        eprintln!(
            "REGRESSION: the heterogeneous run performed no migration — the replay gate is vacuous"
        );
        failed = true;
    } else {
        println!("live migrations in the heterogeneous run: {} — ok", aware.migrated);
    }

    // Fidelity-tier gates, on the burst pair. Capacity: shedding fidelity
    // must buy back at least TIERED_CAPACITY_FLOOR x of modeled serving
    // capacity over the all-Full run. Liveness: at least one live demotion
    // (pressure was real) and one live promotion (spare capacity bought
    // fidelity back) — a tier gate over a fleet that never retiered proves
    // nothing. Fidelity: the largest per-session final-score drift between
    // the two runs stays within the pinned tolerance.
    let capacity = if tiered.all_full.sessions_per_sec > 0.0 {
        tiered.tiered.sessions_per_sec / tiered.all_full.sessions_per_sec
    } else {
        0.0
    };
    if capacity < TIERED_CAPACITY_FLOOR {
        eprintln!(
            "REGRESSION: tiered capacity multiplier {capacity:.2}x fell below the \
             {TIERED_CAPACITY_FLOOR:.1}x floor ({:.2}/s tiered vs {:.2}/s all-Full)",
            tiered.tiered.sessions_per_sec, tiered.all_full.sessions_per_sec
        );
        failed = true;
    } else {
        println!(
            "tiered capacity: {:.2}/s vs all-Full {:.2}/s ({capacity:.2}x, floor \
             {TIERED_CAPACITY_FLOOR:.1}x) — ok",
            tiered.tiered.sessions_per_sec, tiered.all_full.sessions_per_sec
        );
    }
    if tiered.tiered.demoted == 0 || tiered.tiered.promoted == 0 {
        eprintln!(
            "REGRESSION: the tiered burst run retiered too little ({} demotions, {} promotions) \
             — the fidelity gates are vacuous",
            tiered.tiered.demoted, tiered.tiered.promoted
        );
        failed = true;
    } else {
        println!(
            "live retiering in the tiered run: {} demotions, {} promotions — ok",
            tiered.tiered.demoted, tiered.tiered.promoted
        );
    }
    if tiered.max_score_drift > SCORE_DRIFT_TOLERANCE {
        eprintln!(
            "REGRESSION: tiered final-score drift {:.2} exceeds the pinned tolerance {:.1}",
            tiered.max_score_drift, SCORE_DRIFT_TOLERANCE
        );
        failed = true;
    } else {
        println!(
            "tiered final-score drift {:.2} within tolerance {:.1} — ok",
            tiered.max_score_drift, SCORE_DRIFT_TOLERANCE
        );
    }

    // Wall-clock gates (--wallclock): the work-stealing executor must
    // reproduce the headline fleet report byte for byte at any thread count,
    // and — given cores to run on — real sessions/sec must scale with worker
    // threads. Byte identity is checked unconditionally; the scaling floor
    // only applies on 4+-core machines, because no executor can conjure
    // parallel speedup out of a single core.
    if args.wallclock {
        let reference = fleet.to_json().to_pretty();
        let mut wall_sps = Vec::new();
        for threads in [1usize, 4] {
            let config = FleetConfig {
                execution: ExecutionMode::WallClock { threads },
                ..make_config(args.shards)
            };
            let (outcome, stats) = match run_fleet_timed(&config) {
                Ok(pair) => pair,
                Err(err) => {
                    return die(&format!("wall-clock run ({threads} threads) failed: {err}"))
                }
            };
            let bytes = FleetReport::from_outcome(&outcome).to_json().to_pretty();
            if bytes != reference {
                eprintln!(
                    "REGRESSION: the wall-clock report at {threads} threads diverges from the \
                     headline fleet report — thread scheduling leaked into the deterministic \
                     output"
                );
                failed = true;
            }
            let sps = stats.sessions_per_wall_sec(outcome.completed);
            println!(
                "wall-clock {threads} thread(s): {sps:.1} sessions/s real ({:.2?} wall, {} \
                 ticks) — report byte-identical: {}",
                stats.wall,
                stats.ticks,
                if bytes == reference { "yes" } else { "NO" },
            );
            // How the race unfolded, worker by worker: tasks run, tasks taken
            // from outside the local deque, empty-handed scheduling rounds.
            // Diagnostic only — none of it is in the report bytes above.
            println!("  worker      tasks     steals  idle-spins");
            for (i, ((tasks, steals), idle)) in stats
                .worker_tasks
                .iter()
                .zip(&stats.worker_steals)
                .zip(&stats.worker_idle_spins)
                .enumerate()
            {
                println!("  {i:>6} {tasks:>10} {steals:>10} {idle:>11}");
            }
            wall_sps.push(sps);
        }
        let scaling = wall_sps[1] / wall_sps[0].max(1e-12);
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores >= 4 {
            if scaling < WALLCLOCK_SCALING_FLOOR {
                eprintln!(
                    "REGRESSION: wall-clock scaling {scaling:.2}x (1 -> 4 threads) fell below \
                     the {WALLCLOCK_SCALING_FLOOR:.1}x floor on a {cores}-core machine"
                );
                failed = true;
            } else {
                println!(
                    "wall-clock scaling 1 -> 4 threads: {scaling:.2}x (floor \
                     {WALLCLOCK_SCALING_FLOOR:.1}x) — ok"
                );
            }
        } else {
            println!(
                "wall-clock scaling 1 -> 4 threads: {scaling:.2}x measured, but only {cores} \
                 core(s) available — the {WALLCLOCK_SCALING_FLOOR:.1}x floor applies on 4+-core \
                 runners"
            );
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ExitCode {
    eprintln!("fleet_report: {msg}");
    ExitCode::FAILURE
}
