//! Runs the traced fleet serving benchmark and writes the deterministic
//! observability report `OBS_cod.json` plus a Perfetto-loadable wall-clock
//! trace `TRACE_cod.json`.
//!
//! ```text
//! cargo run --release -p cod-fleet --bin trace_report [-- --quick] [--seed N] \
//!     [--out PATH] [--trace-out PATH]
//! ```
//!
//! Gates (exit non-zero on any failure):
//!
//! 1. **Byte identity per seed** — two same-seed runs under
//!    [`ExecutionMode::Modeled`] must drain byte-identical `OBS_cod.json`
//!    bytes.
//! 2. **Byte identity across execution modes** — the same seed under
//!    `ThreadPerShard`, `WallClock { threads: 1 }` and
//!    `WallClock { threads: 4 }` must reproduce the modeled run's
//!    `OBS_cod.json` byte for byte: thread scheduling must never leak into
//!    the deterministic sink.
//! 3. **Fingerprint separation** — arming tracing must not change a single
//!    byte of `FLEET_cod.json`: the report of a traced run must equal the
//!    report of an untraced run of the same configuration.
//! 4. **Perfetto export** — the 4-thread wall-clock run must produce a
//!    non-empty Chrome trace-event file with at least one per-worker lane
//!    and at least one steal event (every initial task acquisition goes
//!    through the shared injector, so a 4-thread run that recorded no steal
//!    means the hook is broken, not that the race was unlucky).

use std::process::ExitCode;

use cod_fleet::{ExecutionMode, FleetConfig, FleetReport, ObsConfig};

const USAGE: &str = "usage: trace_report [--quick] [--seed N] [--out PATH] [--trace-out PATH]";

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    trace_out: String,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        seed: 0xC0D,
        out: "OBS_cod.json".into(),
        trace_out: "TRACE_cod.json".into(),
        help: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--seed needs an integer\n{USAGE}"))?;
            }
            "--out" => {
                args.out = argv.next().ok_or_else(|| format!("--out needs a path\n{USAGE}"))?;
            }
            "--trace-out" => {
                args.trace_out =
                    argv.next().ok_or_else(|| format!("--trace-out needs a path\n{USAGE}"))?;
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Runs `config` with the deterministic sink armed and returns the drained
/// `OBS_cod.json` bytes.
fn obs_bytes(config: &FleetConfig, label: &str) -> Result<String, String> {
    let mut traced = config.clone();
    traced.obs = ObsConfig::Deterministic;
    let (_, _, artifacts) =
        cod_fleet::run_fleet_traced(&traced).map_err(|err| format!("{label} run failed: {err}"))?;
    let det = artifacts.det.ok_or_else(|| format!("{label} run armed no deterministic sink"))?;
    Ok(det.to_report_json(traced.workload.seed).to_pretty())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    // The headline configuration: the heterogeneous serving stack with
    // priorities, preemption, migration and tiering all engaged, so the
    // deterministic sink sees every event kind the fleet can emit.
    let mut base = FleetConfig::heterogeneous_quick(args.seed);
    base.tiering = true;
    base.execution = ExecutionMode::Modeled;
    if !args.quick {
        base.workload = cod_fleet::WorkloadConfig::full(args.seed);
    }

    println!(
        "tracing {} sessions (seed {:#x}) over {} shards, {} mode",
        base.workload.sessions,
        args.seed,
        base.shards,
        if args.quick { "quick" } else { "full" },
    );

    let mut failed = false;

    // Gate 1: byte identity per seed under the modeled mode.
    let reference = match obs_bytes(&base, "modeled") {
        Ok(bytes) => bytes,
        Err(msg) => return die(&msg),
    };
    match obs_bytes(&base, "modeled rerun") {
        Ok(bytes) if bytes == reference => {
            println!("OBS_cod.json byte-identical across two same-seed runs — ok");
        }
        Ok(_) => {
            eprintln!("REGRESSION: two same-seed modeled runs drained different OBS_cod.json");
            failed = true;
        }
        Err(msg) => return die(&msg),
    }

    // Gate 2: byte identity across execution modes — the deterministic sink
    // must be blind to who stepped the shards.
    for mode in [
        ExecutionMode::ThreadPerShard,
        ExecutionMode::WallClock { threads: 1 },
        ExecutionMode::WallClock { threads: 4 },
    ] {
        let mut config = base.clone();
        config.execution = mode;
        match obs_bytes(&config, &format!("{mode:?}")) {
            Ok(bytes) if bytes == reference => {
                println!("OBS_cod.json byte-identical under {mode:?} — ok");
            }
            Ok(_) => {
                eprintln!(
                    "REGRESSION: OBS_cod.json under {mode:?} diverges from the modeled run — \
                     thread scheduling leaked into the deterministic sink"
                );
                failed = true;
            }
            Err(msg) => return die(&msg),
        }
    }

    // Gate 3: fingerprint separation — arming tracing must not perturb
    // FLEET_cod.json by a single byte.
    {
        let untraced = match cod_fleet::run_fleet(&base) {
            Ok(outcome) => FleetReport::from_outcome(&outcome).to_json().to_pretty(),
            Err(err) => return die(&format!("untraced run failed: {err}")),
        };
        let mut traced = base.clone();
        traced.obs = ObsConfig::Full;
        let fleet_bytes = match cod_fleet::run_fleet_traced(&traced) {
            Ok((outcome, _, _)) => FleetReport::from_outcome(&outcome).to_json().to_pretty(),
            Err(err) => return die(&format!("traced run failed: {err}")),
        };
        if fleet_bytes == untraced {
            println!("FLEET_cod.json untouched by arming tracing — ok");
        } else {
            eprintln!(
                "REGRESSION: arming tracing changed FLEET_cod.json — observability leaked into \
                 the fingerprinted report"
            );
            failed = true;
        }
    }

    // Gate 4: the Perfetto export of a 4-thread wall-clock run. Every
    // initial task acquisition goes through the shared injector, so at least
    // one steal event is guaranteed, not racy.
    let mut wallclock = base.clone();
    wallclock.execution = ExecutionMode::WallClock { threads: 4 };
    wallclock.obs = ObsConfig::Full;
    let (trace, det) = match cod_fleet::run_fleet_traced(&wallclock) {
        Ok((_, _, artifacts)) => (
            artifacts.wall.expect("obs: Full arms the wall sink"),
            artifacts.det.expect("obs: Full arms the deterministic sink"),
        ),
        Err(err) => return die(&format!("wall-clock traced run failed: {err}")),
    };
    let chrome = trace.to_chrome_json();
    let events = chrome.get("traceEvents").and_then(|e| e.as_arr()).map_or(0, |a| a.len());
    let steal_events: usize = (0..trace.lanes()).map(|lane| trace.count_of(lane, "steal")).sum();
    if events == 0 {
        eprintln!("REGRESSION: the wall-clock trace is empty");
        failed = true;
    } else if trace.lanes() < 2 {
        eprintln!("REGRESSION: the wall-clock trace carries no per-worker lane");
        failed = true;
    } else if steal_events == 0 {
        eprintln!(
            "REGRESSION: a 4-thread wall-clock run recorded no steal event — the executor \
             hooks are broken"
        );
        failed = true;
    } else {
        println!(
            "perfetto trace: {events} events across {} lanes, {steal_events} steal events — ok",
            trace.lanes(),
        );
    }

    // Write the artifacts: the modeled-mode OBS report (the reference bytes
    // of gates 1-2) and the wall-clock run's Chrome trace.
    if let Err(err) = std::fs::write(&args.out, &reference) {
        return die(&format!("cannot write {}: {err}", args.out));
    }
    println!("wrote {}", args.out);
    if let Err(err) = std::fs::write(&args.trace_out, chrome.to_pretty()) {
        return die(&format!("cannot write {}: {err}", args.trace_out));
    }
    println!("wrote {}", args.trace_out);
    println!(
        "deterministic sink: {} frames stepped, {} cohorts, {} memo hits / {} misses, \
         fingerprint {:#018x}",
        det.counter("frames_stepped"),
        det.counter("cohorts_stepped"),
        det.counter("memo_hits"),
        det.counter("memo_misses"),
        det.fingerprint(),
    );

    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ExitCode {
    eprintln!("trace_report: {msg}");
    ExitCode::FAILURE
}
