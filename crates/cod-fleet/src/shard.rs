//! A shard: one worker slot-pool hosting several concurrent simulator
//! sessions, with a recycling pool of retired simulators.
//!
//! Building a [`CraneSimulator`] is dominated by the Communication Backbone
//! initialization protocol (a hundred-plus broadcast rounds across eight
//! kernels). A shard therefore never throws a finished session's simulator
//! away: it files the rack under its [`SessionShape`] and the next session of
//! the same shape gets it back through
//! [`CraneSimulator::reset_for_session`], skipping initialization entirely.

use std::collections::BTreeMap;

use cod_cb::CbError;
use cod_net::Micros;
use crane_sim::{CraneSimulator, SessionReport, SimulatorConfig};

use crate::workload::SessionSpec;

/// Sizing and pacing of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Concurrent sessions the shard may host.
    pub slots: usize,
    /// Executive frames each resident session advances per fleet tick.
    pub batch_frames: usize,
    /// Retired simulators kept per session shape for recycling.
    pub pool_per_shape: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { slots: 4, batch_frames: 8, pool_per_shape: 2 }
    }
}

/// The structural part of a [`SimulatorConfig`] — everything that decides
/// whether a built rack can be recycled for another session. The session seed
/// and frame budget are per-session and excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionShape {
    operator: u8,
    gpu: u8,
    channels: usize,
    width: usize,
    height: usize,
    render_pixels: bool,
    cargo_mass_millig: u64,
    frame_period_us: u64,
}

impl SessionShape {
    /// The shape of a configuration.
    pub fn of(config: &SimulatorConfig) -> SessionShape {
        SessionShape {
            operator: config.operator as u8,
            gpu: config.gpu as u8,
            channels: config.display_channels,
            width: config.display_width,
            height: config.display_height,
            render_pixels: config.render_pixels,
            cargo_mass_millig: (config.cargo_mass_kg * 1_000.0).round() as u64,
            frame_period_us: (1_000_000.0 / config.target_fps).round() as u64,
        }
    }
}

/// A session resident on a shard.
struct Resident {
    spec: SessionSpec,
    sim: CraneSimulator,
    frames_done: usize,
    arrived_tick: u64,
    admitted_tick: u64,
}

/// A session the shard has just retired.
#[derive(Debug, Clone, PartialEq)]
pub struct Completed {
    /// The retired session's spec id.
    pub id: u64,
    /// The spec's descriptive name.
    pub name: String,
    /// Frames the session ran.
    pub frames: usize,
    /// Fleet tick the session arrived at.
    pub arrived_tick: u64,
    /// Fleet tick the session was placed at.
    pub admitted_tick: u64,
    /// The session's final report.
    pub report: SessionReport,
    /// Total modeled cost the session charged this shard.
    pub cost: Micros,
}

/// Counters one shard accumulates over a fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Total modeled busy time (the shard hosts its virtual clusters
    /// in-process, so a session frame costs its whole-cluster sequential
    /// cost).
    pub busy: Micros,
    /// Sessions retired.
    pub sessions_completed: u64,
    /// Simulators built from scratch.
    pub sims_built: u64,
    /// Sessions served by a recycled simulator.
    pub sims_recycled: u64,
    /// Largest residency observed.
    pub peak_residents: usize,
}

/// One worker of the fleet.
pub struct Shard {
    /// Shard index within the fleet.
    pub id: usize,
    config: ShardConfig,
    residents: Vec<Resident>,
    pool: BTreeMap<SessionShape, Vec<CraneSimulator>>,
    /// Accumulated counters.
    pub stats: ShardStats,
}

impl Shard {
    /// Creates an empty shard.
    pub fn new(id: usize, config: ShardConfig) -> Shard {
        Shard {
            id,
            config,
            residents: Vec::new(),
            pool: BTreeMap::new(),
            stats: ShardStats::default(),
        }
    }

    /// Number of resident sessions.
    pub fn resident_count(&self) -> usize {
        self.residents.len()
    }

    /// Free session slots.
    pub fn free_slots(&self) -> usize {
        self.config.slots - self.residents.len()
    }

    /// Modeled cost of finishing every resident session — the placement hint
    /// the fleet weighs shards by. Sessions that have not yet run a frame are
    /// estimated at the nominal whole-rack frame cost.
    pub fn backlog_cost(&self) -> Micros {
        /// Whole-cluster sequential frame cost of the standard rack before a
        /// measurement exists (three 60 ms displays plus the other modules).
        const NOMINAL_FRAME_COST: Micros = Micros(204_000);
        let mut total = Micros::ZERO;
        for r in &self.residents {
            let hint = r.sim.session_cost_hint();
            let per_frame = if hint == Micros::ZERO { NOMINAL_FRAME_COST } else { hint };
            let remaining = r.spec.frames.saturating_sub(r.frames_done) as u64;
            total += Micros(per_frame.0 * remaining);
        }
        total
    }

    /// Admits a session: recycles a pooled simulator of the same shape when
    /// one exists, otherwise builds the rack from scratch.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulator fails to build or reset.
    ///
    /// # Panics
    ///
    /// Panics if the shard has no free slot (the admission controller must
    /// not place onto a full shard).
    pub fn admit(
        &mut self,
        spec: SessionSpec,
        arrived_tick: u64,
        admitted_tick: u64,
    ) -> Result<(), CbError> {
        assert!(self.free_slots() > 0, "shard {} is full", self.id);
        let shape = SessionShape::of(&spec.config);
        let mut sim = match self.pool.get_mut(&shape).and_then(Vec::pop) {
            Some(mut sim) => {
                sim.reset_for_session(spec.config.seed)?;
                self.stats.sims_recycled += 1;
                sim
            }
            None => {
                self.stats.sims_built += 1;
                CraneSimulator::new(spec.config)?
            }
        };
        sim.set_fault_plan(spec.fault_plan.clone());
        self.residents.push(Resident { spec, sim, frames_done: 0, arrived_tick, admitted_tick });
        self.stats.peak_residents = self.stats.peak_residents.max(self.residents.len());
        Ok(())
    }

    /// Advances every resident session by up to one batch of frames, retiring
    /// the ones that finish. Returns the retirements plus the modeled busy
    /// time of this tick.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by any session's executive.
    pub fn step_batch(&mut self) -> Result<(Vec<Completed>, Micros), CbError> {
        let mut tick_busy = Micros::ZERO;
        for r in self.residents.iter_mut() {
            let frames = self.config.batch_frames.min(r.spec.frames - r.frames_done);
            for _ in 0..frames {
                let record = r.sim.step_frame()?;
                for (_, cost) in &record.costs {
                    tick_busy += *cost;
                }
            }
            r.frames_done += frames;
        }
        self.stats.busy += tick_busy;

        let mut completed = Vec::new();
        let mut i = 0;
        while i < self.residents.len() {
            if self.residents[i].frames_done >= self.residents[i].spec.frames {
                let r = self.residents.remove(i);
                completed.push(self.retire(r));
            } else {
                i += 1;
            }
        }
        Ok((completed, tick_busy))
    }

    fn retire(&mut self, r: Resident) -> Completed {
        let report = r.sim.report();
        let cost = r.sim.cluster().metrics().total_sequential_cost;
        self.stats.sessions_completed += 1;
        let shape = SessionShape::of(&r.spec.config);
        let pool = self.pool.entry(shape).or_default();
        if pool.len() < self.config.pool_per_shape {
            pool.push(r.sim);
        }
        Completed {
            id: r.spec.id,
            name: r.spec.name,
            frames: r.spec.frames,
            arrived_tick: r.arrived_tick,
            admitted_tick: r.admitted_tick,
            report,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};

    fn tiny_spec(id: u64, seed: u64, frames: usize) -> SessionSpec {
        let mut arrivals = generate(&WorkloadConfig {
            sessions: 1,
            seed,
            base_frames: frames,
            mean_interarrival_ticks: 0,
        });
        let mut spec = arrivals.remove(0).spec;
        spec.id = id;
        spec.frames = frames;
        spec.config.exam_frames = frames;
        spec
    }

    #[test]
    fn shard_runs_a_session_to_completion() {
        let mut shard = Shard::new(0, ShardConfig { slots: 2, batch_frames: 4, pool_per_shape: 1 });
        shard.admit(tiny_spec(0, 5, 10), 0, 0).unwrap();
        assert_eq!(shard.resident_count(), 1);
        assert!(shard.backlog_cost() > Micros::ZERO);
        let mut done = Vec::new();
        for _ in 0..3 {
            let (completed, busy) = shard.step_batch().unwrap();
            assert!(busy > Micros::ZERO || !done.is_empty());
            done.extend(completed);
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].report.frames_run, 10);
        assert_eq!(shard.resident_count(), 0);
        assert_eq!(shard.stats.sessions_completed, 1);
        assert_eq!(shard.stats.sims_built, 1);
    }

    #[test]
    fn same_shape_sessions_recycle_the_simulator() {
        let mut shard = Shard::new(0, ShardConfig { slots: 1, batch_frames: 8, pool_per_shape: 1 });
        let first = tiny_spec(0, 5, 8);
        let mut second = tiny_spec(1, 5, 8);
        // Same shape (same generated mix from the same seed), fresh seed.
        second.config.seed ^= 0xABCD;
        shard.admit(first, 0, 0).unwrap();
        shard.step_batch().unwrap();
        shard.admit(second, 1, 1).unwrap();
        shard.step_batch().unwrap();
        assert_eq!(shard.stats.sims_built, 1, "second session must reuse the pooled rack");
        assert_eq!(shard.stats.sims_recycled, 1);
        assert_eq!(shard.stats.sessions_completed, 2);
    }

    #[test]
    fn recycled_session_reports_match_fresh_ones() {
        let spec = tiny_spec(0, 11, 12);
        // Fresh run.
        let mut fresh = Shard::new(0, ShardConfig::default());
        fresh.admit(spec.clone(), 0, 0).unwrap();
        let mut fresh_done = Vec::new();
        while fresh.resident_count() > 0 {
            fresh_done.extend(fresh.step_batch().unwrap().0);
        }
        // A different session first, then the same spec on the recycled rack.
        let mut warm = Shard::new(0, ShardConfig::default());
        let mut warmup = spec.clone();
        warmup.id = 99;
        warmup.config.seed ^= 0x77;
        warm.admit(warmup, 0, 0).unwrap();
        while warm.resident_count() > 0 {
            warm.step_batch().unwrap();
        }
        warm.admit(spec, 1, 1).unwrap();
        let mut warm_done = Vec::new();
        while warm.resident_count() > 0 {
            warm_done.extend(warm.step_batch().unwrap().0);
        }
        assert_eq!(warm.stats.sims_recycled, 1);
        assert_eq!(
            fresh_done[0].report, warm_done[0].report,
            "a recycled rack must replay the session bit for bit"
        );
    }

    #[test]
    fn shapes_distinguish_structural_fields_only() {
        let a = tiny_spec(0, 5, 10);
        let mut b = a.clone();
        b.config.seed ^= 1;
        b.config.exam_frames = 99;
        assert_eq!(SessionShape::of(&a.config), SessionShape::of(&b.config));
        let mut c = a.clone();
        c.config.display_channels += 1;
        assert_ne!(SessionShape::of(&a.config), SessionShape::of(&c.config));
    }
}
