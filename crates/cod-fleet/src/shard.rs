//! A shard: one worker slot-pool hosting several concurrent simulator
//! sessions, with a recycling pool of retired simulators.
//!
//! Building a [`CraneSimulator`] is dominated by the Communication Backbone
//! initialization protocol (a hundred-plus broadcast rounds across eight
//! kernels). A shard therefore never throws a finished session's simulator
//! away: it files the rack under its [`SessionShape`] and the next session of
//! the same shape gets it back through
//! [`CraneSimulator::reset_for_session`], skipping initialization entirely.
//!
//! Shards are *heterogeneous*: each carries a relative CPU speed (1.0 = the
//! paper's reference desktop PC) threaded into every simulator it builds via
//! [`SimulatorConfig::cpu_speed`] → `Cluster::add_computer_with_speed`, so a
//! half-speed shard charges twice the modeled cost per frame. A resident
//! session can also be *extracted* — serialized to its spec, seed and frame
//! count — and resumed on another shard (or later on the same one) by
//! deterministic replay; that is the substrate of both preemption and live
//! migration.

use std::collections::BTreeMap;
use std::sync::Arc;

use cod_cb::CbError;
use cod_cluster::nominal_sequential_frame_cost;
use cod_net::Micros;
use cod_trace::{DetTrace, WallTrace, DRIVER_LANE};
use crane_sim::{
    step_frames_batch, step_frames_batch_traced, BatchStepStats, Coarse, CraneSimulator,
    FidelityTier, SessionReport, SimulatorConfig,
};

use crate::workload::{Priority, SessionSpec};

/// How a shard advances its residents each tick.
///
/// Both modes produce bit-identical sessions — identical telemetry digests,
/// reports and modeled costs — because the batched path shares only work that
/// is provably invariant across cohort members (see
/// [`crane_sim::step_frames_batch`]). `Batched` is the default; `Scalar` is
/// kept as the reference implementation the equivalence checks diff against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SteppingMode {
    /// One session at a time, one frame at a time — the reference hot loop.
    Scalar,
    /// Residents sharing a [`SessionShape`] advance in lockstep, frame-major,
    /// sharing per-frame scratch (e.g. memoized audio waveform columns).
    #[default]
    Batched,
}

/// Sizing and pacing of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Concurrent sessions the shard may host.
    pub slots: usize,
    /// Executive frames each resident session advances per fleet tick.
    pub batch_frames: usize,
    /// Retired simulators kept per session shape for recycling.
    pub pool_per_shape: usize,
    /// How residents are stepped each tick (never affects results).
    pub stepping: SteppingMode,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            slots: 4,
            batch_frames: 8,
            pool_per_shape: 2,
            stepping: SteppingMode::default(),
        }
    }
}

/// The structural part of a [`SimulatorConfig`] — every field that affects
/// the replay identity of a built rack, i.e. everything that decides whether
/// a pooled simulator can be recycled for another session. Only the session
/// seed and frame budget are per-session and excluded.
///
/// The CPU speed and fidelity tier are part of the key: a shard does stamp
/// its own speed onto every configuration before the pool lookup, but the key
/// must not *rely* on every caller doing that — a rack built at the wrong
/// speed would report wrong modeled costs, and a Full rack handed to a Coarse
/// session (or vice versa) would replay a different trace entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionShape {
    operator: u8,
    gpu: u8,
    tier: FidelityTier,
    channels: usize,
    width: usize,
    height: usize,
    render_pixels: bool,
    cargo_mass_millig: u64,
    frame_period_us: u64,
    cpu_speed_millis: u64,
}

impl SessionShape {
    /// The shape of a configuration.
    pub fn of(config: &SimulatorConfig) -> SessionShape {
        SessionShape {
            operator: config.operator as u8,
            gpu: config.gpu as u8,
            tier: config.tier,
            channels: config.display_channels,
            width: config.display_width,
            height: config.display_height,
            render_pixels: config.render_pixels,
            cargo_mass_millig: (config.cargo_mass_kg * 1_000.0).round() as u64,
            frame_period_us: (1_000_000.0 / config.target_fps).round() as u64,
            cpu_speed_millis: (config.cpu_speed * 1_000.0).round() as u64,
        }
    }
}

/// A session resident on a shard.
struct Resident {
    spec: SessionSpec,
    sim: CraneSimulator,
    frames_done: usize,
    arrived_tick: u64,
    admitted_tick: u64,
    preempted: u32,
    migrated: u32,
    promoted: u32,
    demoted: u32,
}

/// A resident session serialized for transport: everything needed to resume
/// it deterministically on any shard — the spec (carrying the session and
/// fault seeds) plus the number of frames already executed. The receiving
/// shard replays those frames through [`CraneSimulator::reset_for_session`] +
/// fast-forward; replay is bit-exact, so the resumed session is
/// indistinguishable from one that ran on the target shard all along.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableSession {
    /// The session's spec (seed, fault plan, frame budget, priority).
    pub spec: SessionSpec,
    /// Frames already executed before extraction.
    pub frames_done: usize,
    /// Fleet tick the session arrived at.
    pub arrived_tick: u64,
    /// Fleet tick the session was *first* placed at.
    pub admitted_tick: u64,
    /// Times the session has been preempted so far.
    pub preempted: u32,
    /// Times the session has been migrated so far.
    pub migrated: u32,
    /// Times the session has been promoted to the Full tier so far.
    pub promoted: u32,
    /// Times the session has been demoted to the Coarse tier so far.
    pub demoted: u32,
}

/// A cheap view of one resident the fleet driver uses to pick preemption
/// victims and migration candidates without touching the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentView {
    /// Index into the shard's resident list (valid until the next mutation).
    pub index: usize,
    /// The session's id.
    pub id: u64,
    /// The session's priority class.
    pub priority: Priority,
    /// The fidelity tier currently serving the session.
    pub tier: FidelityTier,
    /// Frames already executed.
    pub frames_done: usize,
    /// Frames still to run.
    pub remaining_frames: usize,
    /// Modeled cost of one frame on *this* shard (measured hint, or the
    /// speed-scaled nominal cost before any frame has run).
    pub per_frame: Micros,
}

/// A session the shard has just retired.
#[derive(Debug, Clone, PartialEq)]
pub struct Completed {
    /// The retired session's spec id.
    pub id: u64,
    /// The spec's descriptive name.
    pub name: String,
    /// Frames the session ran.
    pub frames: usize,
    /// The session's priority class.
    pub priority: Priority,
    /// Fleet tick the session arrived at.
    pub arrived_tick: u64,
    /// Fleet tick the session was first placed at.
    pub admitted_tick: u64,
    /// Times the session was preempted back to the queue.
    pub preempted: u32,
    /// Times the session was migrated between shards.
    pub migrated: u32,
    /// Times the session was promoted to the Full tier.
    pub promoted: u32,
    /// Times the session was demoted to the Coarse tier.
    pub demoted: u32,
    /// The fidelity tier the session finished on.
    pub tier: FidelityTier,
    /// The session's final report.
    pub report: SessionReport,
    /// Total modeled cost the session charged this shard.
    pub cost: Micros,
    /// FNV-1a fingerprint of the session's final telemetry digest — the
    /// physics-state witness determinism tests compare across execution
    /// modes and thread counts.
    pub telemetry: u64,
}

/// Counters one shard accumulates over a fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Total modeled busy time (the shard hosts its virtual clusters
    /// in-process, so a session frame costs its whole-cluster sequential
    /// cost).
    pub busy: Micros,
    /// Sessions retired.
    pub sessions_completed: u64,
    /// Simulators built from scratch.
    pub sims_built: u64,
    /// Sessions served by a recycled simulator.
    pub sims_recycled: u64,
    /// Residents extracted for preemption.
    pub preempted_out: u64,
    /// Residents extracted for migration to another shard.
    pub migrated_out: u64,
    /// Sessions resumed here after a migration.
    pub migrated_in: u64,
    /// Frames re-executed to fast-forward resumed sessions.
    pub replayed_frames: u64,
    /// Residents promoted to the Full tier in place.
    pub promoted: u64,
    /// Residents demoted to the Coarse tier in place.
    pub demoted: u64,
    /// Largest residency observed.
    pub peak_residents: usize,
}

/// Deterministic per-shard observability counters: a pure function of the
/// shard's configuration and workload, so they may be folded into the
/// fingerprinted `OBS_cod.json`. Wall-clock numbers never land here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct DetShardCounters {
    /// Frame-level counters from the batched stepper (frames stepped, memo
    /// hits/misses in the cohort wavebank).
    pub(crate) batch: BatchStepStats,
    /// Lockstep cohorts stepped (one per shape per tick under `Batched`).
    pub(crate) cohorts: u64,
}

/// The observability hooks of one shard, boxed so a disabled shard carries a
/// single null pointer through the hot loop.
pub(crate) struct ShardTrace {
    /// Deterministic counters, drained into `OBS_cod.json` in shard-id order.
    det: Option<DetShardCounters>,
    /// Wall-clock sink plus the trace lane this shard currently steps on
    /// (re-pinned by whichever executor worker picks the shard up).
    wall: Option<(Arc<WallTrace>, usize)>,
}

/// One worker of the fleet.
pub struct Shard {
    /// Shard index within the fleet.
    pub id: usize,
    config: ShardConfig,
    /// Relative CPU speed of this shard's machine (1.0 = reference PC).
    speed: f64,
    residents: Vec<Resident>,
    pool: BTreeMap<SessionShape, Vec<CraneSimulator>>,
    /// Accumulated counters.
    pub stats: ShardStats,
    /// Observability hooks; `None` (the default) is the untraced hot path.
    trace: Option<Box<ShardTrace>>,
    /// Test-only crash injection: a poisoned shard panics on its next
    /// [`Shard::step_batch`], exercising the executor paths that must
    /// surface a worker panic as a failed join.
    #[cfg(test)]
    pub(crate) poison_for_test: bool,
}

impl Shard {
    /// Creates an empty shard of relative CPU speed `speed`.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive.
    pub fn new(id: usize, config: ShardConfig, speed: f64) -> Shard {
        assert!(speed > 0.0, "shard speed must be positive");
        Shard {
            id,
            config,
            speed,
            residents: Vec::new(),
            pool: BTreeMap::new(),
            stats: ShardStats::default(),
            trace: None,
            #[cfg(test)]
            poison_for_test: false,
        }
    }

    /// Arms the shard's observability hooks. With `det` false and `wall`
    /// `None` this is a no-op and the shard keeps its untraced hot path.
    pub(crate) fn enable_trace(&mut self, det: bool, wall: Option<Arc<WallTrace>>) {
        if !det && wall.is_none() {
            return;
        }
        self.trace = Some(Box::new(ShardTrace {
            det: det.then(DetShardCounters::default),
            wall: wall.map(|w| (w, DRIVER_LANE)),
        }));
    }

    /// Re-pins the shard's wall-clock spans to `lane` — called by whichever
    /// executor worker picks the shard up this tick. No-op when the shard
    /// carries no wall sink.
    pub(crate) fn set_wall_lane(&mut self, lane: usize) {
        if let Some(trace) = self.trace.as_mut() {
            if let Some((_, l)) = trace.wall.as_mut() {
                *l = lane;
            }
        }
    }

    /// Folds the shard's deterministic counters into `det`. Called once per
    /// run, in shard-id order, so the aggregate is seed-stable.
    pub(crate) fn fold_det_into(&self, det: &mut DetTrace) {
        if let Some(c) = self.trace.as_ref().and_then(|t| t.det.as_ref()) {
            det.add("frames_stepped", c.batch.frames_stepped);
            det.add("cohorts_stepped", c.cohorts);
            det.add("memo_hits", c.batch.memo_hits);
            det.add("memo_misses", c.batch.memo_misses);
        }
    }

    /// The shard's relative CPU speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of resident sessions.
    pub fn resident_count(&self) -> usize {
        self.residents.len()
    }

    /// Free session slots.
    pub fn free_slots(&self) -> usize {
        self.config.slots - self.residents.len()
    }

    /// Per-session-frame cost of an unmeasured session on this shard, by
    /// tier. The Full estimate deliberately assumes the worst-case
    /// three-channel rack so placement never underestimates a session it has
    /// not seen run; the Coarse estimate is the single-channel rack spread
    /// over its decimation batch — which is what stops a Coarse resident from
    /// inflating placement bids and backlog costs at full-rack price.
    fn nominal_frame_cost_for(&self, tier: FidelityTier) -> Micros {
        let reference = match tier {
            FidelityTier::Full => nominal_sequential_frame_cost(3),
            FidelityTier::Coarse => Micros(
                nominal_sequential_frame_cost(Coarse::DISPLAY_CHANNELS).0 / Coarse::DECIMATION,
            ),
        };
        Micros((reference.0 as f64 / self.speed).round() as u64)
    }

    /// The worst-case (Full-tier) nominal frame cost, used to price an
    /// arriving session of unknown measured cost into a placement bid.
    fn nominal_frame_cost(&self) -> Micros {
        self.nominal_frame_cost_for(FidelityTier::Full)
    }

    fn per_frame_cost(&self, r: &Resident) -> Micros {
        // The backend-specific hint: a Coarse session reports its decimated
        // per-session-frame cost, not the full-rack one.
        let hint = r.sim.session_cost_hint();
        if hint == Micros::ZERO {
            self.nominal_frame_cost_for(r.spec.config.tier)
        } else {
            hint
        }
    }

    /// Modeled cost of finishing every resident session — the hint the
    /// fleet's *migration* policy balances shards by. Sessions that have not
    /// yet run a frame are estimated at the nominal whole-rack frame cost
    /// scaled to this shard's speed, so a slow shard advertises a
    /// proportionally larger backlog. Saturating arithmetic: a pathologically
    /// long session pins the hint at `u64::MAX` instead of wrapping it around
    /// to a tiny value.
    pub fn backlog_cost(&self) -> Micros {
        let mut total = Micros::ZERO;
        for r in &self.residents {
            let per_frame = self.per_frame_cost(r);
            let remaining = r.spec.frames.saturating_sub(r.frames_done) as u64;
            total = Micros(total.0.saturating_add(per_frame.0.saturating_mul(remaining)));
        }
        total
    }

    /// Modeled cost of this shard's *next* batch tick. Serving time is the
    /// sum over ticks of the busiest shard's cost, so the per-tick rate (not
    /// the total remaining backlog) is what governs the makespan: one
    /// session costs a half-speed shard four times what it costs a
    /// double-speed shard every tick.
    pub fn next_tick_cost(&self) -> Micros {
        let mut total = Micros::ZERO;
        for r in &self.residents {
            let per_frame = self.per_frame_cost(r);
            let frames =
                self.config.batch_frames.min(r.spec.frames.saturating_sub(r.frames_done)) as u64;
            total = Micros(total.0.saturating_add(per_frame.0.saturating_mul(frames)));
        }
        total
    }

    /// The hint the fleet's speed-weighted *placement* policy weighs shards
    /// by: the per-tick rate this shard would run at **if it also took the
    /// arriving session** — its current [`Shard::next_tick_cost`] plus the
    /// nominal batch cost of one more session on this machine (the same
    /// resulting-load greedy as [`cod_cluster::balance_load_weighted`]).
    /// Minimizing the current rate alone would always prefer an idle slow
    /// shard over a busy fast one, even when the fast shard could absorb the
    /// session at a quarter of the cost.
    pub fn placement_cost(&self) -> Micros {
        let marginal = self.nominal_frame_cost().0.saturating_mul(self.config.batch_frames as u64);
        Micros(self.next_tick_cost().0.saturating_add(marginal))
    }

    /// Cheap per-resident views (id, priority, progress, per-frame cost) for
    /// the fleet's preemption and migration policies.
    pub fn residents_overview(&self) -> Vec<ResidentView> {
        self.residents
            .iter()
            .enumerate()
            .map(|(index, r)| ResidentView {
                index,
                id: r.spec.id,
                priority: r.spec.priority,
                tier: r.spec.config.tier,
                frames_done: r.frames_done,
                remaining_frames: r.spec.frames.saturating_sub(r.frames_done),
                per_frame: self.per_frame_cost(r),
            })
            .collect()
    }

    /// Builds or recycles a simulator for `spec`, with this shard's CPU speed
    /// stamped into the configuration.
    fn obtain_sim(&mut self, spec: &SessionSpec) -> Result<CraneSimulator, CbError> {
        let shape = SessionShape::of(&spec.config);
        let mut sim = match self.pool.get_mut(&shape).and_then(Vec::pop) {
            Some(mut sim) => {
                sim.reset_for_session(spec.config.seed)?;
                self.stats.sims_recycled += 1;
                sim
            }
            None => {
                self.stats.sims_built += 1;
                CraneSimulator::new(spec.config)?
            }
        };
        sim.set_fault_plan(spec.fault_plan.clone());
        Ok(sim)
    }

    /// Admits a session: recycles a pooled simulator of the same shape when
    /// one exists, otherwise builds the rack from scratch.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulator fails to build or reset.
    ///
    /// # Panics
    ///
    /// Panics if the shard has no free slot (the admission controller must
    /// not place onto a full shard).
    pub fn admit(
        &mut self,
        spec: SessionSpec,
        arrived_tick: u64,
        admitted_tick: u64,
    ) -> Result<(), CbError> {
        let portable = PortableSession {
            spec,
            frames_done: 0,
            arrived_tick,
            admitted_tick,
            preempted: 0,
            migrated: 0,
            promoted: 0,
            demoted: 0,
        };
        self.resume(portable).map(|_| ())
    }

    /// Admits a [`PortableSession`], fast-forwarding it to where it left off:
    /// the simulator is reset to the session seed and the already-executed
    /// frames are replayed (replay is deterministic, so the resumed session
    /// is bit-identical to one never interrupted). Returns the modeled cost
    /// of the replay, charged to this shard's busy time.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulator fails to build, reset or replay.
    ///
    /// # Panics
    ///
    /// Panics if the shard has no free slot.
    pub fn resume(&mut self, portable: PortableSession) -> Result<Micros, CbError> {
        assert!(self.free_slots() > 0, "shard {} is full", self.id);
        let PortableSession {
            mut spec,
            frames_done,
            arrived_tick,
            admitted_tick,
            preempted,
            migrated,
            promoted,
            demoted,
        } = portable;
        // The shard's machine speed is a property of the shard, not the
        // session: stamp it before the shape lookup so pooled racks match.
        spec.config.cpu_speed = self.speed;
        let mut sim = self.obtain_sim(&spec)?;
        let mut replay_cost = Micros::ZERO;
        for _ in 0..frames_done {
            let record = sim.step_frame()?;
            for (_, cost) in &record.costs {
                replay_cost += *cost;
            }
        }
        self.stats.replayed_frames += frames_done as u64;
        self.stats.busy += replay_cost;
        self.residents.push(Resident {
            spec,
            sim,
            frames_done,
            arrived_tick,
            admitted_tick,
            preempted,
            migrated,
            promoted,
            demoted,
        });
        self.stats.peak_residents = self.stats.peak_residents.max(self.residents.len());
        Ok(replay_cost)
    }

    /// Extracts the resident at `index` as a [`PortableSession`], returning
    /// its simulator to the recycling pool. `migration` selects which
    /// counters the move charges (migrated vs preempted).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn extract(&mut self, index: usize, migration: bool) -> PortableSession {
        let mut r = self.residents.remove(index);
        if migration {
            r.migrated += 1;
            self.stats.migrated_out += 1;
        } else {
            r.preempted += 1;
            self.stats.preempted_out += 1;
        }
        let shape = SessionShape::of(&r.spec.config);
        let pool = self.pool.entry(shape).or_default();
        if pool.len() < self.config.pool_per_shape {
            pool.push(r.sim);
        }
        PortableSession {
            spec: r.spec,
            frames_done: r.frames_done,
            arrived_tick: r.arrived_tick,
            admitted_tick: r.admitted_tick,
            preempted: r.preempted,
            migrated: r.migrated,
            promoted: r.promoted,
            demoted: r.demoted,
        }
    }

    /// Moves the resident at `index` to `tier` in place, by the same
    /// deterministic replay that powers migration: the old rack goes back to
    /// the recycling pool under its old shape, a rack of the new tier is
    /// built or recycled, and the frames done so far are replayed on it from
    /// the session seed. The session's trace is therefore bit-identical to
    /// one admitted on the new tier from the start — promotion and demotion
    /// are transparent to everything but the modeled cost. Returns the
    /// replay cost, charged to this shard's busy time.
    ///
    /// # Errors
    ///
    /// Returns an error if the new tier's simulator fails to build, reset or
    /// replay.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the resident is already on `tier`.
    pub fn retier(&mut self, index: usize, tier: FidelityTier) -> Result<Micros, CbError> {
        let mut r = self.residents.remove(index);
        assert_ne!(r.spec.config.tier, tier, "retier must change the tier");
        let shape = SessionShape::of(&r.spec.config);
        let pool = self.pool.entry(shape).or_default();
        if pool.len() < self.config.pool_per_shape {
            pool.push(r.sim);
        }
        match tier {
            FidelityTier::Full => {
                r.promoted += 1;
                self.stats.promoted += 1;
            }
            FidelityTier::Coarse => {
                r.demoted += 1;
                self.stats.demoted += 1;
            }
        }
        r.spec.config.tier = tier;
        self.resume(PortableSession {
            spec: r.spec,
            frames_done: r.frames_done,
            arrived_tick: r.arrived_tick,
            admitted_tick: r.admitted_tick,
            preempted: r.preempted,
            migrated: r.migrated,
            promoted: r.promoted,
            demoted: r.demoted,
        })
    }

    /// Books a migrated-in session (the paired accounting of
    /// [`Shard::extract`] on the donor side); called by the fleet driver
    /// right before [`Shard::resume`] on the receiving shard.
    pub fn note_migrated_in(&mut self) {
        self.stats.migrated_in += 1;
    }

    /// Advances every resident session by up to one batch of frames, retiring
    /// the ones that finish. Returns the retirements plus the modeled busy
    /// time of this tick.
    ///
    /// Under [`SteppingMode::Batched`] residents sharing a [`SessionShape`]
    /// advance as one lockstep cohort per shape instead of one session at a
    /// time; modeled costs are `u64` microsecond sums, so regrouping the
    /// accumulation is exact and the tick total matches the scalar path bit
    /// for bit.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by any session's executive.
    pub fn step_batch(&mut self) -> Result<(Vec<Completed>, Micros), CbError> {
        #[cfg(test)]
        assert!(!self.poison_for_test, "shard {} was poisoned for a panic test", self.id);
        let batch_frames = self.config.batch_frames;
        let mut tick_busy = Micros::ZERO;
        match self.config.stepping {
            SteppingMode::Scalar => {
                for r in self.residents.iter_mut() {
                    // saturating: a resumed session can arrive with more
                    // frames done than its budget asks for (see the
                    // regression test) — it must retire, not underflow.
                    let frames = batch_frames.min(r.spec.frames.saturating_sub(r.frames_done));
                    for _ in 0..frames {
                        let record = r.sim.step_frame()?;
                        for (_, cost) in &record.costs {
                            tick_busy += *cost;
                        }
                    }
                    r.frames_done += frames;
                    if let Some(det) = self.trace.as_mut().and_then(|t| t.det.as_mut()) {
                        det.batch.frames_stepped += frames as u64;
                    }
                }
            }
            SteppingMode::Batched => {
                let mut cohorts: BTreeMap<SessionShape, Vec<&mut Resident>> = BTreeMap::new();
                for r in self.residents.iter_mut() {
                    cohorts.entry(SessionShape::of(&r.spec.config)).or_default().push(r);
                }
                for members in cohorts.values_mut() {
                    let cohort_start = self
                        .trace
                        .as_ref()
                        .and_then(|t| t.wall.as_ref())
                        .map(|(w, lane)| (w.now_us(), *lane));
                    let budgets: Vec<usize> = members
                        .iter()
                        .map(|r| batch_frames.min(r.spec.frames.saturating_sub(r.frames_done)))
                        .collect();
                    let mut batch: Vec<(&mut CraneSimulator, usize)> = members
                        .iter_mut()
                        .zip(&budgets)
                        .map(|(r, budget)| (&mut r.sim, *budget))
                        .collect();
                    let costs = match self.trace.as_mut().and_then(|t| t.det.as_mut()) {
                        Some(det) => {
                            det.cohorts += 1;
                            step_frames_batch_traced(&mut batch, Some(&mut det.batch))?
                        }
                        None => step_frames_batch(&mut batch)?,
                    };
                    for ((r, budget), cost) in members.iter_mut().zip(&budgets).zip(&costs) {
                        tick_busy += *cost;
                        r.frames_done += *budget;
                    }
                    if let Some((start, lane)) = cohort_start {
                        if let Some((w, _)) = self.trace.as_ref().and_then(|t| t.wall.as_ref()) {
                            w.complete(lane, format!("cohort x{}", members.len()), "cohort", start);
                        }
                    }
                }
            }
        }
        self.stats.busy += tick_busy;

        // Single order-preserving partition pass: survivors keep their
        // residency order, retirements are reported in it.
        let mut completed = Vec::new();
        let residents = std::mem::take(&mut self.residents);
        for r in residents {
            if r.frames_done >= r.spec.frames {
                completed.push(self.retire(r));
            } else {
                self.residents.push(r);
            }
        }
        Ok((completed, tick_busy))
    }

    fn retire(&mut self, r: Resident) -> Completed {
        let report = r.sim.report();
        let cost = r.sim.cluster().metrics().total_sequential_cost;
        let telemetry = r.sim.telemetry_digest().fingerprint();
        self.stats.sessions_completed += 1;
        let shape = SessionShape::of(&r.spec.config);
        let pool = self.pool.entry(shape).or_default();
        if pool.len() < self.config.pool_per_shape {
            pool.push(r.sim);
        }
        Completed {
            id: r.spec.id,
            name: r.spec.name,
            frames: r.spec.frames,
            priority: r.spec.priority,
            arrived_tick: r.arrived_tick,
            admitted_tick: r.admitted_tick,
            preempted: r.preempted,
            migrated: r.migrated,
            promoted: r.promoted,
            demoted: r.demoted,
            tier: r.spec.config.tier,
            report,
            cost,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};

    fn tiny_spec(id: u64, seed: u64, frames: usize) -> SessionSpec {
        let mut arrivals = generate(&WorkloadConfig {
            sessions: 1,
            seed,
            base_frames: frames,
            mean_interarrival_ticks: 0,
        });
        let mut spec = arrivals.remove(0).spec;
        spec.id = id;
        spec.frames = frames;
        spec.config.exam_frames = frames;
        spec
    }

    #[test]
    fn shard_runs_a_session_to_completion() {
        let mut shard = Shard::new(
            0,
            ShardConfig { slots: 2, batch_frames: 4, pool_per_shape: 1, ..ShardConfig::default() },
            1.0,
        );
        shard.admit(tiny_spec(0, 5, 10), 0, 0).unwrap();
        assert_eq!(shard.resident_count(), 1);
        assert!(shard.backlog_cost() > Micros::ZERO);
        let mut done = Vec::new();
        for _ in 0..3 {
            let (completed, busy) = shard.step_batch().unwrap();
            assert!(busy > Micros::ZERO || !done.is_empty());
            done.extend(completed);
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].report.frames_run, 10);
        assert_eq!(shard.resident_count(), 0);
        assert_eq!(shard.stats.sessions_completed, 1);
        assert_eq!(shard.stats.sims_built, 1);
    }

    #[test]
    fn disabled_trace_records_nothing_and_allocates_nothing_on_the_hot_loop() {
        // The Disabled path is a null pointer through the whole hot loop: a
        // fresh shard carries no trace, arming it with both sinks off is a
        // no-op, and the stepping results are bit-identical to a fully traced
        // shard's — the hooks observe the loop, they never steer it.
        let config =
            ShardConfig { slots: 2, batch_frames: 4, pool_per_shape: 1, ..ShardConfig::default() };
        let mut plain = Shard::new(0, config, 1.0);
        assert!(plain.trace.is_none(), "a fresh shard allocates no trace");
        plain.enable_trace(false, None);
        assert!(plain.trace.is_none(), "disabled obs must not allocate a trace");
        plain.admit(tiny_spec(0, 5, 8), 0, 0).unwrap();

        let mut traced = Shard::new(0, config, 1.0);
        traced.enable_trace(true, Some(Arc::new(WallTrace::new(0))));
        traced.admit(tiny_spec(0, 5, 8), 0, 0).unwrap();

        for _ in 0..2 {
            let plain_result = plain.step_batch().unwrap();
            let traced_result = traced.step_batch().unwrap();
            assert_eq!(plain_result, traced_result, "tracing must never steer the hot loop");
        }
        assert!(plain.trace.is_none(), "the hot loop must not arm tracing by itself");
        let mut det = DetTrace::new();
        plain.fold_det_into(&mut det);
        assert_eq!(det.fingerprint(), DetTrace::new().fingerprint(), "nothing was recorded");
        // The traced twin did record: same results, plus the counters.
        let counters = traced.trace.as_ref().and_then(|t| t.det.as_ref()).unwrap();
        assert!(counters.batch.frames_stepped > 0);
        assert!(counters.cohorts > 0);
    }

    #[test]
    fn same_shape_sessions_recycle_the_simulator() {
        let mut shard = Shard::new(
            0,
            ShardConfig { slots: 1, batch_frames: 8, pool_per_shape: 1, ..ShardConfig::default() },
            1.0,
        );
        let first = tiny_spec(0, 5, 8);
        let mut second = tiny_spec(1, 5, 8);
        // Same shape (same generated mix from the same seed), fresh seed.
        second.config.seed ^= 0xABCD;
        shard.admit(first, 0, 0).unwrap();
        shard.step_batch().unwrap();
        shard.admit(second, 1, 1).unwrap();
        shard.step_batch().unwrap();
        assert_eq!(shard.stats.sims_built, 1, "second session must reuse the pooled rack");
        assert_eq!(shard.stats.sims_recycled, 1);
        assert_eq!(shard.stats.sessions_completed, 2);
    }

    #[test]
    fn recycled_session_reports_match_fresh_ones() {
        let spec = tiny_spec(0, 11, 12);
        // Fresh run.
        let mut fresh = Shard::new(0, ShardConfig::default(), 1.0);
        fresh.admit(spec.clone(), 0, 0).unwrap();
        let mut fresh_done = Vec::new();
        while fresh.resident_count() > 0 {
            fresh_done.extend(fresh.step_batch().unwrap().0);
        }
        // A different session first, then the same spec on the recycled rack.
        let mut warm = Shard::new(0, ShardConfig::default(), 1.0);
        let mut warmup = spec.clone();
        warmup.id = 99;
        warmup.config.seed ^= 0x77;
        warm.admit(warmup, 0, 0).unwrap();
        while warm.resident_count() > 0 {
            warm.step_batch().unwrap();
        }
        warm.admit(spec, 1, 1).unwrap();
        let mut warm_done = Vec::new();
        while warm.resident_count() > 0 {
            warm_done.extend(warm.step_batch().unwrap().0);
        }
        assert_eq!(warm.stats.sims_recycled, 1);
        assert_eq!(
            fresh_done[0].report, warm_done[0].report,
            "a recycled rack must replay the session bit for bit"
        );
    }

    #[test]
    fn shapes_distinguish_every_replay_identity_field() {
        let a = tiny_spec(0, 5, 10);
        // Per-session fields (seed, frame budget) do not change the shape...
        let mut b = a.clone();
        b.config.seed ^= 1;
        b.config.exam_frames = 99;
        assert_eq!(SessionShape::of(&a.config), SessionShape::of(&b.config));
        // ...but every field that affects the built rack or its replay does.
        let mut c = a.clone();
        c.config.display_channels += 1;
        assert_ne!(SessionShape::of(&a.config), SessionShape::of(&c.config));
        // Regression: cpu_speed was once excluded, so a rack built at one
        // speed could be recycled at another and misreport modeled cost.
        let mut d = a.clone();
        d.config.cpu_speed = 2.0;
        assert_ne!(SessionShape::of(&a.config), SessionShape::of(&d.config));
        // The fidelity tier selects a different backend entirely.
        let mut e = a.clone();
        e.config.tier = FidelityTier::Coarse;
        assert_ne!(SessionShape::of(&a.config), SessionShape::of(&e.config));
    }

    #[test]
    fn pool_never_hands_a_rack_across_tiers() {
        let mut shard = Shard::new(
            0,
            ShardConfig { slots: 1, batch_frames: 8, pool_per_shape: 2, ..ShardConfig::default() },
            1.0,
        );
        let full = tiny_spec(0, 5, 8);
        let mut coarse = tiny_spec(1, 5, 8);
        coarse.config.tier = FidelityTier::Coarse;
        shard.admit(full, 0, 0).unwrap();
        shard.step_batch().unwrap();
        shard.admit(coarse, 1, 1).unwrap();
        shard.step_batch().unwrap();
        assert_eq!(
            shard.stats.sims_built, 2,
            "a pooled Full rack must never serve a Coarse session"
        );
        assert_eq!(shard.stats.sims_recycled, 0);
    }

    #[test]
    fn coarse_residents_bid_and_charge_an_order_of_magnitude_less() {
        let spec = tiny_spec(0, 5, 32);
        let mut full_shard = Shard::new(0, ShardConfig::default(), 1.0);
        let mut coarse_shard = Shard::new(1, ShardConfig::default(), 1.0);
        let mut coarse_spec = spec.clone();
        coarse_spec.config.tier = FidelityTier::Coarse;
        full_shard.admit(spec, 0, 0).unwrap();
        coarse_shard.admit(coarse_spec, 0, 0).unwrap();
        // Before any frame runs, the nominal per-tier estimate already keeps
        // Coarse bids an order of magnitude below Full ones...
        assert!(full_shard.backlog_cost().0 >= 10 * coarse_shard.backlog_cost().0);
        // ...and served to completion the measured gap stays severalfold. (It
        // narrows from the nominal 19x because the one expensive first frame
        // — scene loading — amortizes over 8x fewer real frames on Coarse.)
        while full_shard.resident_count() > 0 {
            full_shard.step_batch().unwrap();
        }
        while coarse_shard.resident_count() > 0 {
            coarse_shard.step_batch().unwrap();
        }
        assert!(
            coarse_shard.stats.busy.0 * 5 <= full_shard.stats.busy.0,
            "coarse served the session at {} busy vs full {}",
            coarse_shard.stats.busy.0,
            full_shard.stats.busy.0
        );
    }

    #[test]
    fn retier_round_trip_replays_the_full_trace_bit_exactly() {
        let spec = tiny_spec(0, 13, 24);
        // Uninterrupted Full baseline.
        let mut baseline = Shard::new(0, ShardConfig::default(), 1.0);
        baseline.admit(spec.clone(), 0, 0).unwrap();
        let mut base_done = Vec::new();
        while baseline.resident_count() > 0 {
            base_done.extend(baseline.step_batch().unwrap().0);
        }
        // Full → Coarse → Full around the middle batches.
        let mut shard = Shard::new(1, ShardConfig::default(), 1.0);
        shard.admit(spec, 0, 0).unwrap();
        shard.step_batch().unwrap();
        shard.retier(0, FidelityTier::Coarse).unwrap();
        assert_eq!(shard.residents_overview()[0].tier, FidelityTier::Coarse);
        shard.step_batch().unwrap();
        let replay = shard.retier(0, FidelityTier::Full).unwrap();
        assert!(replay > Micros::ZERO, "promotion must charge the replay");
        let mut done = Vec::new();
        while shard.resident_count() > 0 {
            done.extend(shard.step_batch().unwrap().0);
        }
        assert_eq!(shard.stats.promoted, 1);
        assert_eq!(shard.stats.demoted, 1);
        assert_eq!(done[0].promoted, 1);
        assert_eq!(done[0].demoted, 1);
        assert_eq!(done[0].tier, FidelityTier::Full);
        assert_eq!(
            base_done[0].report, done[0].report,
            "a promoted session must be bit-identical to one never demoted"
        );
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Whatever the schedule, a Full → Coarse → Full session replays the
        /// uninterrupted full-fidelity run bit for bit — score, trace and
        /// ledger — and a Coarse simulator stepped in two arbitrary chunks
        /// keeps the decimation phase of a straight run (same telemetry
        /// digest), so retier replays can cut a session anywhere.
        #[test]
        fn prop_retier_round_trip_is_bit_exact(
            seed in 0u64..(1 << 48),
            batches_full in 1usize..3,
            batches_coarse in 1usize..3,
            split in 1usize..39,
        ) {
            let frames = 40;
            let spec = tiny_spec(0, seed, frames);
            // Uninterrupted Full baseline.
            let mut baseline = Shard::new(0, ShardConfig::default(), 1.0);
            baseline.admit(spec.clone(), 0, 0).unwrap();
            let mut base_done = Vec::new();
            while baseline.resident_count() > 0 {
                base_done.extend(baseline.step_batch().unwrap().0);
            }
            // Full → Coarse → Full at the proptest-chosen cut points.
            let mut shard = Shard::new(1, ShardConfig::default(), 1.0);
            shard.admit(spec.clone(), 0, 0).unwrap();
            for _ in 0..batches_full {
                shard.step_batch().unwrap();
            }
            shard.retier(0, FidelityTier::Coarse).unwrap();
            for _ in 0..batches_coarse {
                shard.step_batch().unwrap();
            }
            shard.retier(0, FidelityTier::Full).unwrap();
            let mut done = Vec::new();
            while shard.resident_count() > 0 {
                done.extend(shard.step_batch().unwrap().0);
            }
            prop_assert_eq!(done.len(), 1);
            prop_assert_eq!((done[0].promoted, done[0].demoted), (1, 1));
            prop_assert_eq!(&base_done[0].report, &done[0].report);
            // The Coarse decimation phase survives an arbitrary split — the
            // bookkeeping a retier replay relies on when it re-runs a session
            // whose frame count is not a multiple of the decimation factor.
            let mut coarse_config = spec.config.clone();
            coarse_config.tier = FidelityTier::Coarse;
            let mut straight = CraneSimulator::new(coarse_config.clone()).unwrap();
            straight.run_frames(frames).unwrap();
            let mut chunked = CraneSimulator::new(coarse_config).unwrap();
            chunked.run_frames(split).unwrap();
            chunked.run_frames(frames - split).unwrap();
            prop_assert_eq!(straight.telemetry_digest(), chunked.telemetry_digest());
            prop_assert_eq!(straight.report(), chunked.report());
        }
    }

    #[test]
    fn overshot_resident_retires_instead_of_underflowing() {
        // Regression: the scalar hot loop computed `spec.frames - frames_done`
        // unguarded, so a resumed session whose frames_done exceeded its
        // budget (a shrunk spec, or an over-replayed portable) panicked the
        // shard instead of retiring the session.
        for stepping in [SteppingMode::Scalar, SteppingMode::Batched] {
            let mut shard = Shard::new(0, ShardConfig { stepping, ..ShardConfig::default() }, 1.0);
            let spec = tiny_spec(0, 5, 4);
            let portable = PortableSession {
                spec,
                frames_done: 6, // more than the 4-frame budget
                arrived_tick: 0,
                admitted_tick: 0,
                preempted: 0,
                migrated: 0,
                promoted: 0,
                demoted: 0,
            };
            shard.resume(portable).unwrap();
            let (completed, _) = shard.step_batch().unwrap();
            assert_eq!(completed.len(), 1, "overshot resident must retire ({stepping:?})");
            assert_eq!(shard.resident_count(), 0);
        }
    }

    #[test]
    fn retirements_and_survivors_keep_residency_order() {
        // Guards the single-pass partition sweep: multiple sessions retiring
        // on the same tick come out in residency order, and the survivors
        // stay in theirs.
        let mut shard =
            Shard::new(0, ShardConfig { slots: 5, batch_frames: 8, ..ShardConfig::default() }, 1.0);
        // ids 0..5 with frame budgets that finish 0, 2 and 4 on the first tick.
        for (id, frames) in [(0u64, 4usize), (1, 20), (2, 8), (3, 20), (4, 6)] {
            shard.admit(tiny_spec(id, 5 + id, frames), 0, 0).unwrap();
        }
        let (completed, _) = shard.step_batch().unwrap();
        let retired: Vec<u64> = completed.iter().map(|c| c.id).collect();
        assert_eq!(retired, vec![0, 2, 4], "retirements must keep residency order");
        let survivors: Vec<u64> = shard.residents_overview().iter().map(|v| v.id).collect();
        assert_eq!(survivors, vec![1, 3], "survivors must keep residency order");
    }

    #[test]
    fn batched_stepping_matches_scalar_bit_for_bit() {
        // A mixed cohort — same-shape pairs plus a Coarse odd one out — served
        // by both stepping modes must retire identical sessions: same reports,
        // same telemetry fingerprints, same modeled busy time.
        let run = |stepping: SteppingMode| {
            let mut shard = Shard::new(
                0,
                ShardConfig { slots: 6, batch_frames: 8, pool_per_shape: 2, stepping },
                1.0,
            );
            for id in 0..4u64 {
                let mut spec = tiny_spec(id, 7, 12);
                spec.config.seed ^= id; // same shape, divergent sessions
                shard.admit(spec, 0, 0).unwrap();
            }
            let mut coarse = tiny_spec(4, 7, 12);
            coarse.config.tier = FidelityTier::Coarse;
            shard.admit(coarse, 0, 0).unwrap();
            let mut done = Vec::new();
            while shard.resident_count() > 0 {
                done.extend(shard.step_batch().unwrap().0);
            }
            (done, shard.stats.busy)
        };
        let (scalar_done, scalar_busy) = run(SteppingMode::Scalar);
        let (batched_done, batched_busy) = run(SteppingMode::Batched);
        assert_eq!(scalar_busy, batched_busy, "modeled busy time must not change");
        assert_eq!(scalar_done.len(), batched_done.len());
        for (a, b) in scalar_done.iter().zip(batched_done.iter()) {
            assert_eq!(a, b, "session {} diverged between stepping modes", a.id);
        }
    }

    #[test]
    fn backlog_cost_saturates_instead_of_wrapping() {
        // Regression: `Micros(per_frame.0 * remaining)` wrapped for a long
        // session spec, turning an overloaded shard into the *most*
        // attractive placement target.
        let mut shard = Shard::new(0, ShardConfig::default(), 1.0);
        let mut spec = tiny_spec(0, 5, 4);
        spec.frames = usize::MAX / 2;
        shard.admit(spec, 0, 0).unwrap();
        assert_eq!(
            shard.backlog_cost(),
            Micros(u64::MAX),
            "a huge frame budget must pin the hint at the ceiling, not wrap"
        );
    }

    #[test]
    fn slow_shards_advertise_proportionally_larger_backlogs() {
        let spec = tiny_spec(0, 5, 10);
        let mut reference = Shard::new(0, ShardConfig::default(), 1.0);
        let mut slow = Shard::new(1, ShardConfig::default(), 0.5);
        reference.admit(spec.clone(), 0, 0).unwrap();
        slow.admit(spec, 0, 0).unwrap();
        // Before any frame runs the nominal estimate is speed-scaled...
        assert_eq!(slow.backlog_cost().0, reference.backlog_cost().0 * 2);
        // ...and after a batch the measured hints keep the same relation.
        reference.step_batch().unwrap();
        slow.step_batch().unwrap();
        assert!(slow.backlog_cost() > reference.backlog_cost());
    }

    #[test]
    fn extracted_session_resumes_bit_exactly_on_another_shard() {
        let spec = tiny_spec(0, 13, 16);
        // Uninterrupted baseline.
        let mut baseline = Shard::new(0, ShardConfig::default(), 1.0);
        baseline.admit(spec.clone(), 0, 0).unwrap();
        let mut base_done = Vec::new();
        while baseline.resident_count() > 0 {
            base_done.extend(baseline.step_batch().unwrap().0);
        }
        // Same session, interrupted after one batch and migrated.
        let mut donor = Shard::new(1, ShardConfig::default(), 1.0);
        let mut receiver = Shard::new(2, ShardConfig::default(), 1.0);
        donor.admit(spec, 0, 0).unwrap();
        donor.step_batch().unwrap();
        let portable = donor.extract(0, true);
        assert_eq!(portable.frames_done, 8);
        assert_eq!(portable.migrated, 1);
        receiver.note_migrated_in();
        let replay = receiver.resume(portable).unwrap();
        assert!(replay > Micros::ZERO, "fast-forward must charge modeled time");
        let mut moved_done = Vec::new();
        while receiver.resident_count() > 0 {
            moved_done.extend(receiver.step_batch().unwrap().0);
        }
        assert_eq!(donor.stats.migrated_out, 1);
        assert_eq!(receiver.stats.migrated_in, 1);
        assert_eq!(receiver.stats.replayed_frames, 8);
        assert_eq!(
            base_done[0].report, moved_done[0].report,
            "a migrated session must replay the original bit for bit"
        );
        assert_eq!(moved_done[0].migrated, 1);
    }

    #[test]
    fn resume_on_a_different_speed_preserves_physics() {
        let spec = tiny_spec(0, 17, 16);
        let mut baseline = Shard::new(0, ShardConfig::default(), 1.0);
        baseline.admit(spec.clone(), 0, 0).unwrap();
        let mut base_done = Vec::new();
        while baseline.resident_count() > 0 {
            base_done.extend(baseline.step_batch().unwrap().0);
        }
        let mut donor = Shard::new(1, ShardConfig::default(), 0.5);
        let mut fast = Shard::new(2, ShardConfig::default(), 2.0);
        donor.admit(spec, 0, 0).unwrap();
        donor.step_batch().unwrap();
        let portable = donor.extract(0, true);
        fast.resume(portable).unwrap();
        let mut moved_done = Vec::new();
        while fast.resident_count() > 0 {
            moved_done.extend(fast.step_batch().unwrap().0);
        }
        // Scores, pass/fail and frame counts are speed-independent; only the
        // modeled cost changes with the machine.
        assert_eq!(base_done[0].report.score, moved_done[0].report.score);
        assert_eq!(base_done[0].report.passed, moved_done[0].report.passed);
        assert_eq!(base_done[0].report.frames_run, moved_done[0].report.frames_run);
        assert!(moved_done[0].cost < base_done[0].cost);
    }
}
