//! Execution metrics recorded by the cluster executive.

use cod_net::Micros;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-computer accounting for one executed frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputerFrameRecord {
    /// Sum of the modeled step costs of the LPs resident on the computer,
    /// scaled by the computer's CPU speed factor.
    pub frame_cost: Micros,
}

/// Metrics accumulated over a cluster run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Number of frames executed.
    pub frames_run: u64,
    /// Total simulated time elapsed.
    pub simulated_time: Micros,
    /// Per-computer total modeled CPU cost (keyed by computer name).
    pub computer_cost: BTreeMap<String, Micros>,
    /// Largest single-frame cost observed on any computer (the frame-rate
    /// limiter of the pipelined cluster).
    pub max_frame_cost: Micros,
    /// Largest whole-cluster frame cost (the frame-rate limiter of a
    /// single-computer, sequential execution of the same modules).
    pub max_sequential_frame_cost: Micros,
    /// Sum of whole-cluster frame costs over every executed frame — what a
    /// single machine hosting the entire virtual cluster in-process has spent.
    pub total_sequential_cost: Micros,
}

impl ClusterMetrics {
    /// Records one frame's per-computer costs.
    pub fn record_frame(&mut self, dt: Micros, costs: &[(String, Micros)]) {
        self.frames_run += 1;
        self.simulated_time += dt;
        let mut sequential = Micros::ZERO;
        for (name, cost) in costs {
            *self.computer_cost.entry(name.clone()).or_default() += *cost;
            if *cost > self.max_frame_cost {
                self.max_frame_cost = *cost;
            }
            sequential += *cost;
        }
        if sequential > self.max_sequential_frame_cost {
            self.max_sequential_frame_cost = sequential;
        }
        self.total_sequential_cost += sequential;
    }

    /// Mean whole-cluster cost of one frame — the per-frame cost hint a
    /// serving layer needs to predict how expensive keeping this session
    /// resident is on a shard that hosts the virtual cluster in-process.
    /// Zero before any frame has run.
    pub fn mean_sequential_frame_cost(&self) -> Micros {
        if self.frames_run == 0 {
            Micros::ZERO
        } else {
            Micros(self.total_sequential_cost.0 / self.frames_run)
        }
    }

    /// The frame rate the pipelined cluster can sustain given the observed
    /// worst per-computer frame cost, capped by the requested frame period.
    pub fn achievable_fps(&self, frame_period: Micros) -> f64 {
        let limiter = self.max_frame_cost.max(frame_period);
        if limiter == Micros::ZERO {
            0.0
        } else {
            1.0 / limiter.as_secs_f64()
        }
    }

    /// The frame rate a single computer running every module sequentially
    /// could sustain (the "mainframe-replacement" baseline of experiment E6).
    pub fn sequential_fps(&self, frame_period: Micros) -> f64 {
        let limiter = self.max_sequential_frame_cost.max(frame_period);
        if limiter == Micros::ZERO {
            0.0
        } else {
            1.0 / limiter.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_records_accumulate() {
        let mut m = ClusterMetrics::default();
        m.record_frame(
            Micros::from_millis(16),
            &[("a".into(), Micros::from_millis(10)), ("b".into(), Micros::from_millis(30))],
        );
        m.record_frame(
            Micros::from_millis(16),
            &[("a".into(), Micros::from_millis(20)), ("b".into(), Micros::from_millis(5))],
        );
        assert_eq!(m.frames_run, 2);
        assert_eq!(m.computer_cost["a"], Micros::from_millis(30));
        assert_eq!(m.max_frame_cost, Micros::from_millis(30));
        assert_eq!(m.max_sequential_frame_cost, Micros::from_millis(40));
    }

    #[test]
    fn fps_derivations() {
        let mut m = ClusterMetrics::default();
        m.record_frame(Micros::from_millis(10), &[("a".into(), Micros::from_millis(50))]);
        // Pipelined: limited by the 50 ms computer => 20 fps.
        assert!((m.achievable_fps(Micros::from_millis(10)) - 20.0).abs() < 1e-9);
        // A faster frame period cannot beat the cost limiter.
        assert!((m.achievable_fps(Micros::from_millis(1)) - 20.0).abs() < 1e-9);
        // When costs are negligible the frame period is the limiter.
        let mut cheap = ClusterMetrics::default();
        cheap.record_frame(Micros::from_millis(20), &[("a".into(), Micros::from_millis(1))]);
        assert!((cheap.achievable_fps(Micros::from_millis(20)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_have_zero_fps() {
        let m = ClusterMetrics::default();
        assert_eq!(m.achievable_fps(Micros::ZERO), 0.0);
        assert_eq!(m.sequential_fps(Micros::ZERO), 0.0);
    }
}
