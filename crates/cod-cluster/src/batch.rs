//! Scratch state shared across a lockstep-stepped cohort of clusters.
//!
//! Batched stepping advances several same-shape sessions frame-major: frame
//! `k` of every session runs before frame `k+1` of any of them. Work that is
//! identical across the cohort at a given frame (memoized waveform columns,
//! hoisted per-frame tables) lives in a [`BatchScratch`] owned by the driver
//! and threaded down through [`crate::Cluster::run_frame_batched`] to every
//! [`crate::LogicalProcess::step_batched`]. Modules claim a typed slot by
//! name and decide themselves what to share; a module that ignores the
//! scratch falls back to its scalar `step`, so batched stepping is always
//! bit-identical to scalar stepping by construction.

use std::any::Any;
use std::collections::BTreeMap;

/// Type-erased, named scratch slots plus a frame epoch, shared by every
/// session of one batch-stepped cohort.
#[derive(Default)]
pub struct BatchScratch {
    slots: BTreeMap<&'static str, Box<dyn Any + Send>>,
    frame_epoch: u64,
}

impl std::fmt::Debug for BatchScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScratch")
            .field("slots", &self.slots.keys().collect::<Vec<_>>())
            .field("frame_epoch", &self.frame_epoch)
            .finish()
    }
}

impl BatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// Marks the start of the next lockstep frame. Slots survive (so memo
    /// state can be reused or selectively invalidated); the epoch tells a
    /// module whether its slot's contents are from the current frame.
    pub fn begin_frame(&mut self) {
        self.frame_epoch += 1;
    }

    /// The current frame epoch: incremented by every [`BatchScratch::begin_frame`],
    /// `0` before the first frame.
    pub fn frame_epoch(&self) -> u64 {
        self.frame_epoch
    }

    /// The typed slot registered under `key`, created with `T::default()` on
    /// first access.
    ///
    /// # Panics
    ///
    /// Panics if `key` was previously claimed at a different type.
    pub fn slot<T: Any + Send + Default>(&mut self, key: &'static str) -> &mut T {
        self.slots
            .entry(key)
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("scratch slot '{key}' claimed at two different types"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_persist_across_frames_and_epoch_advances() {
        let mut scratch = BatchScratch::new();
        assert_eq!(scratch.frame_epoch(), 0);
        *scratch.slot::<u64>("counter") += 7;
        scratch.begin_frame();
        assert_eq!(scratch.frame_epoch(), 1);
        assert_eq!(*scratch.slot::<u64>("counter"), 7, "slots survive frames");
    }

    #[test]
    fn distinct_keys_get_distinct_slots() {
        let mut scratch = BatchScratch::new();
        *scratch.slot::<u64>("a") = 1;
        *scratch.slot::<Vec<f64>>("b") = vec![2.0];
        assert_eq!(*scratch.slot::<u64>("a"), 1);
        assert_eq!(scratch.slot::<Vec<f64>>("b").len(), 1);
    }

    #[test]
    #[should_panic]
    fn type_confusion_on_one_key_panics() {
        let mut scratch = BatchScratch::new();
        *scratch.slot::<u64>("k") = 1;
        let _ = scratch.slot::<f64>("k");
    }
}
