//! Analytic model of pipelined execution on the COD.
//!
//! The paper's motivation (§1, §5) is that "by carefully exploring the
//! parallelism among the tasks of a virtual reality system, we can easily
//! interconnect several computers by networking and employing pipeline
//! techniques" to replace a multiprocessor mainframe. This module captures the
//! throughput/latency arithmetic of that pipeline so the cluster-speedup
//! experiment (E6) can compare the measured cluster against the ideal.

use cod_net::Micros;
use serde::{Deserialize, Serialize};

use crate::placement::{balance_load, LpLoad};

/// Per-frame cost of one pipeline stage (one simulator module).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCost {
    /// Stage name.
    pub name: String,
    /// CPU cost per frame on the reference desktop PC.
    pub cost: Micros,
}

impl StageCost {
    /// Convenience constructor.
    pub fn new(name: &str, cost: Micros) -> StageCost {
        StageCost { name: name.to_owned(), cost }
    }
}

/// Throughput/latency model of a module pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineModel {
    stages: Vec<StageCost>,
    /// One-way LAN latency added between stages that live on different computers.
    hop_latency: Micros,
}

impl PipelineModel {
    /// Creates a model from per-stage costs and the inter-computer hop latency.
    pub fn new(stages: Vec<StageCost>, hop_latency: Micros) -> PipelineModel {
        PipelineModel { stages, hop_latency }
    }

    /// The stages of the model.
    pub fn stages(&self) -> &[StageCost] {
        &self.stages
    }

    /// Frame period when a single computer executes every stage sequentially
    /// (the "one desktop PC instead of a mainframe" baseline).
    pub fn sequential_period(&self) -> Micros {
        Micros(self.stages.iter().map(|s| s.cost.0).sum())
    }

    /// Frame period when every stage runs on its own computer: throughput is
    /// limited by the slowest stage.
    pub fn fully_pipelined_period(&self) -> Micros {
        self.stages.iter().map(|s| s.cost).max().unwrap_or(Micros::ZERO)
    }

    /// End-to-end latency of one frame through the fully distributed pipeline
    /// (all stage costs plus one LAN hop between consecutive stages).
    pub fn pipeline_latency(&self) -> Micros {
        let hops = self.stages.len().saturating_sub(1) as u64;
        Micros(self.stages.iter().map(|s| s.cost.0).sum::<u64>() + hops * self.hop_latency.0)
    }

    /// Frame period when the stages are packed onto `computers` machines with
    /// the load balancer; equals the resulting makespan.
    ///
    /// # Panics
    ///
    /// Panics if `computers` is zero.
    pub fn period_with_computers(&self, computers: usize) -> Micros {
        let loads: Vec<LpLoad> = self.stages.iter().map(|s| LpLoad::new(&s.name, s.cost)).collect();
        balance_load(&loads, computers).makespan
    }

    /// Throughput speedup of the fully pipelined cluster over the sequential baseline.
    pub fn speedup(&self) -> f64 {
        let seq = self.sequential_period();
        let pipe = self.fully_pipelined_period();
        if pipe == Micros::ZERO {
            1.0
        } else {
            seq.as_secs_f64() / pipe.as_secs_f64()
        }
    }

    /// Frame rate (frames per second) for a given frame period.
    pub fn fps(period: Micros) -> f64 {
        if period == Micros::ZERO {
            f64::INFINITY
        } else {
            1.0 / period.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crane_pipeline() -> PipelineModel {
        PipelineModel::new(
            vec![
                StageCost::new("dashboard", Micros::from_millis(2)),
                StageCost::new("dynamics", Micros::from_millis(18)),
                StageCost::new("scenario", Micros::from_millis(4)),
                StageCost::new("visual", Micros::from_millis(45)),
                StageCost::new("motion", Micros::from_millis(6)),
                StageCost::new("audio", Micros::from_millis(3)),
            ],
            Micros(200),
        )
    }

    #[test]
    fn sequential_period_is_the_sum() {
        let m = crane_pipeline();
        assert_eq!(m.sequential_period(), Micros::from_millis(78));
    }

    #[test]
    fn pipelined_period_is_the_max() {
        let m = crane_pipeline();
        assert_eq!(m.fully_pipelined_period(), Micros::from_millis(45));
        assert!((m.speedup() - 78.0 / 45.0).abs() < 1e-9);
    }

    #[test]
    fn latency_includes_hops() {
        let m = crane_pipeline();
        assert_eq!(m.pipeline_latency(), Micros(78_000 + 5 * 200));
    }

    #[test]
    fn packing_interpolates_between_extremes() {
        let m = crane_pipeline();
        assert_eq!(m.period_with_computers(1), m.sequential_period());
        let eight = m.period_with_computers(8);
        assert_eq!(eight, m.fully_pipelined_period());
        let two = m.period_with_computers(2);
        assert!(two <= m.sequential_period() && two >= eight);
    }

    #[test]
    fn fps_helper() {
        assert!((PipelineModel::fps(Micros::from_millis(62)) - 16.129).abs() < 0.01);
        assert!(PipelineModel::fps(Micros::ZERO).is_infinite());
    }

    #[test]
    fn empty_pipeline_is_degenerate_but_defined() {
        let m = PipelineModel::new(Vec::new(), Micros::ZERO);
        assert_eq!(m.sequential_period(), Micros::ZERO);
        assert_eq!(m.fully_pipelined_period(), Micros::ZERO);
        assert_eq!(m.speedup(), 1.0);
    }
}
