//! One desktop computer of the cluster.

use cod_cb::{CbError, CbKernel, ClassRegistry, LpContext, LpId};
use cod_net::{Micros, SimTransport};

use crate::batch::BatchScratch;
use crate::lp::LogicalProcess;

/// A desktop PC of the COD: a Communication Backbone kernel plus the Logical
/// Processes resident on it.
///
/// "One or many LPs can run on a computer, depending upon the computational
/// load of each LP" (paper §2.1).
#[derive(Debug)]
pub struct Computer {
    name: String,
    kernel: CbKernel<SimTransport>,
    lps: Vec<(LpId, Box<dyn LogicalProcess>)>,
    /// Relative CPU speed: 1.0 is the reference desktop PC; larger is faster.
    cpu_speed: f64,
}

impl std::fmt::Debug for dyn LogicalProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogicalProcess({})", self.name())
    }
}

impl Computer {
    /// Creates a computer around a transport already attached to the cluster LAN.
    pub fn new(name: &str, transport: SimTransport, fom: ClassRegistry) -> Computer {
        Computer {
            name: name.to_owned(),
            kernel: CbKernel::new(transport, fom),
            lps: Vec::new(),
            cpu_speed: 1.0,
        }
    }

    /// Sets the relative CPU speed (1.0 = reference desktop PC).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive.
    pub fn set_cpu_speed(&mut self, speed: f64) {
        assert!(speed > 0.0, "cpu speed must be positive");
        self.cpu_speed = speed;
    }

    /// The computer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relative CPU speed.
    pub fn cpu_speed(&self) -> f64 {
        self.cpu_speed
    }

    /// The resident CB kernel.
    pub fn kernel(&self) -> &CbKernel<SimTransport> {
        &self.kernel
    }

    /// Mutable access to the resident CB kernel.
    pub fn kernel_mut(&mut self) -> &mut CbKernel<SimTransport> {
        &mut self.kernel
    }

    /// Names of the LPs resident on this computer.
    pub fn lp_names(&self) -> Vec<&str> {
        self.lps.iter().map(|(_, lp)| lp.name()).collect()
    }

    /// Number of resident LPs.
    pub fn lp_count(&self) -> usize {
        self.lps.len()
    }

    /// Plugs a Logical Process into this computer: registers it with the CB
    /// and runs its `init` so it can declare publications and subscriptions.
    ///
    /// # Errors
    ///
    /// Returns an error if the LP's `init` fails.
    pub fn add_lp(&mut self, mut lp: Box<dyn LogicalProcess>) -> Result<LpId, CbError> {
        let id = self.kernel.register_lp(lp.name());
        {
            let mut ctx = LpContext::new(&mut self.kernel, id);
            lp.init(&mut ctx)?;
        }
        self.lps.push((id, lp));
        Ok(id)
    }

    /// Removes an LP from this computer (e.g. to unplug a display channel).
    ///
    /// # Errors
    ///
    /// Returns an error if the LP is not resident here.
    pub fn remove_lp(&mut self, id: LpId) -> Result<Box<dyn LogicalProcess>, CbError> {
        let index =
            self.lps.iter().position(|(lp_id, _)| *lp_id == id).ok_or(CbError::UnknownLp(id.0))?;
        self.kernel.deregister_lp(id)?;
        let (_, lp) = self.lps.remove(index);
        Ok(lp)
    }

    /// Resets this computer for a new session: the CB kernel's session state
    /// is rewound to `epoch` and every resident LP gets its
    /// [`LogicalProcess::begin_session`] call.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by an LP's session reset.
    pub fn begin_session(&mut self, epoch: Micros, seed: u64) -> Result<(), CbError> {
        self.kernel.begin_session(epoch);
        for (id, lp) in self.lps.iter_mut() {
            let mut ctx = LpContext::new(&mut self.kernel, *id);
            lp.begin_session(&mut ctx, seed)?;
        }
        Ok(())
    }

    /// Runs one simulation frame on this computer: every resident LP steps
    /// once, then the CB kernel is pumped at time `now`.
    ///
    /// Returns the modeled CPU cost of the frame (sum of LP step costs divided
    /// by the CPU speed factor).
    ///
    /// # Errors
    ///
    /// Returns the first error raised by an LP step or the kernel tick.
    pub fn step_frame(&mut self, now: Micros, dt: f64) -> Result<Micros, CbError> {
        let mut cost_us = 0.0;
        for (id, lp) in self.lps.iter_mut() {
            let mut ctx = LpContext::new(&mut self.kernel, *id);
            lp.step(&mut ctx, dt)?;
            cost_us += lp.last_step_cost().0 as f64;
        }
        self.kernel.tick(now)?;
        Ok(Micros((cost_us / self.cpu_speed).round() as u64))
    }

    /// [`Computer::step_frame`] with the cohort's batch scratch threaded to
    /// every resident LP's [`LogicalProcess::step_batched`]. Bit-identical to
    /// the scalar frame by the `step_batched` contract.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by an LP step or the kernel tick.
    pub fn step_frame_batched(
        &mut self,
        now: Micros,
        dt: f64,
        scratch: &mut BatchScratch,
    ) -> Result<Micros, CbError> {
        let mut cost_us = 0.0;
        for (id, lp) in self.lps.iter_mut() {
            let mut ctx = LpContext::new(&mut self.kernel, *id);
            lp.step_batched(&mut ctx, dt, scratch)?;
            cost_us += lp.last_step_cost().0 as f64;
        }
        self.kernel.tick(now)?;
        Ok(Micros((cost_us / self.cpu_speed).round() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_cb::CbApi;
    use cod_net::{LanConfig, SimLan};

    struct Counter {
        steps: u32,
        cost: Micros,
    }

    impl LogicalProcess for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn init(&mut self, _cb: &mut dyn CbApi) -> Result<(), CbError> {
            Ok(())
        }
        fn step(&mut self, _cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
            self.steps += 1;
            Ok(())
        }
        fn last_step_cost(&self) -> Micros {
            self.cost
        }
    }

    #[test]
    fn frame_cost_scales_with_cpu_speed() {
        let lan = SimLan::shared(LanConfig::ideal(1));
        let mut pc = Computer::new("pc", SimLan::attach(&lan, "pc"), ClassRegistry::new());
        pc.add_lp(Box::new(Counter { steps: 0, cost: Micros::from_millis(10) })).unwrap();
        pc.add_lp(Box::new(Counter { steps: 0, cost: Micros::from_millis(20) })).unwrap();
        let cost = pc.step_frame(Micros::ZERO, 1.0 / 60.0).unwrap();
        assert_eq!(cost, Micros::from_millis(30));

        pc.set_cpu_speed(2.0);
        let cost = pc.step_frame(Micros::from_millis(16), 1.0 / 60.0).unwrap();
        assert_eq!(cost, Micros::from_millis(15));
        assert_eq!(pc.lp_count(), 2);
        assert_eq!(pc.lp_names(), vec!["counter", "counter"]);
    }

    #[test]
    fn remove_lp_unplugs_module() {
        let lan = SimLan::shared(LanConfig::ideal(2));
        let mut pc = Computer::new("pc", SimLan::attach(&lan, "pc"), ClassRegistry::new());
        let id = pc.add_lp(Box::new(Counter { steps: 0, cost: Micros::ZERO })).unwrap();
        assert_eq!(pc.lp_count(), 1);
        pc.remove_lp(id).unwrap();
        assert_eq!(pc.lp_count(), 0);
        assert!(pc.remove_lp(id).is_err());
    }

    #[test]
    #[should_panic]
    fn cpu_speed_must_be_positive() {
        let lan = SimLan::shared(LanConfig::ideal(3));
        let mut pc = Computer::new("pc", SimLan::attach(&lan, "pc"), ClassRegistry::new());
        pc.set_cpu_speed(0.0);
    }
}
