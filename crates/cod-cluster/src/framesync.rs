//! Frame-rate synchronization of the surround-view display channels.
//!
//! In the implemented system (paper §4) the top three computers of the rack
//! drive the three monitors of the surround view and "the fourth computer from
//! the top is the synchronization server that synchronizes the frame rate of
//! the above three graphical computers". This module provides:
//!
//! * [`FrameSyncServer`] — the synchronization-server LP: it waits until every
//!   display channel has reported that its frame is rendered, then releases the
//!   swap for that frame.
//! * [`FrameSyncClient`] — the client half embedded in a display LP.
//! * [`SyncBarrierModel`] — the analytic overhead model used by experiment E3
//!   (the cost of lock-step against free-running channels).

use std::collections::{BTreeMap, BTreeSet};

use cod_cb::{AttributeId, CbApi, CbError, ClassRegistry, InteractionClassId, Value};
use cod_net::Micros;
use serde::{Deserialize, Serialize};

use crate::lp::LogicalProcess;

/// Interaction classes used by the frame-synchronization protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSyncFom {
    /// "FrameReady" interaction: a display channel finished rendering a frame.
    pub frame_ready: InteractionClassId,
    /// "FrameGo" interaction: the server releases the swap for a frame.
    pub frame_go: InteractionClassId,
    /// Parameter of `frame_ready`: the reporting channel index.
    pub ready_channel: AttributeId,
    /// Parameter of `frame_ready`: the frame number.
    pub ready_frame: AttributeId,
    /// Parameter of `frame_go`: the released frame number.
    pub go_frame: AttributeId,
}

impl FrameSyncFom {
    /// Declares the synchronization interactions in the shared FOM.
    ///
    /// # Errors
    ///
    /// Returns an error if the class names are already taken.
    pub fn register(fom: &mut ClassRegistry) -> Result<FrameSyncFom, CbError> {
        let frame_ready = fom.register_interaction_class("FrameReady", &["channel", "frame"])?;
        let frame_go = fom.register_interaction_class("FrameGo", &["frame"])?;
        Ok(FrameSyncFom {
            frame_ready,
            frame_go,
            ready_channel: fom.parameter_id(frame_ready, "channel").expect("declared above"),
            ready_frame: fom.parameter_id(frame_ready, "frame").expect("declared above"),
            go_frame: fom.parameter_id(frame_go, "frame").expect("declared above"),
        })
    }
}

/// The synchronization server LP (the fourth computer of the rack).
#[derive(Debug)]
pub struct FrameSyncServer {
    fom: FrameSyncFom,
    expected_channels: usize,
    current_frame: u64,
    pending: BTreeMap<u64, BTreeSet<u32>>,
    frames_released: u64,
    go_resends: u64,
    step_cost: Micros,
}

impl FrameSyncServer {
    /// Creates a server that waits for `expected_channels` display channels per frame.
    ///
    /// # Panics
    ///
    /// Panics if `expected_channels` is zero.
    pub fn new(fom: FrameSyncFom, expected_channels: usize) -> FrameSyncServer {
        assert!(expected_channels > 0, "at least one display channel is required");
        FrameSyncServer {
            fom,
            expected_channels,
            current_frame: 0,
            pending: BTreeMap::new(),
            frames_released: 0,
            go_resends: 0,
            step_cost: Micros(500),
        }
    }

    /// Number of frames whose swap has been released so far.
    pub fn frames_released(&self) -> u64 {
        self.frames_released
    }

    /// The frame the server is currently collecting ready reports for.
    pub fn current_frame(&self) -> u64 {
        self.current_frame
    }

    /// Number of FrameGo re-transmissions triggered by stale ready reports
    /// (i.e. how often the LAN lost a release on the way to a channel).
    pub fn go_resends(&self) -> u64 {
        self.go_resends
    }

    /// Rewinds the barrier to frame zero with no pending ready reports, as if
    /// freshly constructed.
    pub fn reset_session(&mut self) {
        self.current_frame = 0;
        self.pending.clear();
        self.frames_released = 0;
        self.go_resends = 0;
    }
}

impl LogicalProcess for FrameSyncServer {
    fn name(&self) -> &str {
        "frame-sync-server"
    }

    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.subscribe_interaction_class(self.fom.frame_ready)
    }

    fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
        let mut stale_frames = BTreeSet::new();
        for interaction in cb.interactions() {
            if interaction.class != self.fom.frame_ready {
                continue;
            }
            let channel = interaction
                .parameters
                .get(&self.fom.ready_channel)
                .and_then(Value::as_u32)
                .unwrap_or(u32::MAX);
            let frame = interaction
                .parameters
                .get(&self.fom.ready_frame)
                .and_then(Value::as_u32)
                .unwrap_or(0) as u64;
            if frame < self.current_frame {
                // A ready report for an already-released frame means the LAN
                // lost the FrameGo on the way to that channel; re-release it.
                stale_frames.insert(frame);
                continue;
            }
            self.pending.entry(frame).or_default().insert(channel);
        }
        for frame in stale_frames {
            cb.send_interaction(
                self.fom.frame_go,
                [(self.fom.go_frame, Value::U32(frame as u32))].into(),
            )?;
            self.go_resends += 1;
        }

        // Release the swap for the current frame once every channel reported.
        while self
            .pending
            .get(&self.current_frame)
            .map(|set| set.len() >= self.expected_channels)
            .unwrap_or(false)
        {
            let frame = self.current_frame;
            self.pending.remove(&frame);
            cb.send_interaction(
                self.fom.frame_go,
                [(self.fom.go_frame, Value::U32(frame as u32))].into(),
            )?;
            self.frames_released += 1;
            self.current_frame += 1;
        }
        Ok(())
    }

    fn last_step_cost(&self) -> Micros {
        self.step_cost
    }

    fn begin_session(&mut self, _cb: &mut dyn CbApi, _seed: u64) -> Result<(), CbError> {
        self.reset_session();
        Ok(())
    }
}

/// Number of unproductive release polls after which a waiting client re-sends
/// its ready report (a lost FrameReady or FrameGo otherwise stalls lock-step
/// forever). A healthy barrier releases within two polls, so three silent
/// polls indicate a lost datagram.
const READY_RESEND_AFTER_POLLS: u32 = 3;

/// The client half of the synchronization protocol, embedded in a display LP.
#[derive(Debug, Clone)]
pub struct FrameSyncClient {
    fom: FrameSyncFom,
    channel_index: u32,
    frame: u64,
    waiting_for_go: bool,
    frames_swapped: u64,
    stalled_polls: u32,
    ready_resends: u64,
}

impl FrameSyncClient {
    /// Creates the client for display channel `channel_index`.
    pub fn new(fom: FrameSyncFom, channel_index: u32) -> FrameSyncClient {
        FrameSyncClient {
            fom,
            channel_index,
            frame: 0,
            waiting_for_go: false,
            frames_swapped: 0,
            stalled_polls: 0,
            ready_resends: 0,
        }
    }

    /// Subscribes to the release interaction; call from the display LP's `init`.
    ///
    /// # Errors
    ///
    /// Returns an error if the interaction class is unknown to the CB.
    pub fn init(&self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.subscribe_interaction_class(self.fom.frame_go)
    }

    /// Whether the channel is blocked waiting for the server's release.
    pub fn is_waiting(&self) -> bool {
        self.waiting_for_go
    }

    /// The frame this channel is currently working on.
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Number of frames actually swapped (released by the server).
    pub fn frames_swapped(&self) -> u64 {
        self.frames_swapped
    }

    /// Number of ready-report re-transmissions (i.e. how often this channel
    /// suspected a lost barrier datagram and recovered).
    pub fn ready_resends(&self) -> u64 {
        self.ready_resends
    }

    /// Rewinds the client to frame zero, not waiting, as if freshly
    /// constructed; call from the display LP's session reset.
    pub fn reset_session(&mut self) {
        self.frame = 0;
        self.waiting_for_go = false;
        self.frames_swapped = 0;
        self.stalled_polls = 0;
        self.ready_resends = 0;
    }

    /// Reports that rendering of the current frame finished and blocks the
    /// channel until the server releases the swap.
    ///
    /// # Errors
    ///
    /// Returns an error if the CB rejects the interaction.
    pub fn report_ready(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.send_interaction(
            self.fom.frame_ready,
            [
                (self.fom.ready_channel, Value::U32(self.channel_index)),
                (self.fom.ready_frame, Value::U32(self.frame as u32)),
            ]
            .into(),
        )?;
        self.waiting_for_go = true;
        self.stalled_polls = 0;
        Ok(())
    }

    /// Processes any pending release messages; returns `true` if the swap for
    /// the current frame was released (the channel may start the next frame).
    pub fn poll_release(&mut self, cb: &mut dyn CbApi) -> bool {
        let mut released = false;
        for interaction in cb.interactions() {
            if interaction.class != self.fom.frame_go {
                continue;
            }
            let frame =
                interaction.parameters.get(&self.fom.go_frame).and_then(Value::as_u32).unwrap_or(0)
                    as u64;
            if frame >= self.frame {
                released = true;
            }
        }
        if released && self.waiting_for_go {
            self.waiting_for_go = false;
            self.stalled_polls = 0;
            self.frame += 1;
            self.frames_swapped += 1;
        } else if self.waiting_for_go {
            self.stalled_polls += 1;
        }
        released
    }

    /// Re-sends the ready report if the channel has been waiting suspiciously
    /// long for its release — the recovery path for a FrameReady or FrameGo
    /// datagram lost on the LAN. Returns `true` if a resend went out. Call
    /// after [`FrameSyncClient::poll_release`] on every blocked step.
    ///
    /// # Errors
    ///
    /// Returns an error if the CB rejects the interaction.
    pub fn resend_ready_if_stalled(&mut self, cb: &mut dyn CbApi) -> Result<bool, CbError> {
        if !self.waiting_for_go || self.stalled_polls < READY_RESEND_AFTER_POLLS {
            return Ok(false);
        }
        cb.send_interaction(
            self.fom.frame_ready,
            [
                (self.fom.ready_channel, Value::U32(self.channel_index)),
                (self.fom.ready_frame, Value::U32(self.frame as u32)),
            ]
            .into(),
        )?;
        self.stalled_polls = 0;
        self.ready_resends += 1;
        Ok(true)
    }
}

/// Analytic model of the swap-lock barrier overhead (experiment E3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncBarrierModel {
    /// Round-trip time between a display computer and the synchronization server.
    pub round_trip: Micros,
    /// Server processing time per frame.
    pub server_processing: Micros,
}

impl SyncBarrierModel {
    /// Frame period of the synchronized surround view: the slowest channel's
    /// render time plus one barrier round trip plus server processing.
    pub fn synchronized_period(&self, channel_render_times: &[Micros]) -> Micros {
        let slowest = channel_render_times.iter().copied().max().unwrap_or(Micros::ZERO);
        slowest + self.round_trip + self.server_processing
    }

    /// Frame period of an unsynchronized (free-running) surround view: each
    /// channel swaps as soon as it is done, so the view is only as consistent
    /// as the slowest channel but pays no barrier cost.
    pub fn unsynchronized_period(channel_render_times: &[Micros]) -> Micros {
        channel_render_times.iter().copied().max().unwrap_or(Micros::ZERO)
    }

    /// Fraction of the synchronized frame period spent on synchronization
    /// rather than rendering.
    pub fn overhead_fraction(&self, channel_render_times: &[Micros]) -> f64 {
        let sync = self.synchronized_period(channel_render_times);
        if sync == Micros::ZERO {
            return 0.0;
        }
        let overhead = self.round_trip + self.server_processing;
        overhead.as_secs_f64() / sync.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A minimal display LP that renders, reports ready, and waits for release.
    struct Display {
        name: String,
        client: FrameSyncClient,
        rendered: Arc<AtomicU64>,
        swapped: Arc<AtomicU64>,
    }

    impl LogicalProcess for Display {
        fn name(&self) -> &str {
            &self.name
        }
        fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
            self.client.init(cb)
        }
        fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
            if self.client.is_waiting() {
                self.client.poll_release(cb);
                self.client.resend_ready_if_stalled(cb)?;
            } else {
                // "Render" the frame, then report it to the sync server.
                self.rendered.fetch_add(1, Ordering::Relaxed);
                self.client.report_ready(cb)?;
            }
            self.swapped.store(self.client.frames_swapped(), Ordering::Relaxed);
            Ok(())
        }
        fn last_step_cost(&self) -> Micros {
            Micros::from_millis(45)
        }
    }

    #[test]
    fn three_displays_swap_in_lock_step() {
        let mut fom = ClassRegistry::new();
        let sync_fom = FrameSyncFom::register(&mut fom).unwrap();

        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        let mut swapped = Vec::new();
        for i in 0..3 {
            let pc = cluster.add_computer(&format!("display-{i}"));
            let counter = Arc::new(AtomicU64::new(0));
            swapped.push(Arc::clone(&counter));
            cluster
                .add_lp(
                    pc,
                    Box::new(Display {
                        name: format!("visual-{i}"),
                        client: FrameSyncClient::new(sync_fom, i as u32),
                        rendered: Arc::new(AtomicU64::new(0)),
                        swapped: counter,
                    }),
                )
                .unwrap();
        }
        let sync_pc = cluster.add_computer("sync-server");
        cluster.add_lp(sync_pc, Box::new(FrameSyncServer::new(sync_fom, 3))).unwrap();

        cluster.initialize().unwrap();
        cluster.run_frames(120).unwrap();

        let counts: Vec<u64> = swapped.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert!(counts[0] > 5, "displays never progressed: {counts:?}");
        // Lock-step: no channel may be more than one frame ahead of another.
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "channels diverged: {counts:?}");
    }

    #[test]
    fn server_releases_only_when_all_channels_report() {
        let mut fom = ClassRegistry::new();
        let sync_fom = FrameSyncFom::register(&mut fom).unwrap();
        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        let display_pc = cluster.add_computer("display-0");
        let counter = Arc::new(AtomicU64::new(0));
        cluster
            .add_lp(
                display_pc,
                Box::new(Display {
                    name: "visual-0".into(),
                    client: FrameSyncClient::new(sync_fom, 0),
                    rendered: Arc::new(AtomicU64::new(0)),
                    swapped: Arc::clone(&counter),
                }),
            )
            .unwrap();
        let sync_pc = cluster.add_computer("sync-server");
        // Server expects TWO channels but only one exists: nothing is ever released.
        cluster.add_lp(sync_pc, Box::new(FrameSyncServer::new(sync_fom, 2))).unwrap();
        cluster.initialize().unwrap();
        cluster.run_frames(60).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn lock_step_survives_a_lossy_lan() {
        let mut fom = ClassRegistry::new();
        let sync_fom = FrameSyncFom::register(&mut fom).unwrap();
        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        let mut swapped = Vec::new();
        for i in 0..3 {
            let pc = cluster.add_computer(&format!("display-{i}"));
            let counter = Arc::new(AtomicU64::new(0));
            swapped.push(Arc::clone(&counter));
            cluster
                .add_lp(
                    pc,
                    Box::new(Display {
                        name: format!("visual-{i}"),
                        client: FrameSyncClient::new(sync_fom, i as u32),
                        rendered: Arc::new(AtomicU64::new(0)),
                        swapped: counter,
                    }),
                )
                .unwrap();
        }
        let sync_pc = cluster.add_computer("sync-server");
        cluster.add_lp(sync_pc, Box::new(FrameSyncServer::new(sync_fom, 3))).unwrap();
        cluster.initialize().unwrap();

        // 10% datagram loss: without ready-resend and stale-ready re-release
        // the barrier deadlocks within a handful of frames.
        cluster.set_fault_plan(cod_net::FaultPlan::seeded(21).with_drop_probability(0.10));
        cluster.run_frames(300).unwrap();

        let counts: Vec<u64> = swapped.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert!(counts.iter().all(|c| *c > 20), "progress stalled under loss: {counts:?}");
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "channels diverged under loss: {counts:?}");
        assert!(cluster.lan_stats().fault_drops > 0);
    }

    #[test]
    fn barrier_model_overhead() {
        let model =
            SyncBarrierModel { round_trip: Micros::from_millis(1), server_processing: Micros(500) };
        let channels = [Micros::from_millis(45), Micros::from_millis(50), Micros::from_millis(48)];
        let sync = model.synchronized_period(&channels);
        let free = SyncBarrierModel::unsynchronized_period(&channels);
        assert_eq!(free, Micros::from_millis(50));
        assert_eq!(sync, Micros::from_millis(50) + Micros::from_millis(1) + Micros(500));
        assert!(model.overhead_fraction(&channels) > 0.0);
        assert!(model.overhead_fraction(&channels) < 0.1);
    }

    #[test]
    #[should_panic]
    fn zero_channel_server_rejected() {
        let mut fom = ClassRegistry::new();
        let sync_fom = FrameSyncFom::register(&mut fom).unwrap();
        let _ = FrameSyncServer::new(sync_fom, 0);
    }
}
