//! Load-based placement of Logical Processes onto computers.
//!
//! "One or many LPs can run on a computer, depending upon the computational
//! load of each LP" (paper §2.1). This module provides the classic
//! longest-processing-time-first heuristic for packing module loads onto a
//! given number of desktop PCs, which the cluster-speedup experiment (E6) uses
//! to decide how many computers a configuration really needs.

use cod_net::Micros;
use serde::{Deserialize, Serialize};

/// The modeled per-frame CPU load of one Logical Process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LpLoad {
    /// Module name.
    pub name: String,
    /// Modeled CPU cost per frame on the reference desktop PC.
    pub cost: Micros,
}

impl LpLoad {
    /// Convenience constructor.
    pub fn new(name: &str, cost: Micros) -> LpLoad {
        LpLoad { name: name.to_owned(), cost }
    }
}

/// Nominal modeled cost of one whole-cluster frame of a crane rack with
/// `display_channels` surround-view channels, run sequentially on the
/// reference desktop PC: roughly 60 ms of visual pipeline per channel plus
/// 24 ms for the non-visual modules (sync, dynamics, control, instructor,
/// audio, motion). This is the pre-measurement estimate a serving layer bids
/// with before a session's own [`crate::ClusterMetrics`] cost hint is live;
/// the three-channel rack of the paper comes out at 204 ms.
pub fn nominal_sequential_frame_cost(display_channels: usize) -> Micros {
    const PER_CHANNEL: u64 = 60_000;
    const OTHER_MODULES: u64 = 24_000;
    Micros(PER_CHANNEL.saturating_mul(display_channels as u64).saturating_add(OTHER_MODULES))
}

/// The result of packing LP loads onto computers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// For each computer, the indices (into the input load list) of the LPs placed on it.
    pub assignments: Vec<Vec<usize>>,
    /// Per-computer total load.
    pub loads: Vec<Micros>,
    /// The largest per-computer load — the frame-period limiter of the cluster.
    pub makespan: Micros,
}

impl Placement {
    /// The frame rate the placement can sustain, additionally bounded by `frame_period`.
    pub fn achievable_fps(&self, frame_period: Micros) -> f64 {
        let limiter = self.makespan.max(frame_period);
        if limiter == Micros::ZERO {
            0.0
        } else {
            1.0 / limiter.as_secs_f64()
        }
    }
}

/// Packs `loads` onto `computers` machines using the longest-processing-time
/// heuristic: sort by decreasing cost, always place on the least-loaded machine.
///
/// # Panics
///
/// Panics if `computers` is zero.
pub fn balance_load(loads: &[LpLoad], computers: usize) -> Placement {
    assert!(computers > 0, "at least one computer is required");
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by(|a, b| loads[*b].cost.cmp(&loads[*a].cost).then(a.cmp(b)));

    let mut assignments = vec![Vec::new(); computers];
    let mut totals = vec![Micros::ZERO; computers];
    for lp_index in order {
        let target = least_loaded(&totals).expect("at least one computer");
        assignments[target].push(lp_index);
        totals[target] += loads[lp_index].cost;
    }
    let makespan = totals.iter().copied().max().unwrap_or(Micros::ZERO);
    Placement { assignments, loads: totals, makespan }
}

/// Packs `loads` onto heterogeneous machines: `speeds[m]` is machine `m`'s
/// relative CPU speed (1.0 = the reference PC), so an item of cost `c` takes
/// `c / speeds[m]` on it. Longest-processing-time order, each item placed on
/// the machine that finishes the *resulting* load earliest (ties break toward
/// the lowest index). [`balance_load`] is the homogeneous special case.
///
/// # Panics
///
/// Panics if `speeds` is empty or any speed is not positive.
pub fn balance_load_weighted(loads: &[LpLoad], speeds: &[f64]) -> Placement {
    assert!(!speeds.is_empty(), "at least one computer is required");
    assert!(speeds.iter().all(|s| *s > 0.0), "cpu speeds must be positive");
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by(|a, b| loads[*b].cost.cmp(&loads[*a].cost).then(a.cmp(b)));

    let mut assignments = vec![Vec::new(); speeds.len()];
    let mut totals = vec![Micros::ZERO; speeds.len()];
    for lp_index in order {
        let scaled = |m: usize| Micros((loads[lp_index].cost.0 as f64 / speeds[m]).round() as u64);
        let candidates: Vec<Micros> = (0..speeds.len()).map(|m| totals[m] + scaled(m)).collect();
        let target = least_loaded(&candidates).expect("at least one computer");
        assignments[target].push(lp_index);
        totals[target] += scaled(target);
    }
    let makespan = totals.iter().copied().max().unwrap_or(Micros::ZERO);
    Placement { assignments, loads: totals, makespan }
}

/// Index of the least-loaded bin (ties break toward the lowest index), or
/// `None` for an empty slice — the placement primitive `balance_load` applies
/// per item and a session-serving layer applies per arriving session.
pub fn least_loaded(loads: &[Micros]) -> Option<usize> {
    loads.iter().enumerate().min_by_key(|(i, load)| (**load, *i)).map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nominal_cost_matches_the_reference_rack_and_scales_per_channel() {
        assert_eq!(nominal_sequential_frame_cost(3), Micros(204_000));
        assert_eq!(nominal_sequential_frame_cost(1), Micros(84_000));
        assert!(nominal_sequential_frame_cost(usize::MAX).0 > 0, "saturates, never wraps");
    }

    fn crane_loads() -> Vec<LpLoad> {
        vec![
            LpLoad::new("visual-left", Micros::from_millis(45)),
            LpLoad::new("visual-center", Micros::from_millis(45)),
            LpLoad::new("visual-right", Micros::from_millis(45)),
            LpLoad::new("dynamics", Micros::from_millis(18)),
            LpLoad::new("scenario", Micros::from_millis(4)),
            LpLoad::new("dashboard", Micros::from_millis(2)),
            LpLoad::new("motion-platform", Micros::from_millis(6)),
            LpLoad::new("instructor", Micros::from_millis(3)),
            LpLoad::new("audio", Micros::from_millis(3)),
            LpLoad::new("sync-server", Micros::from_millis(1)),
        ]
    }

    #[test]
    fn single_computer_gets_everything() {
        let loads = crane_loads();
        let p = balance_load(&loads, 1);
        assert_eq!(p.assignments[0].len(), loads.len());
        let total: u64 = loads.iter().map(|l| l.cost.0).sum();
        assert_eq!(p.makespan, Micros(total));
    }

    #[test]
    fn eight_computers_are_limited_by_the_heaviest_module() {
        let loads = crane_loads();
        let p = balance_load(&loads, 8);
        // No computer can be better than the single heaviest module (45 ms display).
        assert_eq!(p.makespan, Micros::from_millis(45));
        assert_eq!(p.assignments.iter().map(Vec::len).sum::<usize>(), loads.len());
    }

    #[test]
    fn more_computers_never_hurt() {
        let loads = crane_loads();
        let mut previous = balance_load(&loads, 1).makespan;
        for n in 2..10 {
            let makespan = balance_load(&loads, n).makespan;
            assert!(makespan <= previous, "makespan increased at {n} computers");
            previous = makespan;
        }
    }

    #[test]
    fn achievable_fps_uses_makespan() {
        let p = balance_load(&crane_loads(), 8);
        let fps = p.achievable_fps(Micros::from_millis(10));
        assert!((fps - 1.0 / 0.045).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_computers_rejected() {
        let _ = balance_load(&crane_loads(), 0);
    }

    #[test]
    fn least_loaded_ties_break_toward_the_lowest_index() {
        // The speed-weighted fleet placement relies on this exact rule.
        let equal = [Micros(7), Micros(7), Micros(7)];
        assert_eq!(least_loaded(&equal), Some(0));
        let tied_tail = [Micros(9), Micros(3), Micros(3)];
        assert_eq!(least_loaded(&tied_tail), Some(1));
        assert_eq!(least_loaded(&[]), None);
        assert_eq!(least_loaded(&[Micros(u64::MAX)]), Some(0));
    }

    #[test]
    fn weighted_balance_matches_plain_balance_on_homogeneous_speeds() {
        let loads = crane_loads();
        for n in 1..6 {
            let plain = balance_load(&loads, n);
            let weighted = balance_load_weighted(&loads, &vec![1.0; n]);
            assert_eq!(plain, weighted, "speeds of 1.0 must reduce to balance_load ({n} PCs)");
        }
    }

    #[test]
    fn weighted_balance_prefers_fast_computers() {
        let loads = crane_loads();
        // One 2x machine plus three half-speed machines: the heavy display
        // channels should gravitate toward the fast machine, beating the
        // homogeneous four-PC split run on the slow machines alone.
        let hetero = balance_load_weighted(&loads, &[2.0, 0.5, 0.5, 0.5]);
        let slow_only = balance_load_weighted(&loads, &[0.5, 0.5, 0.5, 0.5]);
        assert!(
            hetero.makespan < slow_only.makespan,
            "a fast machine must shrink the makespan: {:?} vs {:?}",
            hetero.makespan,
            slow_only.makespan
        );
        assert!(
            !hetero.assignments[0].is_empty(),
            "the fast machine must receive work: {:?}",
            hetero.assignments
        );
        // Every LP still placed exactly once.
        let placed: usize = hetero.assignments.iter().map(Vec::len).sum();
        assert_eq!(placed, loads.len());
    }

    #[test]
    fn weighted_balance_accounts_loads_in_machine_local_time() {
        let loads = vec![LpLoad::new("only", Micros::from_millis(10))];
        let p = balance_load_weighted(&loads, &[0.5, 0.25]);
        // 10 ms on a half-speed machine is 20 ms of local time, and the
        // quarter-speed machine (40 ms) must lose the placement.
        assert_eq!(p.assignments[0], vec![0]);
        assert_eq!(p.loads[0], Micros::from_millis(20));
        assert_eq!(p.makespan, Micros::from_millis(20));
    }

    #[test]
    #[should_panic]
    fn non_positive_speed_rejected() {
        let _ = balance_load_weighted(&crane_loads(), &[1.0, 0.0]);
    }

    proptest! {
        #[test]
        fn prop_every_lp_is_placed_exactly_once(costs in proptest::collection::vec(0u64..100_000, 1..30),
                                                computers in 1usize..12) {
            let loads: Vec<LpLoad> = costs
                .iter()
                .enumerate()
                .map(|(i, c)| LpLoad::new(&format!("lp{i}"), Micros(*c)))
                .collect();
            let p = balance_load(&loads, computers);
            let mut seen = vec![false; loads.len()];
            for group in &p.assignments {
                for &i in group {
                    prop_assert!(!seen[i], "lp placed twice");
                    seen[i] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
            // Makespan can never be smaller than the ideal average or the largest item.
            let total: u64 = costs.iter().sum();
            let max = costs.iter().copied().max().unwrap_or(0);
            prop_assert!(p.makespan.0 >= max);
            prop_assert!(p.makespan.0 as f64 >= total as f64 / computers as f64 - 1.0);
        }
    }
}
