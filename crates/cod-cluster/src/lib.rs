//! COD runtime: the Cluster Of Desktop computers as an executable object.
//!
//! The Communication Backbone crate ([`cod_cb`]) provides the distribution
//! socket; this crate provides the machinery around it that the paper's §2
//! describes informally:
//!
//! * [`LogicalProcess`] — the trait every simulator module implements. A
//!   module only ever talks to its resident CB through [`cod_cb::CbApi`], so it
//!   can be placed on any computer of the cluster without change.
//! * [`Computer`] — one desktop PC: a CB kernel, the LPs resident on it, and a
//!   relative CPU speed (the rack of Figure 11 was not perfectly homogeneous).
//! * [`Cluster`] — the whole COD: a simulated LAN, a set of computers, and a
//!   deterministic frame-driven executive that interleaves module steps, CB
//!   ticks and LAN delivery.
//! * [`framesync`] — the synchronization server used by the three display
//!   channels to swap in lock-step (paper §4: the fourth computer).
//! * [`pipeline`] — analytic model of pipelined vs sequential execution used by
//!   the cluster-speedup experiment (E6).
//! * [`placement`] — load-based assignment of LPs to computers.
//!
//! # Example: a two-computer producer/consumer cluster
//!
//! ```
//! use cod_cluster::{Cluster, ClusterConfig, LogicalProcess};
//! use cod_cb::{CbApi, CbError, ClassRegistry, ObjectClassId, ObjectId, Value};
//!
//! struct Producer { class: ObjectClassId, object: Option<ObjectId>, ticks: u32 }
//! struct Consumer { class: ObjectClassId, received: u32 }
//!
//! impl LogicalProcess for Producer {
//!     fn name(&self) -> &str { "producer" }
//!     fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
//!         cb.publish_object_class(self.class)?;
//!         self.object = Some(cb.register_object(self.class)?);
//!         Ok(())
//!     }
//!     fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
//!         self.ticks += 1;
//!         let attr = cb.fom().attribute_id(self.class, "value").expect("attr");
//!         cb.update_attributes(self.object.unwrap(), [(attr, Value::U32(self.ticks))].into())
//!     }
//! }
//!
//! impl LogicalProcess for Consumer {
//!     fn name(&self) -> &str { "consumer" }
//!     fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
//!         cb.subscribe_object_class(self.class)
//!     }
//!     fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
//!         self.received += cb.reflections().len() as u32;
//!         Ok(())
//!     }
//! }
//!
//! let mut fom = ClassRegistry::new();
//! let class = fom.register_object_class("Sample", &["value"]).unwrap();
//!
//! let mut cluster = Cluster::new(ClusterConfig::default(), fom);
//! let producer_pc = cluster.add_computer("producer-pc");
//! let consumer_pc = cluster.add_computer("consumer-pc");
//! cluster.add_lp(producer_pc, Box::new(Producer { class, object: None, ticks: 0 })).unwrap();
//! cluster.add_lp(consumer_pc, Box::new(Consumer { class, received: 0 })).unwrap();
//!
//! cluster.initialize().unwrap();
//! cluster.run_frames(30).unwrap();
//! assert!(cluster.metrics().frames_run == 30);
//! ```

pub mod batch;
pub mod cluster;
pub mod computer;
pub mod framesync;
pub mod lp;
pub mod metrics;
pub mod pipeline;
pub mod placement;

pub use batch::BatchScratch;
pub use cluster::{frame_period_for_fps, Cluster, ClusterConfig, ComputerId, FrameRecord};
pub use computer::Computer;
pub use framesync::{FrameSyncClient, FrameSyncFom, FrameSyncServer, SyncBarrierModel};
pub use lp::LogicalProcess;
pub use metrics::{ClusterMetrics, ComputerFrameRecord};
pub use pipeline::{PipelineModel, StageCost};
pub use placement::{
    balance_load, balance_load_weighted, least_loaded, nominal_sequential_frame_cost, LpLoad,
    Placement,
};
