//! The Logical Process trait implemented by every simulator module.

use cod_cb::{CbApi, CbError};
use cod_net::Micros;

use crate::batch::BatchScratch;

/// A Logical Process: an independently executable simulation module.
///
/// LPs never communicate with each other directly; they only call services on
/// their resident Communication Backbone ([`CbApi`]), which makes them
/// location-transparent — "each LP of COD does not have to concern about the
/// existence of other LPs" (paper §2.1).
pub trait LogicalProcess: Send {
    /// Human-readable module name (used for placement and diagnostics).
    fn name(&self) -> &str;

    /// Called once when the LP is plugged into a computer: declare publications,
    /// subscriptions and register object instances here.
    ///
    /// # Errors
    ///
    /// Returns an error if a CB service call fails (unknown class, ...).
    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError>;

    /// Called once per simulation frame with the frame period `dt` in seconds.
    ///
    /// # Errors
    ///
    /// Returns an error if a CB service call fails.
    fn step(&mut self, cb: &mut dyn CbApi, dt: f64) -> Result<(), CbError>;

    /// [`LogicalProcess::step`] with access to the cohort's [`BatchScratch`]
    /// when the session is advanced by the batched executive. Implementations
    /// MUST be bit-identical to `step` — the scratch may only carry work that
    /// is a pure function of state the module would otherwise recompute
    /// (memoized columns, hoisted tables), never anything that changes the
    /// result. Modules without cross-session shareable work keep this
    /// default, which ignores the scratch.
    ///
    /// # Errors
    ///
    /// Returns an error if a CB service call fails.
    fn step_batched(
        &mut self,
        cb: &mut dyn CbApi,
        dt: f64,
        _scratch: &mut BatchScratch,
    ) -> Result<(), CbError> {
        self.step(cb, dt)
    }

    /// The modeled CPU cost of the most recent `step` on a reference desktop
    /// PC of the paper's era. The cluster executive uses this to account for
    /// per-computer frame cost (and hence the achievable frame rate); modules
    /// whose cost is negligible may keep the default of zero.
    fn last_step_cost(&self) -> Micros {
        Micros::ZERO
    }

    /// Resets the LP's session-evolving state so the module starts the next
    /// session exactly as a freshly constructed one would, without re-running
    /// `init` (its publications, subscriptions and registered objects
    /// survive). `seed` is the new session's seed for modules that own a
    /// stochastic model. Modules without session state may keep the default
    /// no-op.
    ///
    /// # Errors
    ///
    /// Returns an error if a CB service call fails.
    fn begin_session(&mut self, cb: &mut dyn CbApi, seed: u64) -> Result<(), CbError> {
        let _ = (cb, seed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;

    impl LogicalProcess for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn init(&mut self, _cb: &mut dyn CbApi) -> Result<(), CbError> {
            Ok(())
        }
        fn step(&mut self, _cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
            Ok(())
        }
    }

    #[test]
    fn trait_is_object_safe_and_has_default_cost() {
        let lp: Box<dyn LogicalProcess> = Box::new(Nop);
        assert_eq!(lp.name(), "nop");
        assert_eq!(lp.last_step_cost(), Micros::ZERO);
    }
}
