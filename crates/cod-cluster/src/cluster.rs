//! The cluster executive: a deterministic frame-driven driver for the COD.

use cod_cb::{CbError, ClassRegistry, LpId};
use cod_net::{FaultPlan, LanConfig, LanStats, Micros, SharedLan, SimLan};
use serde::{Deserialize, Serialize};

use crate::batch::BatchScratch;
use crate::computer::Computer;
use crate::lp::LogicalProcess;
use crate::metrics::ClusterMetrics;

/// Index of a computer within a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComputerId(pub usize);

/// Configuration of the cluster executive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// LAN model connecting the computers.
    pub lan: LanConfig,
    /// Frame period of the executive (the paper targets 18–30 fps; the default
    /// is the 16 fps period the implemented system achieved).
    pub frame_period: Micros,
    /// Number of protocol rounds executed by [`Cluster::initialize`].
    pub init_rounds: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            lan: LanConfig::fast_ethernet(0xC0D),
            frame_period: Micros::from_micros_per_fps(16.0),
            init_rounds: 100,
        }
    }
}

/// Helper constructor on [`Micros`] values used by the cluster configuration.
trait FramePeriod {
    fn from_micros_per_fps(fps: f64) -> Micros;
}

impl FramePeriod for Micros {
    fn from_micros_per_fps(fps: f64) -> Micros {
        Micros((1_000_000.0 / fps).round() as u64)
    }
}

/// Converts a target frame rate in frames per second into a frame period.
///
/// ```
/// use cod_cluster::cluster::frame_period_for_fps;
/// assert_eq!(frame_period_for_fps(20.0).0, 50_000);
/// ```
pub fn frame_period_for_fps(fps: f64) -> Micros {
    assert!(fps > 0.0, "frame rate must be positive");
    Micros((1_000_000.0 / fps).round() as u64)
}

/// The step-level record returned by [`Cluster::run_frame`]: what one frame of
/// the executive did, for trace recorders and invariant checkers. The testkit
/// pulls one of these per frame instead of installing callback hooks, which
/// keeps replays deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Zero-based index of the executed frame.
    pub frame: u64,
    /// Simulation time at the *end* of the frame.
    pub now: Micros,
    /// Modeled CPU cost of the frame on each computer, in rack order.
    pub costs: Vec<(String, Micros)>,
}

/// The Cluster Of Desktop computers: computers + LAN + executive loop.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    fom: ClassRegistry,
    lan: SharedLan,
    computers: Vec<Computer>,
    now: Micros,
    metrics: ClusterMetrics,
}

impl Cluster {
    /// Creates an empty cluster sharing the given FOM.
    pub fn new(config: ClusterConfig, fom: ClassRegistry) -> Cluster {
        Cluster {
            config,
            fom,
            lan: SimLan::shared(config.lan),
            computers: Vec::new(),
            now: Micros::ZERO,
            metrics: ClusterMetrics::default(),
        }
    }

    /// Adds a computer (rack slot) to the cluster and returns its id.
    pub fn add_computer(&mut self, name: &str) -> ComputerId {
        let transport = SimLan::attach(&self.lan, name);
        self.computers.push(Computer::new(name, transport, self.fom.clone()));
        ComputerId(self.computers.len() - 1)
    }

    /// Adds a computer with an explicit relative CPU speed.
    pub fn add_computer_with_speed(&mut self, name: &str, cpu_speed: f64) -> ComputerId {
        let id = self.add_computer(name);
        self.computers[id.0].set_cpu_speed(cpu_speed);
        id
    }

    /// Plugs an LP into a computer, running its `init`.
    ///
    /// # Errors
    ///
    /// Returns an error if the LP's `init` fails.
    ///
    /// # Panics
    ///
    /// Panics if `computer` is not a valid id for this cluster.
    pub fn add_lp(
        &mut self,
        computer: ComputerId,
        lp: Box<dyn LogicalProcess>,
    ) -> Result<LpId, CbError> {
        self.computers[computer.0].add_lp(lp)
    }

    /// Unplugs an LP from a computer.
    ///
    /// # Errors
    ///
    /// Returns an error if the LP is not resident on that computer.
    pub fn remove_lp(
        &mut self,
        computer: ComputerId,
        lp: LpId,
    ) -> Result<Box<dyn LogicalProcess>, CbError> {
        self.computers[computer.0].remove_lp(lp)
    }

    /// Number of computers in the cluster.
    pub fn computer_count(&self) -> usize {
        self.computers.len()
    }

    /// Access to a computer.
    pub fn computer(&self, id: ComputerId) -> &Computer {
        &self.computers[id.0]
    }

    /// Mutable access to a computer.
    pub fn computer_mut(&mut self, id: ComputerId) -> &mut Computer {
        &mut self.computers[id.0]
    }

    /// Current simulation time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// The executive metrics accumulated so far.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Traffic counters of the cluster LAN.
    pub fn lan_stats(&self) -> LanStats {
        SimLan::stats(&self.lan)
    }

    /// Installs a fault-injection plan on the cluster LAN (see
    /// [`cod_net::FaultPlan`]); faults apply to every datagram sent after this
    /// call, drawn from the plan's own seeded RNG stream.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        SimLan::set_fault_plan(&self.lan, plan);
    }

    /// The configured frame period.
    pub fn frame_period(&self) -> Micros {
        self.config.frame_period
    }

    /// Total number of established virtual channels across every CB.
    pub fn established_channels(&self) -> usize {
        self.computers.iter().map(|c| c.kernel().established_channel_count()).sum()
    }

    /// Runs the initialization phase: CB kernels exchange subscription
    /// broadcasts and build virtual channels, without stepping any LP.
    ///
    /// # Errors
    ///
    /// Returns the first transport error raised by a kernel tick.
    pub fn initialize(&mut self) -> Result<(), CbError> {
        // Protocol rounds are shorter than a frame so discovery converges fast.
        let round = Micros::from_millis(10);
        for _ in 0..self.config.init_rounds {
            for computer in self.computers.iter_mut() {
                computer.kernel_mut().tick(self.now)?;
            }
            self.now += round;
            SimLan::advance_to(&self.lan, self.now);
        }
        Ok(())
    }

    /// Rewinds the whole cluster — LAN, CB kernels, resident LPs, executive
    /// clock and metrics — to the canonical session start at `epoch`, keeping
    /// the topology (computers, channels, registered objects) intact. Any
    /// installed fault plan is removed; install the next session's plan after
    /// this call.
    ///
    /// Called once at the end of [`crate::Cluster::initialize`]-driven
    /// construction and on every session reset, so recycled and freshly built
    /// clusters start sessions from bit-identical state.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by an LP's session reset.
    pub fn begin_session(&mut self, epoch: Micros, seed: u64) -> Result<(), CbError> {
        SimLan::begin_session(&self.lan, epoch, seed);
        for computer in self.computers.iter_mut() {
            computer.begin_session(epoch, seed)?;
        }
        self.now = epoch;
        self.metrics = ClusterMetrics::default();
        Ok(())
    }

    /// Runs one simulation frame across the whole cluster, returning the
    /// step-level [`FrameRecord`] for trace recorders and invariant checkers.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by an LP step or kernel tick.
    pub fn run_frame(&mut self) -> Result<FrameRecord, CbError> {
        let frame = self.metrics.frames_run;
        let dt = self.config.frame_period.as_secs_f64();
        let mut costs = Vec::with_capacity(self.computers.len());
        for computer in self.computers.iter_mut() {
            let cost = computer.step_frame(self.now, dt)?;
            costs.push((computer.name().to_owned(), cost));
        }
        self.now += self.config.frame_period;
        SimLan::advance_to(&self.lan, self.now);
        self.metrics.record_frame(self.config.frame_period, &costs);
        Ok(FrameRecord { frame, now: self.now, costs })
    }

    /// [`Cluster::run_frame`] with the cohort's batch scratch threaded to
    /// every computer, for sessions advanced in lockstep with same-shape
    /// siblings. Bit-identical to the scalar frame.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by an LP step or kernel tick.
    pub fn run_frame_batched(
        &mut self,
        scratch: &mut BatchScratch,
    ) -> Result<FrameRecord, CbError> {
        let frame = self.metrics.frames_run;
        let dt = self.config.frame_period.as_secs_f64();
        let mut costs = Vec::with_capacity(self.computers.len());
        for computer in self.computers.iter_mut() {
            let cost = computer.step_frame_batched(self.now, dt, scratch)?;
            costs.push((computer.name().to_owned(), cost));
        }
        self.now += self.config.frame_period;
        SimLan::advance_to(&self.lan, self.now);
        self.metrics.record_frame(self.config.frame_period, &costs);
        Ok(FrameRecord { frame, now: self.now, costs })
    }

    /// Runs `frames` simulation frames.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by an LP step or kernel tick.
    pub fn run_frames(&mut self, frames: usize) -> Result<(), CbError> {
        for _ in 0..frames {
            self.run_frame()?;
        }
        Ok(())
    }

    /// Runs frames until `duration` of simulated time has elapsed.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by an LP step or kernel tick.
    pub fn run_for(&mut self, duration: Micros) -> Result<(), CbError> {
        let deadline = self.now + duration;
        while self.now < deadline {
            self.run_frame()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_cb::{CbApi, ObjectClassId, ObjectId, Value};

    struct Producer {
        class: ObjectClassId,
        object: Option<ObjectId>,
        count: u32,
    }

    struct Consumer {
        class: ObjectClassId,
        received: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }

    impl LogicalProcess for Producer {
        fn name(&self) -> &str {
            "producer"
        }
        fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
            cb.publish_object_class(self.class)?;
            self.object = Some(cb.register_object(self.class)?);
            Ok(())
        }
        fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
            self.count += 1;
            let attr = cb.fom().attribute_id(self.class, "value").expect("attribute");
            cb.update_attributes(
                self.object.expect("init ran"),
                [(attr, Value::U32(self.count))].into(),
            )
        }
        fn last_step_cost(&self) -> Micros {
            Micros::from_millis(5)
        }
    }

    impl LogicalProcess for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }
        fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
            cb.subscribe_object_class(self.class)
        }
        fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
            let n = cb.reflections().len() as u32;
            self.received.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        }
        fn last_step_cost(&self) -> Micros {
            Micros::from_millis(2)
        }
    }

    fn sample_fom() -> (ClassRegistry, ObjectClassId) {
        let mut fom = ClassRegistry::new();
        let class = fom.register_object_class("Sample", &["value"]).unwrap();
        (fom, class)
    }

    #[test]
    fn distributed_producer_consumer_exchange_state() {
        let (fom, class) = sample_fom();
        let received = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        let a = cluster.add_computer("producer-pc");
        let b = cluster.add_computer("consumer-pc");
        cluster.add_lp(a, Box::new(Producer { class, object: None, count: 0 })).unwrap();
        cluster
            .add_lp(b, Box::new(Consumer { class, received: std::sync::Arc::clone(&received) }))
            .unwrap();

        cluster.initialize().unwrap();
        assert_eq!(cluster.established_channels(), 2, "one channel, counted on both ends");

        cluster.run_frames(50).unwrap();
        let got = received.load(std::sync::atomic::Ordering::Relaxed);
        assert!(got >= 40, "consumer only saw {got} updates");
        assert_eq!(cluster.metrics().frames_run, 50);
        assert!(cluster.lan_stats().datagrams_sent > 0);
    }

    #[test]
    fn co_resident_modules_do_not_use_the_lan_for_updates() {
        let (fom, class) = sample_fom();
        let received = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        let only = cluster.add_computer("single-pc");
        cluster.add_lp(only, Box::new(Producer { class, object: None, count: 0 })).unwrap();
        cluster
            .add_lp(only, Box::new(Consumer { class, received: std::sync::Arc::clone(&received) }))
            .unwrap();
        cluster.initialize().unwrap();
        let baseline = cluster.lan_stats().datagrams_sent;
        cluster.run_frames(20).unwrap();
        assert_eq!(received.load(std::sync::atomic::Ordering::Relaxed), 20);
        let stats = cluster.computer(only).kernel().stats().clone();
        assert_eq!(stats.updates_sent_remote, 0);
        assert_eq!(stats.updates_routed_locally, 20);
        // Only protocol re-advertisements may have touched the LAN, no data.
        assert!(cluster.lan_stats().datagrams_sent - baseline <= 2);
    }

    #[test]
    fn metrics_reflect_per_computer_costs() {
        let (fom, class) = sample_fom();
        let received = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        let a = cluster.add_computer("producer-pc");
        let b = cluster.add_computer_with_speed("consumer-pc", 2.0);
        cluster.add_lp(a, Box::new(Producer { class, object: None, count: 0 })).unwrap();
        cluster.add_lp(b, Box::new(Consumer { class, received })).unwrap();
        cluster.initialize().unwrap();
        cluster.run_frames(10).unwrap();
        let m = cluster.metrics();
        assert_eq!(m.computer_cost["producer-pc"], Micros::from_millis(50));
        // Consumer runs on a 2x computer: 2 ms * 10 / 2 = 10 ms.
        assert_eq!(m.computer_cost["consumer-pc"], Micros::from_millis(10));
        assert_eq!(m.max_frame_cost, Micros::from_millis(5));
        assert_eq!(m.max_sequential_frame_cost, Micros::from_millis(6));
    }

    #[test]
    fn frame_period_helper() {
        assert_eq!(frame_period_for_fps(16.0), Micros(62_500));
        assert_eq!(frame_period_for_fps(30.0), Micros(33_333));
    }

    #[test]
    #[should_panic]
    fn zero_fps_rejected() {
        let _ = frame_period_for_fps(0.0);
    }

    #[test]
    fn run_frame_returns_step_records() {
        let (fom, class) = sample_fom();
        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        let a = cluster.add_computer("producer-pc");
        cluster.add_lp(a, Box::new(Producer { class, object: None, count: 0 })).unwrap();
        cluster.initialize().unwrap();
        let first = cluster.run_frame().unwrap();
        assert_eq!(first.frame, 0);
        assert_eq!(first.costs.len(), 1);
        assert_eq!(first.costs[0], ("producer-pc".to_owned(), Micros::from_millis(5)));
        let second = cluster.run_frame().unwrap();
        assert_eq!(second.frame, 1);
        assert_eq!(second.now, cluster.now());
    }

    #[test]
    fn fault_plan_reaches_the_cluster_lan() {
        let (fom, class) = sample_fom();
        let received = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        let a = cluster.add_computer("producer-pc");
        let b = cluster.add_computer("consumer-pc");
        cluster.add_lp(a, Box::new(Producer { class, object: None, count: 0 })).unwrap();
        cluster
            .add_lp(b, Box::new(Consumer { class, received: std::sync::Arc::clone(&received) }))
            .unwrap();
        cluster.initialize().unwrap();
        cluster.set_fault_plan(cod_net::FaultPlan::seeded(1).with_drop_probability(0.5));
        cluster.run_frames(40).unwrap();
        let stats = cluster.lan_stats();
        assert!(stats.fault_drops > 0, "no fault drops recorded");
        // The exchange still makes progress despite the injected loss.
        assert!(received.load(std::sync::atomic::Ordering::Relaxed) > 5);
    }

    #[test]
    fn run_for_advances_to_deadline() {
        let (fom, _class) = sample_fom();
        let mut cluster = Cluster::new(ClusterConfig::default(), fom);
        cluster.add_computer("idle-pc");
        cluster.initialize().unwrap();
        let start = cluster.now();
        cluster.run_for(Micros::from_secs(1)).unwrap();
        assert!(cluster.now() >= start + Micros::from_secs(1));
    }
}
