//! Triangle meshes.

use serde::{Deserialize, Serialize};
use sim_math::{Transform, Vec3};

use crate::bounds::Aabb;

/// An RGB color with 8-bit channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Color {
    pub r: u8,
    pub g: u8,
    pub b: u8,
}

impl Color {
    /// Creates a color from channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b }
    }

    /// A medium gray.
    pub const GRAY: Color = Color::new(128, 128, 128);
    /// Construction-site yellow (crane body).
    pub const CRANE_YELLOW: Color = Color::new(230, 180, 30);
    /// Ground brown.
    pub const GROUND: Color = Color::new(140, 110, 70);
    /// Safety red (bars, alarms).
    pub const SAFETY_RED: Color = Color::new(200, 40, 40);
    /// Sky blue.
    pub const SKY: Color = Color::new(120, 170, 230);
    /// Concrete.
    pub const CONCRETE: Color = Color::new(180, 180, 175);

    /// Scales the brightness of the color by `f` in `[0, 1]`.
    pub fn scaled(self, f: f64) -> Color {
        let f = f.clamp(0.0, 1.0);
        Color::new(
            (self.r as f64 * f).round() as u8,
            (self.g as f64 * f).round() as u8,
            (self.b as f64 * f).round() as u8,
        )
    }
}

/// A triangle mesh with one flat color.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Mesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Triangles as triplets of vertex indices (counter-clockwise front faces).
    pub triangles: Vec<[u32; 3]>,
    /// Flat color of the mesh.
    pub color: Color,
}

impl Mesh {
    /// Creates an empty mesh with a color.
    pub fn new(color: Color) -> Mesh {
        Mesh { vertices: Vec::new(), triangles: Vec::new(), color }
    }

    /// Number of triangles (the "polygons" of the paper's §4 budget).
    pub fn polygon_count(&self) -> usize {
        self.triangles.len()
    }

    /// Adds a vertex and returns its index.
    pub fn push_vertex(&mut self, v: Vec3) -> u32 {
        self.vertices.push(v);
        (self.vertices.len() - 1) as u32
    }

    /// Adds a triangle from vertex indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn push_triangle(&mut self, a: u32, b: u32, c: u32) {
        let n = self.vertices.len() as u32;
        assert!(a < n && b < n && c < n, "triangle index out of range");
        self.triangles.push([a, b, c]);
    }

    /// The world-space corners of triangle `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn triangle(&self, i: usize) -> [Vec3; 3] {
        let [a, b, c] = self.triangles[i];
        [self.vertices[a as usize], self.vertices[b as usize], self.vertices[c as usize]]
    }

    /// The geometric normal of triangle `i` (unit length; +Y for degenerate triangles).
    pub fn triangle_normal(&self, i: usize) -> Vec3 {
        let [a, b, c] = self.triangle(i);
        (b - a).cross(c - a).normalized_or(Vec3::unit_y())
    }

    /// Axis-aligned bounding box of the mesh (empty box for an empty mesh).
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(self.vertices.iter().copied())
    }

    /// Returns a copy of the mesh with every vertex transformed.
    pub fn transformed(&self, transform: &Transform) -> Mesh {
        Mesh {
            vertices: self.vertices.iter().map(|v| transform.apply(*v)).collect(),
            triangles: self.triangles.clone(),
            color: self.color,
        }
    }

    /// Appends another mesh (its color is discarded in favour of `self`'s).
    pub fn merge(&mut self, other: &Mesh) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.triangles
            .extend(other.triangles.iter().map(|[a, b, c]| [a + base, b + base, c + base]));
    }

    /// Total surface area of the mesh.
    pub fn surface_area(&self) -> f64 {
        (0..self.triangles.len())
            .map(|i| {
                let [a, b, c] = self.triangle(i);
                (b - a).cross(c - a).length() * 0.5
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_triangle() -> Mesh {
        let mut m = Mesh::new(Color::GRAY);
        let a = m.push_vertex(Vec3::ZERO);
        let b = m.push_vertex(Vec3::unit_x());
        let c = m.push_vertex(Vec3::unit_z());
        m.push_triangle(a, b, c);
        m
    }

    #[test]
    fn polygon_count_and_area() {
        let m = unit_triangle();
        assert_eq!(m.polygon_count(), 1);
        assert!((m.surface_area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normal_is_unit_and_perpendicular() {
        let m = unit_triangle();
        let n = m.triangle_normal(0);
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert!(n.dot(Vec3::unit_x()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triangle_rejected() {
        let mut m = Mesh::new(Color::GRAY);
        m.push_vertex(Vec3::ZERO);
        m.push_triangle(0, 1, 2);
    }

    #[test]
    fn merge_offsets_indices() {
        let mut a = unit_triangle();
        let b = unit_triangle();
        a.merge(&b);
        assert_eq!(a.polygon_count(), 2);
        assert_eq!(a.triangles[1], [3, 4, 5]);
        assert_eq!(a.vertices.len(), 6);
    }

    #[test]
    fn transform_moves_bounds() {
        let m = unit_triangle();
        let moved = m.transformed(&Transform::from_translation(Vec3::new(10.0, 0.0, 0.0)));
        let aabb = moved.aabb();
        assert!((aabb.min.x - 10.0).abs() < 1e-12);
        assert!((aabb.max.x - 11.0).abs() < 1e-12);
    }

    #[test]
    fn color_scaling_clamps() {
        let c = Color::new(100, 200, 50).scaled(0.5);
        assert_eq!(c, Color::new(50, 100, 25));
        assert_eq!(Color::new(10, 10, 10).scaled(2.0), Color::new(10, 10, 10));
    }
}
