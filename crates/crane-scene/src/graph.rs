//! A small scene graph with hierarchical transforms.

use serde::{Deserialize, Serialize};
use sim_math::Transform;

use crate::bounds::Aabb;
use crate::mesh::Mesh;

/// Index of a node within a [`SceneGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    name: String,
    local: Transform,
    mesh: Option<usize>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// A scene graph: named nodes with local transforms, optionally referencing meshes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SceneGraph {
    nodes: Vec<Node>,
    meshes: Vec<Mesh>,
}

/// One renderable instance produced by flattening the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshInstance<'a> {
    /// The node that produced the instance.
    pub node: NodeId,
    /// Node name.
    pub name: &'a str,
    /// World transform of the node.
    pub world: Transform,
    /// The referenced mesh.
    pub mesh: &'a Mesh,
}

impl SceneGraph {
    /// Creates an empty scene graph.
    pub fn new() -> SceneGraph {
        SceneGraph::default()
    }

    /// Registers a mesh and returns its index.
    pub fn add_mesh(&mut self, mesh: Mesh) -> usize {
        self.meshes.push(mesh);
        self.meshes.len() - 1
    }

    /// The registered meshes.
    pub fn meshes(&self) -> &[Mesh] {
        &self.meshes
    }

    /// Adds a node. `parent = None` creates a root node.
    ///
    /// # Panics
    ///
    /// Panics if `parent` or `mesh` refer to entries that do not exist.
    pub fn add_node(
        &mut self,
        name: &str,
        parent: Option<NodeId>,
        local: Transform,
        mesh: Option<usize>,
    ) -> NodeId {
        if let Some(p) = parent {
            assert!(p.0 < self.nodes.len(), "unknown parent node");
        }
        if let Some(m) = mesh {
            assert!(m < self.meshes.len(), "unknown mesh index");
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { name: name.to_owned(), local, mesh, parent, children: Vec::new() });
        if let Some(p) = parent {
            self.nodes[p.0].children.push(id);
        }
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Name of a node.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Finds the first node with the given name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// The local transform of a node.
    pub fn local_transform(&self, node: NodeId) -> Transform {
        self.nodes[node.0].local
    }

    /// Replaces the local transform of a node (used to animate the crane, the
    /// cargo and the hook every frame).
    pub fn set_local_transform(&mut self, node: NodeId, local: Transform) {
        self.nodes[node.0].local = local;
    }

    /// The world transform of a node (composition of its ancestors).
    pub fn world_transform(&self, node: NodeId) -> Transform {
        let mut chain = Vec::new();
        let mut cursor = Some(node);
        while let Some(id) = cursor {
            chain.push(self.nodes[id.0].local);
            cursor = self.nodes[id.0].parent;
        }
        let mut world = Transform::identity();
        for local in chain.into_iter().rev() {
            world = world.then(&local);
        }
        world
    }

    /// Flattens the graph into world-space mesh instances.
    pub fn instances(&self) -> Vec<MeshInstance<'_>> {
        (0..self.nodes.len())
            .filter_map(|i| {
                let node = &self.nodes[i];
                node.mesh.map(|mesh_index| MeshInstance {
                    node: NodeId(i),
                    name: node.name.as_str(),
                    world: self.world_transform(NodeId(i)),
                    mesh: &self.meshes[mesh_index],
                })
            })
            .collect()
    }

    /// Total number of polygons referenced by the graph's instances.
    pub fn polygon_count(&self) -> usize {
        self.instances().iter().map(|i| i.mesh.polygon_count()).sum()
    }

    /// World-space bounding box of one instance-bearing node.
    pub fn instance_aabb(&self, node: NodeId) -> Option<Aabb> {
        let mesh_index = self.nodes[node.0].mesh?;
        let world = self.world_transform(node);
        Some(Aabb::from_points(self.meshes[mesh_index].vertices.iter().map(|v| world.apply(*v))))
    }

    /// World-space bounding box of the whole scene.
    pub fn scene_aabb(&self) -> Aabb {
        let mut aabb = Aabb::empty();
        for i in 0..self.nodes.len() {
            if let Some(node_aabb) = self.instance_aabb(NodeId(i)) {
                aabb = aabb.union(&node_aabb);
            }
        }
        aabb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Color;
    use crate::primitives::cuboid;
    use sim_math::{Quat, Vec3};

    fn simple_graph() -> (SceneGraph, NodeId, NodeId) {
        let mut g = SceneGraph::new();
        let body = g.add_mesh(cuboid(Vec3::ZERO, Vec3::splat(1.0), Color::CRANE_YELLOW));
        let root = g.add_node(
            "chassis",
            None,
            Transform::from_translation(Vec3::new(10.0, 0.0, 0.0)),
            Some(body),
        );
        let child = g.add_node(
            "boom",
            Some(root),
            Transform::from_translation(Vec3::new(0.0, 2.0, 0.0)),
            Some(body),
        );
        (g, root, child)
    }

    #[test]
    fn world_transform_composes_ancestors() {
        let (g, _root, child) = simple_graph();
        let world = g.world_transform(child);
        assert!(world.translation.distance(Vec3::new(10.0, 2.0, 0.0)) < 1e-12);
    }

    #[test]
    fn instances_and_polygon_count() {
        let (g, _, _) = simple_graph();
        let instances = g.instances();
        assert_eq!(instances.len(), 2);
        assert_eq!(g.polygon_count(), 24);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn find_and_animate() {
        let (mut g, root, child) = simple_graph();
        assert_eq!(g.find("boom"), Some(child));
        assert_eq!(g.find("missing"), None);
        g.set_local_transform(
            root,
            Transform::new(
                Vec3::new(20.0, 0.0, 0.0),
                Quat::from_axis_angle(Vec3::unit_y(), std::f64::consts::FRAC_PI_2),
            ),
        );
        let world = g.world_transform(child);
        assert!(world.translation.distance(Vec3::new(20.0, 2.0, 0.0)) < 1e-9);
    }

    #[test]
    fn scene_bounds_cover_all_instances() {
        let (g, root, child) = simple_graph();
        let bounds = g.scene_aabb();
        assert!(bounds.contains(g.world_transform(root).translation));
        assert!(bounds.contains(g.world_transform(child).translation));
    }

    #[test]
    #[should_panic]
    fn unknown_parent_rejected() {
        let mut g = SceneGraph::new();
        g.add_node("orphan", Some(NodeId(7)), Transform::identity(), None);
    }
}
