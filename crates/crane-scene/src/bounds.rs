//! Axis-aligned bounding boxes.

use serde::{Deserialize, Serialize};
use sim_math::Vec3;

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::empty()
    }
}

impl Aabb {
    /// An empty (inverted) box that unions correctly with any point.
    pub fn empty() -> Aabb {
        Aabb { min: Vec3::splat(f64::INFINITY), max: Vec3::splat(f64::NEG_INFINITY) }
    }

    /// A box from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics if any component of `min` exceeds the corresponding component of `max`.
    pub fn new(min: Vec3, max: Vec3) -> Aabb {
        assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z, "inverted AABB");
        Aabb { min, max }
    }

    /// The tightest box containing all `points`.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Aabb {
        let mut aabb = Aabb::empty();
        for p in points {
            aabb.expand(p);
        }
        aabb
    }

    /// A box centred at `center` with half-extents `half`.
    pub fn from_center_half_extents(center: Vec3, half: Vec3) -> Aabb {
        Aabb { min: center - half, max: center + half }
    }

    /// Whether the box contains no points.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Expands the box to include a point.
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// The union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Grows the box by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb { min: self.min - Vec3::splat(margin), max: self.max + Vec3::splat(margin) }
    }

    /// Box center.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Box half-extents.
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Radius of the bounding sphere centred at [`Aabb::center`].
    pub fn bounding_radius(&self) -> f64 {
        self.half_extents().length()
    }

    /// Whether the point is inside (inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Whether two boxes overlap (touching counts as overlap).
    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// The point of the box closest to `p`.
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
            p.z.clamp(self.min.z, self.max.z),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_box_unions_correctly() {
        let mut b = Aabb::empty();
        assert!(b.is_empty());
        b.expand(Vec3::new(1.0, 2.0, 3.0));
        assert!(!b.is_empty());
        assert_eq!(b.min, b.max);
    }

    #[test]
    fn intersection_and_containment() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let b = Aabb::new(Vec3::splat(1.0), Vec3::splat(3.0));
        let c = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains(Vec3::splat(1.5)));
        assert!(!a.contains(Vec3::splat(2.5)));
        assert!(!a.intersects(&Aabb::empty()));
    }

    #[test]
    fn closest_point_clamps() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(a.closest_point(Vec3::new(5.0, 0.5, -3.0)), Vec3::new(1.0, 0.5, 0.0));
    }

    #[test]
    fn inflate_and_radius() {
        let a = Aabb::from_center_half_extents(Vec3::ZERO, Vec3::splat(1.0));
        assert!((a.bounding_radius() - 3f64.sqrt()).abs() < 1e-12);
        let big = a.inflated(1.0);
        assert_eq!(big.half_extents(), Vec3::splat(2.0));
    }

    #[test]
    #[should_panic]
    fn inverted_new_rejected() {
        let _ = Aabb::new(Vec3::splat(1.0), Vec3::ZERO);
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(ax in -10.0..10.0f64, ay in -10.0..10.0f64, az in -10.0..10.0f64,
                                    bx in -10.0..10.0f64, by in -10.0..10.0f64, bz in -10.0..10.0f64) {
            let a = Aabb::from_points([Vec3::new(ax, ay, az), Vec3::ZERO]);
            let b = Aabb::from_points([Vec3::new(bx, by, bz), Vec3::splat(1.0)]);
            let u = a.union(&b);
            prop_assert!(u.contains(a.center()));
            prop_assert!(u.contains(b.center()));
            prop_assert!(u.intersects(&a) && u.intersects(&b));
        }
    }
}
