//! Primitive mesh generators used to assemble the training world.

use sim_math::Vec3;
use std::f64::consts::TAU;

use crate::mesh::{Color, Mesh};

/// An axis-aligned box centred at `center` with full extents `size`.
///
/// # Panics
///
/// Panics if any component of `size` is not positive.
pub fn cuboid(center: Vec3, size: Vec3, color: Color) -> Mesh {
    assert!(size.x > 0.0 && size.y > 0.0 && size.z > 0.0, "box size must be positive");
    let h = size * 0.5;
    let mut m = Mesh::new(color);
    let corners = [
        Vec3::new(-h.x, -h.y, -h.z),
        Vec3::new(h.x, -h.y, -h.z),
        Vec3::new(h.x, h.y, -h.z),
        Vec3::new(-h.x, h.y, -h.z),
        Vec3::new(-h.x, -h.y, h.z),
        Vec3::new(h.x, -h.y, h.z),
        Vec3::new(h.x, h.y, h.z),
        Vec3::new(-h.x, h.y, h.z),
    ];
    for c in corners {
        m.push_vertex(center + c);
    }
    // 12 triangles, outward-facing (counter-clockwise seen from outside).
    let quads: [[u32; 4]; 6] = [
        [4, 5, 6, 7], // +Z
        [1, 0, 3, 2], // -Z
        [5, 1, 2, 6], // +X
        [0, 4, 7, 3], // -X
        [7, 6, 2, 3], // +Y
        [0, 1, 5, 4], // -Y
    ];
    for [a, b, c, d] in quads {
        m.push_triangle(a, b, c);
        m.push_triangle(a, c, d);
    }
    m
}

/// A vertical (Y-axis) closed cylinder centred at `center`.
///
/// # Panics
///
/// Panics if `radius` or `height` is not positive or `segments < 3`.
pub fn cylinder(center: Vec3, radius: f64, height: f64, segments: u32, color: Color) -> Mesh {
    assert!(radius > 0.0 && height > 0.0, "cylinder dimensions must be positive");
    assert!(segments >= 3, "a cylinder needs at least three segments");
    let mut m = Mesh::new(color);
    let half = height / 2.0;
    let top_center = m.push_vertex(center + Vec3::new(0.0, half, 0.0));
    let bottom_center = m.push_vertex(center + Vec3::new(0.0, -half, 0.0));
    let mut top_ring = Vec::new();
    let mut bottom_ring = Vec::new();
    for i in 0..segments {
        let angle = TAU * i as f64 / segments as f64;
        let (s, c) = angle.sin_cos();
        let offset = Vec3::new(radius * c, 0.0, radius * s);
        top_ring.push(m.push_vertex(center + offset + Vec3::new(0.0, half, 0.0)));
        bottom_ring.push(m.push_vertex(center + offset - Vec3::new(0.0, half, 0.0)));
    }
    for i in 0..segments as usize {
        let j = (i + 1) % segments as usize;
        // Side quad.
        m.push_triangle(bottom_ring[i], bottom_ring[j], top_ring[j]);
        m.push_triangle(bottom_ring[i], top_ring[j], top_ring[i]);
        // Caps.
        m.push_triangle(top_center, top_ring[j], top_ring[i]);
        m.push_triangle(bottom_center, bottom_ring[i], bottom_ring[j]);
    }
    m
}

/// A flat rectangular plate on the XZ plane at height `y`, subdivided into
/// `nx` by `nz` cells (each cell is two triangles).
///
/// # Panics
///
/// Panics if `nx` or `nz` is zero or the extents are not positive.
pub fn ground_plane(
    center: Vec3,
    size_x: f64,
    size_z: f64,
    nx: u32,
    nz: u32,
    color: Color,
) -> Mesh {
    assert!(size_x > 0.0 && size_z > 0.0, "plane extents must be positive");
    assert!(nx > 0 && nz > 0, "plane must have at least one cell per axis");
    let mut m = Mesh::new(color);
    for iz in 0..=nz {
        for ix in 0..=nx {
            let x = center.x - size_x / 2.0 + size_x * ix as f64 / nx as f64;
            let z = center.z - size_z / 2.0 + size_z * iz as f64 / nz as f64;
            m.push_vertex(Vec3::new(x, center.y, z));
        }
    }
    let stride = nx + 1;
    for iz in 0..nz {
        for ix in 0..nx {
            let a = iz * stride + ix;
            let b = a + 1;
            let c = a + stride;
            let d = c + 1;
            m.push_triangle(a, b, d);
            m.push_triangle(a, d, c);
        }
    }
    m
}

/// A thin horizontal bar (obstacle of the licensing course, Figure 9) spanning
/// from `from` to `to` with a square cross-section of `thickness`.
pub fn obstacle_bar(from: Vec3, to: Vec3, thickness: f64, color: Color) -> Mesh {
    let center = (from + to) * 0.5;
    let along = to - from;
    let length = along.length().max(thickness);
    // The bars of the course run horizontally; orient the long axis along X or Z,
    // whichever is closer, which keeps the mesh axis-aligned and cheap.
    let size = if along.x.abs() >= along.z.abs() {
        Vec3::new(length, thickness, thickness)
    } else {
        Vec3::new(thickness, thickness, length)
    };
    cuboid(center, size, color)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_math::Vec3;

    #[test]
    fn cuboid_counts_and_bounds() {
        let m = cuboid(Vec3::new(1.0, 2.0, 3.0), Vec3::new(2.0, 4.0, 6.0), Color::GRAY);
        assert_eq!(m.polygon_count(), 12);
        assert_eq!(m.vertices.len(), 8);
        let aabb = m.aabb();
        assert_eq!(aabb.min, Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(aabb.max, Vec3::new(2.0, 4.0, 6.0));
        // Surface area of a 2x4x6 box = 2*(8+12+24) = 88.
        assert!((m.surface_area() - 88.0).abs() < 1e-9);
    }

    #[test]
    fn cuboid_normals_point_outwards() {
        let m = cuboid(Vec3::ZERO, Vec3::splat(2.0), Color::GRAY);
        for i in 0..m.polygon_count() {
            let [a, b, c] = m.triangle(i);
            let centroid = (a + b + c) / 3.0;
            let n = m.triangle_normal(i);
            assert!(n.dot(centroid) > 0.0, "triangle {i} faces inwards");
        }
    }

    #[test]
    fn cylinder_counts() {
        let m = cylinder(Vec3::ZERO, 1.0, 2.0, 12, Color::GRAY);
        // Per segment: 2 side + 2 cap triangles.
        assert_eq!(m.polygon_count(), 4 * 12);
        let aabb = m.aabb();
        assert!((aabb.max.y - 1.0).abs() < 1e-12);
        assert!((aabb.min.y + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ground_plane_counts() {
        let m = ground_plane(Vec3::ZERO, 100.0, 50.0, 10, 5, Color::GROUND);
        assert_eq!(m.vertices.len(), 11 * 6);
        assert_eq!(m.polygon_count(), 10 * 5 * 2);
        assert!((m.surface_area() - 100.0 * 50.0).abs() < 1e-6);
    }

    #[test]
    fn obstacle_bar_orients_along_longest_axis() {
        let along_x = obstacle_bar(Vec3::ZERO, Vec3::new(4.0, 0.0, 0.0), 0.2, Color::SAFETY_RED);
        let aabb = along_x.aabb();
        assert!((aabb.max.x - aabb.min.x) > (aabb.max.z - aabb.min.z));
        let along_z = obstacle_bar(Vec3::ZERO, Vec3::new(0.0, 0.0, 4.0), 0.2, Color::SAFETY_RED);
        let aabb = along_z.aabb();
        assert!((aabb.max.z - aabb.min.z) > (aabb.max.x - aabb.min.x));
    }

    #[test]
    #[should_panic]
    fn degenerate_cylinder_rejected() {
        let _ = cylinder(Vec3::ZERO, 1.0, 1.0, 2, Color::GRAY);
    }
}
