//! Terrain mesh generation from a height function.

use sim_math::Vec3;

use crate::mesh::{Color, Mesh};

/// Builds a terrain mesh over the rectangle `size_x` by `size_z` centred at
/// `(center_x, center_z)`, sampling `height(x, z)` at `(nx + 1) * (nz + 1)`
/// grid points.
///
/// # Panics
///
/// Panics if `nx` or `nz` is zero or an extent is not positive.
pub fn heightfield_mesh<F>(
    center_x: f64,
    center_z: f64,
    size_x: f64,
    size_z: f64,
    nx: u32,
    nz: u32,
    color: Color,
    height: F,
) -> Mesh
where
    F: Fn(f64, f64) -> f64,
{
    assert!(size_x > 0.0 && size_z > 0.0, "terrain extents must be positive");
    assert!(nx > 0 && nz > 0, "terrain must have at least one cell per axis");
    let mut m = Mesh::new(color);
    for iz in 0..=nz {
        for ix in 0..=nx {
            let x = center_x - size_x / 2.0 + size_x * ix as f64 / nx as f64;
            let z = center_z - size_z / 2.0 + size_z * iz as f64 / nz as f64;
            m.push_vertex(Vec3::new(x, height(x, z), z));
        }
    }
    let stride = nx + 1;
    for iz in 0..nz {
        for ix in 0..nx {
            let a = iz * stride + ix;
            let b = a + 1;
            let c = a + stride;
            let d = c + 1;
            m.push_triangle(a, b, d);
            m.push_triangle(a, d, c);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_heightfield_matches_plane() {
        let m = heightfield_mesh(0.0, 0.0, 10.0, 10.0, 4, 4, Color::GROUND, |_, _| 0.0);
        assert_eq!(m.polygon_count(), 32);
        assert!((m.surface_area() - 100.0).abs() < 1e-9);
        assert!(m.vertices.iter().all(|v| v.y == 0.0));
    }

    #[test]
    fn heights_follow_function() {
        let m =
            heightfield_mesh(0.0, 0.0, 20.0, 20.0, 10, 10, Color::GROUND, |x, z| 0.1 * x + 0.2 * z);
        for v in &m.vertices {
            assert!((v.y - (0.1 * v.x + 0.2 * v.z)).abs() < 1e-12);
        }
    }

    #[test]
    fn hills_increase_surface_area() {
        let flat = heightfield_mesh(0.0, 0.0, 50.0, 50.0, 20, 20, Color::GROUND, |_, _| 0.0);
        let hilly = heightfield_mesh(0.0, 0.0, 50.0, 50.0, 20, 20, Color::GROUND, |x, z| {
            2.0 * (x * 0.3).sin() * (z * 0.3).cos()
        });
        assert!(hilly.surface_area() > flat.surface_area());
    }

    #[test]
    #[should_panic]
    fn zero_cells_rejected() {
        let _ = heightfield_mesh(0.0, 0.0, 1.0, 1.0, 0, 4, Color::GROUND, |_, _| 0.0);
    }
}
