//! The training scenario and licensing-exam course.
//!
//! Figures 8 and 9 of the paper describe the evaluation scenario: the trainee
//! drives the mobile crane from the starting point to the testing ground, lifts
//! a cargo located in a circular zone, moves it along a trajectory obstructed
//! by bars to the far end and back, and is penalized for every bar collision.

use serde::{Deserialize, Serialize};
use sim_math::Vec3;

/// One obstacle bar placed across the cargo trajectory (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bar {
    /// One end of the bar.
    pub from: Vec3,
    /// The other end of the bar.
    pub to: Vec3,
    /// Thickness of the bar (square cross-section).
    pub thickness: f64,
}

impl Bar {
    /// Midpoint of the bar.
    pub fn center(&self) -> Vec3 {
        (self.from + self.to) * 0.5
    }

    /// Distance from a point to the bar's axis segment.
    pub fn distance_to(&self, p: Vec3) -> f64 {
        let ab = self.to - self.from;
        let denom = ab.length_squared();
        if denom <= f64::EPSILON {
            return p.distance(self.from);
        }
        let t = ((p - self.from).dot(ab) / denom).clamp(0.0, 1.0);
        p.distance(self.from + ab * t)
    }
}

/// Phases of the licensing exam, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CoursePhase {
    /// Drive the crane from the start point to the testing ground.
    Driving,
    /// Position the boom and lift the cargo out of the pickup circle.
    Lifting,
    /// Carry the cargo along the barred trajectory to the far turn-around zone.
    Traverse,
    /// Bring the cargo back and set it down in the original circle.
    Return,
    /// The exam is finished.
    Complete,
}

impl CoursePhase {
    /// The phase that follows this one (Complete is terminal).
    pub fn next(self) -> CoursePhase {
        match self {
            CoursePhase::Driving => CoursePhase::Lifting,
            CoursePhase::Lifting => CoursePhase::Traverse,
            CoursePhase::Traverse => CoursePhase::Return,
            CoursePhase::Return | CoursePhase::Complete => CoursePhase::Complete,
        }
    }
}

/// The full course layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Course {
    /// Where the crane starts (parking area).
    pub start_position: Vec3,
    /// Initial heading of the crane in radians (yaw about +Y).
    pub start_heading: f64,
    /// Waypoints of the driving leg from the start to the testing ground.
    pub driving_waypoints: Vec<Vec3>,
    /// Centre of the circular cargo pickup zone (white circle of Figure 9).
    pub pickup_center: Vec3,
    /// Radius of the pickup/set-down circle.
    pub pickup_radius: f64,
    /// Centre of the far turn-around zone on the right side of the course.
    pub turnaround_center: Vec3,
    /// Radius of the turn-around zone.
    pub turnaround_radius: f64,
    /// Waypoints of the cargo trajectory from pickup to turn-around.
    pub trajectory: Vec<Vec3>,
    /// Bars obstructing the trajectory.
    pub bars: Vec<Bar>,
    /// Height above ground the cargo must be carried at (metres).
    pub carry_height: f64,
}

impl Course {
    /// The standard licensing-exam course used by the training centre.
    ///
    /// Dimensions follow the mobile-crane licensing practice course: a roughly
    /// 40 m testing ground with the pickup circle on the left, the turn-around
    /// zone on the right and three bars across the cargo path.
    pub fn licensing_exam() -> Course {
        let pickup = Vec3::new(-15.0, 0.0, 60.0);
        let turnaround = Vec3::new(15.0, 0.0, 60.0);
        let trajectory = vec![
            pickup,
            Vec3::new(-10.0, 0.0, 58.0),
            Vec3::new(-5.0, 0.0, 57.0),
            Vec3::new(0.0, 0.0, 57.0),
            Vec3::new(5.0, 0.0, 57.0),
            Vec3::new(10.0, 0.0, 58.0),
            turnaround,
        ];
        let bar_y = 2.0;
        let bars = vec![
            Bar {
                from: Vec3::new(-7.5, bar_y, 52.0),
                to: Vec3::new(-7.5, bar_y, 62.0),
                thickness: 0.25,
            },
            Bar {
                from: Vec3::new(0.0, bar_y, 52.0),
                to: Vec3::new(0.0, bar_y, 62.0),
                thickness: 0.25,
            },
            Bar {
                from: Vec3::new(7.5, bar_y, 52.0),
                to: Vec3::new(7.5, bar_y, 62.0),
                thickness: 0.25,
            },
        ];
        Course {
            start_position: Vec3::new(0.0, 0.0, -40.0),
            start_heading: 0.0,
            driving_waypoints: vec![
                Vec3::new(0.0, 0.0, -40.0),
                Vec3::new(0.0, 0.0, -20.0),
                Vec3::new(-5.0, 0.0, 0.0),
                Vec3::new(-5.0, 0.0, 20.0),
                Vec3::new(0.0, 0.0, 40.0),
                Vec3::new(0.0, 0.0, 50.0),
            ],
            pickup_center: pickup,
            pickup_radius: 2.5,
            turnaround_center: turnaround,
            turnaround_radius: 2.5,
            trajectory,
            bars,
            carry_height: 3.0,
        }
    }

    /// Whether a ground-plane position is inside the pickup circle.
    pub fn in_pickup_zone(&self, p: Vec3) -> bool {
        p.horizontal().distance(self.pickup_center.horizontal()) <= self.pickup_radius
    }

    /// Whether a ground-plane position is inside the turn-around circle.
    pub fn in_turnaround_zone(&self, p: Vec3) -> bool {
        p.horizontal().distance(self.turnaround_center.horizontal()) <= self.turnaround_radius
    }

    /// Distance from `p` to the nearest point of the cargo trajectory polyline.
    pub fn distance_to_trajectory(&self, p: Vec3) -> f64 {
        self.trajectory
            .windows(2)
            .map(|seg| {
                let bar = Bar { from: seg[0], to: seg[1], thickness: 0.0 };
                bar.distance_to(p.horizontal())
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The index and distance of the closest bar to `p`, if any bars exist.
    pub fn closest_bar(&self, p: Vec3) -> Option<(usize, f64)> {
        self.bars
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.distance_to(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
    }

    /// Total length of the driving leg.
    pub fn driving_distance(&self) -> f64 {
        self.driving_waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exam_course_is_well_formed() {
        let c = Course::licensing_exam();
        assert!(c.bars.len() >= 3, "Figure 9 shows several bars");
        assert!(c.trajectory.len() >= 2);
        assert_eq!(c.trajectory.first().copied(), Some(c.pickup_center));
        assert_eq!(c.trajectory.last().copied(), Some(c.turnaround_center));
        assert!(c.driving_distance() > 50.0);
        assert!(c.pickup_radius > 0.0 && c.carry_height > 0.0);
    }

    #[test]
    fn zone_membership() {
        let c = Course::licensing_exam();
        assert!(c.in_pickup_zone(c.pickup_center));
        assert!(c.in_pickup_zone(c.pickup_center + Vec3::new(1.0, 5.0, 0.0)));
        assert!(!c.in_pickup_zone(c.turnaround_center));
        assert!(c.in_turnaround_zone(c.turnaround_center));
    }

    #[test]
    fn bar_distance() {
        let bar =
            Bar { from: Vec3::new(-1.0, 2.0, 0.0), to: Vec3::new(1.0, 2.0, 0.0), thickness: 0.2 };
        assert!((bar.distance_to(Vec3::new(0.0, 2.0, 0.0))).abs() < 1e-12);
        assert!((bar.distance_to(Vec3::new(0.0, 4.0, 0.0)) - 2.0).abs() < 1e-12);
        assert!((bar.distance_to(Vec3::new(3.0, 2.0, 0.0)) - 2.0).abs() < 1e-12);
        assert!((bar.center() - Vec3::new(0.0, 2.0, 0.0)).length() < 1e-12);
    }

    #[test]
    fn trajectory_distance_is_zero_on_path() {
        let c = Course::licensing_exam();
        for p in &c.trajectory {
            assert!(c.distance_to_trajectory(*p) < 1e-9);
        }
        assert!(c.distance_to_trajectory(Vec3::new(0.0, 0.0, 0.0)) > 10.0);
    }

    #[test]
    fn closest_bar_identifies_nearest() {
        let c = Course::licensing_exam();
        let (index, dist) = c.closest_bar(c.bars[1].center()).unwrap();
        assert_eq!(index, 1);
        assert!(dist < 1e-9);
    }

    #[test]
    fn phases_advance_to_completion() {
        let mut phase = CoursePhase::Driving;
        let mut seen = vec![phase];
        for _ in 0..6 {
            phase = phase.next();
            seen.push(phase);
        }
        assert_eq!(seen[0], CoursePhase::Driving);
        assert!(seen.contains(&CoursePhase::Traverse));
        assert_eq!(*seen.last().unwrap(), CoursePhase::Complete);
        assert_eq!(CoursePhase::Complete.next(), CoursePhase::Complete);
    }
}
