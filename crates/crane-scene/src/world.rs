//! The mobile-crane training world.
//!
//! Assembles the scene the implemented simulator displayed: the driving area,
//! the testing ground with the licensing course of Figure 9, surrounding
//! buildings and trees, and the articulated mobile crane itself. The polygon
//! budget tracks the 3 235 polygons reported in the paper's §4.

use serde::{Deserialize, Serialize};
use sim_math::{Transform, Vec3};

use crate::bounds::Aabb;
use crate::course::Course;
use crate::graph::{NodeId, SceneGraph};
use crate::mesh::Color;
use crate::primitives::{cuboid, cylinder, ground_plane, obstacle_bar};
use crate::terrain_mesh::heightfield_mesh;

/// Height of the training ground at `(x, z)` in metres.
///
/// The driving area has gentle rolling hills (the paper's §3.6 calls out
/// terrain following and the danger of the crane's high centre of gravity);
/// the testing ground (z > 45 m) is flat so the lifting exam is level.
pub fn training_ground_height(x: f64, z: f64) -> f64 {
    if z > 45.0 {
        return 0.0;
    }
    let rolling = 0.8 * (x * 0.08).sin() * (z * 0.05).cos() + 0.4 * (z * 0.11).sin();
    // Blend smoothly to zero approaching the testing ground.
    let blend = ((45.0 - z) / 10.0).clamp(0.0, 1.0);
    rolling * blend
}

/// Handles to the scene-graph nodes that the simulator animates every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CraneNodes {
    /// Crane chassis (root of the crane hierarchy).
    pub chassis: NodeId,
    /// Superstructure / cab that slews on top of the chassis.
    pub superstructure: NodeId,
    /// Derrick boom, luffed and telescoped.
    pub boom: NodeId,
    /// Hoist cable from boom tip to hook.
    pub cable: NodeId,
    /// Lift hook.
    pub hook: NodeId,
    /// The cargo to be lifted in the exam.
    pub cargo: NodeId,
}

/// One static obstacle with a precomputed world-space bound (used by the
/// multi-level collision detection of the dynamics module).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Scene node of the obstacle.
    pub node: NodeId,
    /// Descriptive name.
    pub name: String,
    /// World-space bounding box.
    pub aabb: Aabb,
    /// Whether colliding with it deducts exam points (the course bars do).
    pub scored: bool,
}

/// The complete training world: scene graph, course definition and obstacle list.
#[derive(Debug, Clone)]
pub struct TrainingWorld {
    /// The renderable scene.
    pub scene: SceneGraph,
    /// The licensing-exam course.
    pub course: Course,
    /// Nodes animated by the simulator.
    pub crane: CraneNodes,
    /// Static obstacles for collision detection.
    pub obstacles: Vec<Obstacle>,
}

impl TrainingWorld {
    /// Builds the standard training world with the licensing-exam course.
    pub fn build() -> TrainingWorld {
        let course = Course::licensing_exam();
        let mut scene = SceneGraph::new();
        let mut obstacles = Vec::new();

        // --- Terrain -----------------------------------------------------
        let terrain = heightfield_mesh(
            0.0,
            10.0,
            160.0,
            180.0,
            26,
            26,
            Color::GROUND,
            training_ground_height,
        );
        let terrain_mesh = scene.add_mesh(terrain);
        scene.add_node("terrain", None, Transform::identity(), Some(terrain_mesh));

        // Flat concrete slab of the testing ground.
        let slab = ground_plane(Vec3::new(0.0, 0.02, 60.0), 50.0, 32.0, 10, 8, Color::CONCRETE);
        let slab_mesh = scene.add_mesh(slab);
        scene.add_node("testing-ground", None, Transform::identity(), Some(slab_mesh));

        // Driving road from the start point to the testing ground.
        let road = ground_plane(Vec3::new(-1.0, 0.05, 0.0), 8.0, 95.0, 2, 24, Color::GRAY);
        let road_mesh = scene.add_mesh(road);
        scene.add_node("road", None, Transform::identity(), Some(road_mesh));

        // --- Surrounding structures ---------------------------------------
        let building_positions = [
            (Vec3::new(-45.0, 0.0, 20.0), Vec3::new(18.0, 12.0, 14.0)),
            (Vec3::new(45.0, 0.0, 10.0), Vec3::new(14.0, 9.0, 20.0)),
            (Vec3::new(-40.0, 0.0, 75.0), Vec3::new(12.0, 15.0, 12.0)),
            (Vec3::new(45.0, 0.0, 80.0), Vec3::new(16.0, 7.0, 10.0)),
            (Vec3::new(-50.0, 0.0, -30.0), Vec3::new(10.0, 6.0, 10.0)),
            (Vec3::new(40.0, 0.0, -45.0), Vec3::new(20.0, 10.0, 12.0)),
        ];
        for (i, (pos, size)) in building_positions.iter().enumerate() {
            let mesh =
                cuboid(Vec3::new(0.0, size.y / 2.0, 0.0), *size, Color::CONCRETE.scaled(0.9));
            let mesh_index = scene.add_mesh(mesh);
            let node = scene.add_node(
                &format!("building-{i}"),
                None,
                Transform::from_translation(*pos),
                Some(mesh_index),
            );
            obstacles.push(Obstacle {
                node,
                name: format!("building-{i}"),
                aabb: scene.instance_aabb(node).expect("building has a mesh"),
                scored: false,
            });
        }

        // Trees lining the driving area.
        for i in 0..24 {
            let angle = i as f64 * 0.7;
            let x = -70.0 + (i % 8) as f64 * 20.0 + 3.0 * angle.sin();
            let z = -60.0 + (i / 8) as f64 * 55.0 + 4.0 * angle.cos();
            let trunk = cylinder(Vec3::new(0.0, 2.0, 0.0), 0.3, 4.0, 6, Color::new(90, 60, 30));
            let mut tree = trunk;
            let crown = cylinder(Vec3::new(0.0, 5.5, 0.0), 1.8, 3.0, 6, Color::new(40, 120, 50));
            tree.merge(&crown);
            let mesh_index = scene.add_mesh(tree);
            scene.add_node(
                &format!("tree-{i}"),
                None,
                Transform::from_translation(Vec3::new(x, training_ground_height(x, z), z)),
                Some(mesh_index),
            );
        }

        // Fence posts around the testing ground.
        for i in 0..28 {
            let t = i as f64 / 28.0;
            let (x, z) = if t < 0.5 {
                (-26.0 + 52.0 * (t * 2.0), if i % 2 == 0 { 43.0 } else { 77.0 })
            } else {
                (if i % 2 == 0 { -26.0 } else { 26.0 }, 43.0 + 34.0 * ((t - 0.5) * 2.0))
            };
            let post = cuboid(Vec3::new(0.0, 0.75, 0.0), Vec3::new(0.15, 1.5, 0.15), Color::GRAY);
            let mesh_index = scene.add_mesh(post);
            scene.add_node(
                &format!("fence-{i}"),
                None,
                Transform::from_translation(Vec3::new(x, 0.0, z)),
                Some(mesh_index),
            );
        }

        // --- Course furniture ----------------------------------------------
        // Pickup and turn-around circles drawn as thin cylinders.
        for (name, center, radius) in [
            ("pickup-zone", course.pickup_center, course.pickup_radius),
            ("turnaround-zone", course.turnaround_center, course.turnaround_radius),
        ] {
            let ring =
                cylinder(Vec3::new(0.0, 0.05, 0.0), radius, 0.1, 24, Color::new(240, 240, 240));
            let mesh_index = scene.add_mesh(ring);
            scene.add_node(name, None, Transform::from_translation(center), Some(mesh_index));
        }

        // The obstacle bars of Figure 9, each on two support posts.
        for (i, bar) in course.bars.iter().enumerate() {
            let mesh = obstacle_bar(bar.from, bar.to, bar.thickness, Color::SAFETY_RED);
            let mesh_index = scene.add_mesh(mesh);
            let node =
                scene.add_node(&format!("bar-{i}"), None, Transform::identity(), Some(mesh_index));
            obstacles.push(Obstacle {
                node,
                name: format!("bar-{i}"),
                aabb: scene.instance_aabb(node).expect("bar has a mesh").inflated(0.05),
                scored: true,
            });
            for (end, which) in [(bar.from, "a"), (bar.to, "b")] {
                let post = cuboid(
                    Vec3::new(0.0, end.y / 2.0, 0.0),
                    Vec3::new(0.2, end.y, 0.2),
                    Color::SAFETY_RED.scaled(0.8),
                );
                let mesh_index = scene.add_mesh(post);
                scene.add_node(
                    &format!("bar-{i}-post-{which}"),
                    None,
                    Transform::from_translation(Vec3::new(end.x, 0.0, end.z)),
                    Some(mesh_index),
                );
            }
        }

        // --- The mobile crane ------------------------------------------------
        let chassis_mesh = scene.add_mesh(cuboid(
            Vec3::new(0.0, 1.1, 0.0),
            Vec3::new(2.6, 1.2, 7.0),
            Color::CRANE_YELLOW,
        ));
        let chassis = scene.add_node(
            "crane-chassis",
            None,
            Transform::from_translation(course.start_position),
            Some(chassis_mesh),
        );

        // Wheels.
        for (i, (dx, dz)) in
            [(-1.2, 2.4), (1.2, 2.4), (-1.2, -2.4), (1.2, -2.4), (-1.2, 0.0), (1.2, 0.0)]
                .iter()
                .enumerate()
        {
            let wheel = cylinder(Vec3::ZERO, 0.6, 0.4, 10, Color::new(30, 30, 30));
            let mesh_index = scene.add_mesh(wheel);
            scene.add_node(
                &format!("wheel-{i}"),
                Some(chassis),
                Transform::new(
                    Vec3::new(*dx, 0.6, *dz),
                    sim_math::Quat::from_axis_angle(Vec3::unit_z(), std::f64::consts::FRAC_PI_2),
                ),
                Some(mesh_index),
            );
        }

        let super_mesh = scene.add_mesh(cuboid(
            Vec3::new(0.0, 0.9, -0.5),
            Vec3::new(2.4, 1.8, 3.2),
            Color::CRANE_YELLOW.scaled(0.95),
        ));
        let superstructure = scene.add_node(
            "crane-superstructure",
            Some(chassis),
            Transform::from_translation(Vec3::new(0.0, 1.7, -1.0)),
            Some(super_mesh),
        );

        let boom_mesh = scene.add_mesh(cuboid(
            Vec3::new(0.0, 0.0, -6.0),
            Vec3::new(0.6, 0.6, 12.0),
            Color::CRANE_YELLOW.scaled(0.85),
        ));
        let boom = scene.add_node(
            "crane-boom",
            Some(superstructure),
            Transform::from_translation(Vec3::new(0.0, 1.2, 0.5)),
            Some(boom_mesh),
        );

        let cable_mesh = scene.add_mesh(cylinder(
            Vec3::new(0.0, -2.5, 0.0),
            0.04,
            5.0,
            6,
            Color::new(60, 60, 60),
        ));
        let cable = scene.add_node(
            "hoist-cable",
            Some(boom),
            Transform::from_translation(Vec3::new(0.0, 0.0, -12.0)),
            Some(cable_mesh),
        );

        let hook_mesh = scene.add_mesh(cuboid(
            Vec3::new(0.0, -0.3, 0.0),
            Vec3::new(0.5, 0.6, 0.3),
            Color::new(80, 80, 90),
        ));
        let hook = scene.add_node(
            "lift-hook",
            Some(cable),
            Transform::from_translation(Vec3::new(0.0, -5.0, 0.0)),
            Some(hook_mesh),
        );

        let cargo_mesh = scene.add_mesh(cuboid(
            Vec3::new(0.0, 0.6, 0.0),
            Vec3::new(1.6, 1.2, 1.6),
            Color::new(150, 80, 40),
        ));
        let cargo = scene.add_node(
            "cargo",
            None,
            Transform::from_translation(course.pickup_center),
            Some(cargo_mesh),
        );

        let crane = CraneNodes { chassis, superstructure, boom, cable, hook, cargo };
        TrainingWorld { scene, course, crane, obstacles }
    }

    /// Total number of polygons in the world (the paper's scene had 3 235).
    pub fn polygon_count(&self) -> usize {
        self.scene.polygon_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polygon_budget_matches_the_paper_scale() {
        let world = TrainingWorld::build();
        let polys = world.polygon_count();
        // The paper reports 3 235 polygons; stay within a reasonable band of it.
        assert!(polys >= 2_600 && polys <= 4_200, "polygon count {polys} is out of band");
    }

    #[test]
    fn crane_hierarchy_is_connected() {
        let world = TrainingWorld::build();
        let scene = &world.scene;
        // The hook must move when the chassis moves (it hangs off the boom).
        let hook_before = scene.world_transform(world.crane.hook).translation;
        let mut scene = world.scene.clone();
        scene.set_local_transform(
            world.crane.chassis,
            Transform::from_translation(world.course.start_position + Vec3::new(5.0, 0.0, 0.0)),
        );
        let hook_after = scene.world_transform(world.crane.hook).translation;
        assert!((hook_after.x - hook_before.x - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scored_obstacles_are_the_bars() {
        let world = TrainingWorld::build();
        let scored = world.obstacles.iter().filter(|o| o.scored).count();
        assert_eq!(scored, world.course.bars.len());
        assert!(world.obstacles.len() > scored, "buildings must also be obstacles");
        for o in &world.obstacles {
            assert!(!o.aabb.is_empty(), "{} has an empty bound", o.name);
        }
    }

    #[test]
    fn testing_ground_is_flat_and_driving_area_is_not() {
        assert_eq!(training_ground_height(0.0, 60.0), 0.0);
        assert_eq!(training_ground_height(-10.0, 77.0), 0.0);
        let bumpy = (0..50)
            .map(|i| training_ground_height(i as f64 * 1.7 - 40.0, -30.0 + i as f64))
            .fold(0.0f64, |acc, h| acc.max(h.abs()));
        assert!(bumpy > 0.1, "driving terrain should not be perfectly flat");
    }

    #[test]
    fn cargo_starts_in_the_pickup_zone() {
        let world = TrainingWorld::build();
        let cargo = world.scene.world_transform(world.crane.cargo).translation;
        assert!(world.course.in_pickup_zone(cargo));
    }

    #[test]
    fn named_nodes_can_be_found() {
        let world = TrainingWorld::build();
        for name in ["terrain", "crane-chassis", "crane-boom", "lift-hook", "cargo", "bar-0"] {
            assert!(world.scene.find(name).is_some(), "missing node {name}");
        }
    }
}
