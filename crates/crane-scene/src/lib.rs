//! Scene substrate for the mobile-crane simulator.
//!
//! The original system rendered a training ground of 3 235 polygons on three
//! display channels (paper §4). This crate provides the geometry side of that:
//! triangle meshes and primitive generators, a scene graph with hierarchical
//! transforms, axis-aligned bounds, a terrain mesh builder, the training world
//! itself, and the licensing-exam course of Figure 9 (driving path, lift zone,
//! barred trajectory).
//!
//! ```
//! use crane_scene::world::TrainingWorld;
//!
//! let world = TrainingWorld::build();
//! // The scene stays close to the polygon budget reported in the paper.
//! let polys = world.scene.polygon_count();
//! assert!(polys > 2_500 && polys < 4_500, "polygon count {polys}");
//! ```

pub mod bounds;
pub mod course;
pub mod graph;
pub mod mesh;
pub mod primitives;
pub mod terrain_mesh;
pub mod world;

pub use bounds::Aabb;
pub use course::{Bar, Course, CoursePhase};
pub use graph::{NodeId, SceneGraph};
pub use mesh::{Color, Mesh};
pub use world::TrainingWorld;
