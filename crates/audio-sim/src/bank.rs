//! Cross-mixer memoization of pure waveform columns, the audio half of the
//! batched-stepping path.
//!
//! Rendering one mixer frame evaluates `Waveform::sample` once per output
//! sample per source — thousands of `sin` calls that dominate the cost of a
//! full-fidelity session frame. Those values are a pure function of the
//! waveform parameters, the source age and the sample clock; they do not
//! depend on the session seed, the per-source gain or the listener position.
//! When several same-shape sessions are stepped in lockstep their static
//! sources (background noise, engine rumble) stay age-aligned, so a frame's
//! waveform column is identical across the whole cohort. A [`WaveBank`]
//! computes each distinct column once per frame and lets every mixer of the
//! cohort replay it, applying its own gain and attenuation afterwards in
//! exactly the scalar order of operations — the rendered blocks stay
//! bit-identical to unbatched rendering.
//!
//! Sources that have diverged between sessions (a collision one-shot, a motor
//! toggled at a different frame) simply miss the memo and are computed the
//! scalar way; divergence costs speed, never correctness.

use std::collections::BTreeMap;

use crate::source::{SoundSource, SourceKind, Waveform};

/// Memo key: every input the sample values of a column depend on, captured
/// bit-exactly (`f64::to_bits`) so two keys are equal only when the columns
/// are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ColumnKey {
    sample_rate: u32,
    frames: usize,
    age: u64,
    kind: (u8, u64),
    waveform: (u8, u64, u64),
}

fn kind_bits(kind: SourceKind) -> (u8, u64) {
    match kind {
        SourceKind::Continuous => (0, 0),
        SourceKind::OneShot { duration } => (1, duration.to_bits()),
    }
}

fn waveform_bits(waveform: Waveform) -> (u8, u64, u64) {
    match waveform {
        Waveform::Sine { frequency } => (0, frequency.to_bits(), 0),
        Waveform::Rumble { frequency } => (1, frequency.to_bits(), 0),
        Waveform::Strike { frequency, decay } => (2, frequency.to_bits(), decay.to_bits()),
    }
}

/// Shared memo of waveform columns for one lockstep frame of a cohort.
///
/// Clear it at every new frame index (ages advance, so stale columns can
/// never be hit again and would only hold memory).
#[derive(Debug, Default)]
pub struct WaveBank {
    columns: BTreeMap<ColumnKey, Vec<f64>>,
    hits: u64,
    misses: u64,
}

impl WaveBank {
    /// Creates an empty bank.
    pub fn new() -> WaveBank {
        WaveBank::default()
    }

    /// Drops every memoized column, keeping the hit/miss counters.
    pub fn clear(&mut self) {
        self.columns.clear();
    }

    /// Columns currently memoized.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the bank holds no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Column lookups that had to compute the waveform.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The waveform column of `source` for a `frames`-sample render at
    /// `sample_rate`: entry `i` is `waveform.sample(age + i * dt)`, truncated
    /// where a one-shot source finishes (the scalar render's `break`).
    /// Gain and attenuation are deliberately excluded — they are per-mixer.
    pub(crate) fn column(
        &mut self,
        sample_rate: u32,
        frames: usize,
        dt: f64,
        source: &SoundSource,
    ) -> &[f64] {
        let key = ColumnKey {
            sample_rate,
            frames,
            age: source.age.to_bits(),
            kind: kind_bits(source.kind),
            waveform: waveform_bits(source.waveform),
        };
        if self.columns.contains_key(&key) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let mut column = Vec::with_capacity(frames);
            for i in 0..frames {
                // Exactly the scalar render's probe: same age expression,
                // same cutoff test, same sample call.
                let probe = SoundSource { age: source.age + i as f64 * dt, ..*source };
                if probe.finished() {
                    break;
                }
                column.push(probe.waveform.sample(probe.age));
            }
            self.columns.insert(key, column);
        }
        self.columns.get(&key).expect("column just ensured").as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rumble(age: f64) -> SoundSource {
        SoundSource {
            kind: SourceKind::Continuous,
            waveform: Waveform::Rumble { frequency: 27.0 },
            gain: 0.12,
            position: None,
            age,
        }
    }

    #[test]
    fn column_matches_the_scalar_probe_bit_for_bit() {
        let mut bank = WaveBank::new();
        let source = rumble(1.25);
        let dt = 1.0 / 11_025.0;
        let column = bank.column(11_025, 689, dt, &source).to_vec();
        assert_eq!(column.len(), 689);
        for (i, value) in column.iter().enumerate() {
            let probe = SoundSource { age: source.age + i as f64 * dt, ..source };
            assert_eq!(value.to_bits(), probe.waveform.sample(probe.age).to_bits());
        }
    }

    #[test]
    fn gain_does_not_split_the_memo() {
        // The engine source keeps its age but changes gain every frame; two
        // cohort members with different gains must share one column.
        let mut bank = WaveBank::new();
        let loud = SoundSource { gain: 0.6, ..rumble(0.5) };
        let quiet = SoundSource { gain: 0.15, ..rumble(0.5) };
        let dt = 1.0 / 8_000.0;
        bank.column(8_000, 100, dt, &loud);
        bank.column(8_000, 100, dt, &quiet);
        assert_eq!(bank.len(), 1);
        assert_eq!((bank.hits(), bank.misses()), (1, 1));
    }

    #[test]
    fn age_and_waveform_do_split_the_memo() {
        let mut bank = WaveBank::new();
        let dt = 1.0 / 8_000.0;
        bank.column(8_000, 100, dt, &rumble(0.5));
        bank.column(8_000, 100, dt, &rumble(0.5 + dt));
        let sine = SoundSource { waveform: Waveform::Sine { frequency: 27.0 }, ..rumble(0.5) };
        bank.column(8_000, 100, dt, &sine);
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.misses(), 3);
    }

    #[test]
    fn one_shot_column_stops_at_the_cutoff() {
        let mut bank = WaveBank::new();
        let strike = SoundSource {
            kind: SourceKind::OneShot { duration: 0.01 },
            waveform: Waveform::Strike { frequency: 320.0, decay: 4.0 },
            gain: 0.5,
            position: None,
            age: 0.0,
        };
        let dt = 1.0 / 8_000.0;
        let column = bank.column(8_000, 200, dt, &strike);
        // finished() fires at age >= duration: 80 samples of a 10 ms shot.
        assert_eq!(column.len(), 80);
    }

    #[test]
    fn clear_keeps_the_counters() {
        let mut bank = WaveBank::new();
        bank.column(8_000, 10, 1.0 / 8_000.0, &rumble(0.0));
        bank.clear();
        assert!(bank.is_empty());
        assert_eq!(bank.misses(), 1);
    }
}
