//! Simulation events that trigger dynamic sound effects.

use serde::{Deserialize, Serialize};
use sim_math::Vec3;

/// A sound-triggering event received from the other simulator modules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SoundEvent {
    /// The engine was started or its load changed; `intensity` is in `[0, 1]`.
    EngineLoad {
        /// Throttle/load level.
        intensity: f64,
    },
    /// The dynamics module detected a collision at `location` with the given
    /// impulse magnitude (scales the clang volume).
    Collision {
        /// World position of the contact.
        location: Vec3,
        /// Impulse magnitude.
        impulse: f64,
    },
    /// The hoist or slew motor is working; used for the motor whine.
    MotorWorking {
        /// Whether the motor noise should currently play.
        active: bool,
    },
    /// An instructor alarm (overload, safety-zone violation) changed state.
    Alarm {
        /// Whether the alarm is now sounding.
        active: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_their_payload() {
        let e = SoundEvent::Collision { location: Vec3::new(1.0, 2.0, 3.0), impulse: 4.5 };
        match e {
            SoundEvent::Collision { location, impulse } => {
                assert_eq!(location.y, 2.0);
                assert!(impulse > 4.0);
            }
            _ => panic!("wrong variant"),
        }
    }
}
