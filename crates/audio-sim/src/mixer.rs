//! The software mixer standing in for DirectSound.

use serde::{Deserialize, Serialize};
use sim_math::Vec3;
use std::collections::BTreeMap;

use crate::bank::WaveBank;
use crate::event::SoundEvent;
use crate::source::{SoundSource, SourceId, SourceKind, Waveform};

/// One rendered block of mono samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderedBlock {
    /// Sample rate in hertz.
    pub sample_rate: u32,
    /// Mono samples in `[-1, 1]`.
    pub samples: Vec<f32>,
}

impl RenderedBlock {
    /// Root-mean-square level of the block (a loudness proxy for tests and telemetry).
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|s| (*s as f64) * (*s as f64)).sum();
        (sum / self.samples.len() as f64).sqrt()
    }

    /// Peak absolute sample value.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |acc, s| acc.max(s.abs() as f64))
    }
}

/// The audio mixer: sources in, attenuated mixed samples out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixer {
    sample_rate: u32,
    listener: Vec3,
    sources: BTreeMap<SourceId, SoundSource>,
    next_id: u32,
    /// Distance at which a positional source is at full volume.
    pub reference_distance: f64,
    engine_source: Option<SourceId>,
    motor_source: Option<SourceId>,
    alarm_source: Option<SourceId>,
}

impl Default for Mixer {
    fn default() -> Self {
        Mixer::new(22_050)
    }
}

impl Mixer {
    /// Creates a mixer rendering at `sample_rate` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero.
    pub fn new(sample_rate: u32) -> Mixer {
        assert!(sample_rate > 0, "sample rate must be positive");
        Mixer {
            sample_rate,
            listener: Vec3::ZERO,
            sources: BTreeMap::new(),
            next_id: 0,
            reference_distance: 5.0,
            engine_source: None,
            motor_source: None,
            alarm_source: None,
        }
    }

    /// Moves the listener (the trainee's head, i.e. the mockup cab).
    pub fn set_listener(&mut self, position: Vec3) {
        self.listener = position;
    }

    /// Adds a source and returns its id.
    pub fn add_source(&mut self, source: SoundSource) -> SourceId {
        let id = SourceId(self.next_id);
        self.next_id += 1;
        self.sources.insert(id, source);
        id
    }

    /// Removes a source.
    pub fn remove_source(&mut self, id: SourceId) {
        self.sources.remove(&id);
    }

    /// Number of currently playing sources.
    pub fn active_sources(&self) -> usize {
        self.sources.len()
    }

    /// Adds the static background of the construction site (always present,
    /// paper §3.7: "the static sound, such as the background noise").
    pub fn add_background_noise(&mut self) -> SourceId {
        self.add_source(SoundSource {
            kind: SourceKind::Continuous,
            waveform: Waveform::Rumble { frequency: 27.0 },
            gain: 0.12,
            position: None,
            age: 0.0,
        })
    }

    /// Reacts to a simulation event by creating, adjusting or removing sources.
    pub fn handle_event(&mut self, event: SoundEvent) {
        match event {
            SoundEvent::EngineLoad { intensity } => {
                let gain = 0.15 + 0.45 * intensity.clamp(0.0, 1.0);
                match self.engine_source {
                    Some(id) => {
                        if let Some(src) = self.sources.get_mut(&id) {
                            src.gain = gain;
                        }
                    }
                    None => {
                        let id = self.add_source(SoundSource {
                            kind: SourceKind::Continuous,
                            waveform: Waveform::Rumble { frequency: 45.0 },
                            gain,
                            position: None,
                            age: 0.0,
                        });
                        self.engine_source = Some(id);
                    }
                }
            }
            SoundEvent::Collision { location, impulse } => {
                self.add_source(SoundSource {
                    kind: SourceKind::OneShot { duration: 1.2 },
                    waveform: Waveform::Strike { frequency: 320.0, decay: 4.0 },
                    gain: (0.3 + impulse * 0.1).clamp(0.0, 1.0),
                    position: Some(location),
                    age: 0.0,
                });
            }
            SoundEvent::MotorWorking { active } => {
                if active && self.motor_source.is_none() {
                    self.motor_source = Some(self.add_source(SoundSource {
                        kind: SourceKind::Continuous,
                        waveform: Waveform::Sine { frequency: 180.0 },
                        gain: 0.18,
                        position: None,
                        age: 0.0,
                    }));
                }
                if !active {
                    if let Some(id) = self.motor_source.take() {
                        self.remove_source(id);
                    }
                }
            }
            SoundEvent::Alarm { active } => {
                if active && self.alarm_source.is_none() {
                    self.alarm_source = Some(self.add_source(SoundSource {
                        kind: SourceKind::Continuous,
                        waveform: Waveform::Sine { frequency: 880.0 },
                        gain: 0.3,
                        position: None,
                        age: 0.0,
                    }));
                }
                if !active {
                    if let Some(id) = self.alarm_source.take() {
                        self.remove_source(id);
                    }
                }
            }
        }
    }

    fn attenuation(&self, source: &SoundSource) -> f64 {
        match source.position {
            None => 1.0,
            Some(p) => {
                let distance = p.distance(self.listener).max(self.reference_distance);
                self.reference_distance / distance
            }
        }
    }

    /// Renders `duration` seconds of mixed audio and advances every source.
    pub fn render(&mut self, duration: f64) -> RenderedBlock {
        self.render_with_bank(duration, None)
    }

    /// [`Mixer::render`] with an optional [`WaveBank`] shared across the
    /// mixers of a lockstep-stepped cohort.
    ///
    /// Bit-identical to [`Mixer::render`]: the bank memoizes only the pure
    /// `Waveform::sample` column of each source; the per-source gain, the
    /// distance attenuation, the `f32` cast and the one-shot cutoff are
    /// applied per mixer in exactly the scalar order of operations.
    pub fn render_with_bank(
        &mut self,
        duration: f64,
        mut bank: Option<&mut WaveBank>,
    ) -> RenderedBlock {
        let frames = (duration * self.sample_rate as f64).round() as usize;
        let dt = 1.0 / self.sample_rate as f64;
        let mut samples = vec![0.0f32; frames];
        for (_, source) in self.sources.iter_mut() {
            let gain = match source.position {
                None => 1.0,
                Some(p) => {
                    let distance = p.distance(self.listener).max(self.reference_distance);
                    self.reference_distance / distance
                }
            };
            match bank.as_deref_mut() {
                Some(bank) => {
                    // The column is `waveform.sample(age + i*dt)` with the
                    // one-shot cutoff encoded in its length; what remains is
                    // the scalar `(t_source.sample() * gain) as f32` with
                    // `t_source.sample()` = column value times source gain.
                    let column = bank.column(self.sample_rate, frames, dt, source);
                    for (slot, value) in samples.iter_mut().zip(column) {
                        *slot += ((*value * source.gain) * gain) as f32;
                    }
                }
                None => {
                    for (i, slot) in samples.iter_mut().enumerate() {
                        let t_source = SoundSource { age: source.age + i as f64 * dt, ..*source };
                        if t_source.finished() {
                            break;
                        }
                        *slot += (t_source.sample() * gain) as f32;
                    }
                }
            }
            source.age += duration;
        }
        // Drop finished one-shots.
        self.sources.retain(|_, s| !s.finished());
        // Soft clip.
        for s in samples.iter_mut() {
            *s = s.clamp(-1.0, 1.0);
        }
        let _ = self.attenuation(&SoundSource {
            kind: SourceKind::Continuous,
            waveform: Waveform::Sine { frequency: 1.0 },
            gain: 0.0,
            position: None,
            age: 0.0,
        });
        RenderedBlock { sample_rate: self.sample_rate, samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_when_no_sources() {
        let mut m = Mixer::new(8_000);
        let block = m.render(0.1);
        assert_eq!(block.samples.len(), 800);
        assert_eq!(block.rms(), 0.0);
    }

    #[test]
    fn background_noise_is_audible_and_continuous() {
        let mut m = Mixer::new(8_000);
        m.add_background_noise();
        let first = m.render(0.2);
        let later = m.render(0.2);
        assert!(first.rms() > 0.01);
        assert!(later.rms() > 0.01);
        assert_eq!(m.active_sources(), 1);
    }

    #[test]
    fn collision_clang_plays_once_and_decays() {
        let mut m = Mixer::new(8_000);
        m.handle_event(SoundEvent::Collision { location: Vec3::ZERO, impulse: 5.0 });
        assert_eq!(m.active_sources(), 1);
        let during = m.render(0.5);
        assert!(during.rms() > 0.02);
        let after = m.render(2.0);
        assert!(after.rms() < during.rms());
        assert_eq!(m.active_sources(), 0, "one-shot source must be removed when finished");
    }

    #[test]
    fn engine_load_scales_the_volume() {
        let mut quiet = Mixer::new(8_000);
        quiet.handle_event(SoundEvent::EngineLoad { intensity: 0.0 });
        let mut loud = Mixer::new(8_000);
        loud.handle_event(SoundEvent::EngineLoad { intensity: 1.0 });
        assert!(loud.render(0.2).rms() > quiet.render(0.2).rms());
    }

    #[test]
    fn distance_attenuates_positional_sources() {
        let mut near = Mixer::new(8_000);
        near.set_listener(Vec3::ZERO);
        near.handle_event(SoundEvent::Collision {
            location: Vec3::new(2.0, 0.0, 0.0),
            impulse: 5.0,
        });
        let mut far = Mixer::new(8_000);
        far.set_listener(Vec3::ZERO);
        far.handle_event(SoundEvent::Collision {
            location: Vec3::new(60.0, 0.0, 0.0),
            impulse: 5.0,
        });
        assert!(near.render(0.3).rms() > far.render(0.3).rms() * 2.0);
    }

    #[test]
    fn motor_and_alarm_toggle_on_and_off() {
        let mut m = Mixer::new(8_000);
        m.handle_event(SoundEvent::MotorWorking { active: true });
        m.handle_event(SoundEvent::Alarm { active: true });
        assert_eq!(m.active_sources(), 2);
        m.handle_event(SoundEvent::MotorWorking { active: false });
        m.handle_event(SoundEvent::Alarm { active: false });
        assert_eq!(m.active_sources(), 0);
    }

    #[test]
    fn output_is_clipped_to_unit_range() {
        let mut m = Mixer::new(4_000);
        for _ in 0..30 {
            m.handle_event(SoundEvent::Collision { location: Vec3::ZERO, impulse: 100.0 });
        }
        let block = m.render(0.2);
        assert!(block.peak() <= 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_sample_rate_rejected() {
        let _ = Mixer::new(0);
    }

    /// A mixer with every source species the simulator produces: background
    /// rumble, engine rumble mid-session, a positional one-shot, motor and
    /// alarm sines.
    fn busy_mixer() -> Mixer {
        let mut m = Mixer::new(11_025);
        m.add_background_noise();
        m.set_listener(Vec3::new(1.0, 2.0, 3.0));
        m.handle_event(SoundEvent::EngineLoad { intensity: 0.7 });
        m.handle_event(SoundEvent::Collision { location: Vec3::new(8.0, 0.0, 2.0), impulse: 4.0 });
        m.handle_event(SoundEvent::MotorWorking { active: true });
        m.handle_event(SoundEvent::Alarm { active: true });
        m
    }

    #[test]
    fn banked_render_is_bit_identical_to_scalar_render() {
        let mut scalar = busy_mixer();
        let mut banked = busy_mixer();
        let mut bank = WaveBank::new();
        // Several frames, so one-shots expire and ages advance through the
        // retain/clip tail exactly like the scalar path.
        for _ in 0..24 {
            let a = scalar.render(0.0625);
            let b = banked.render_with_bank(0.0625, Some(&mut bank));
            assert_eq!(a, b, "banked block diverged from scalar render");
            bank.clear();
        }
        assert_eq!(scalar, banked, "mixer state diverged");
    }

    #[test]
    fn cohort_mixers_share_columns_and_stay_bit_identical() {
        // Four cohort members: same-aged static sources, different engine
        // gains and listener positions — the per-mixer parts of the render.
        let mut scalars: Vec<Mixer> = Vec::new();
        let mut bankeds: Vec<Mixer> = Vec::new();
        for k in 0..4 {
            let mut m = Mixer::new(11_025);
            m.add_background_noise();
            m.handle_event(SoundEvent::EngineLoad { intensity: 0.2 + 0.2 * k as f64 });
            m.set_listener(Vec3::new(k as f64, 0.0, 0.0));
            scalars.push(m.clone());
            bankeds.push(m);
        }
        let mut bank = WaveBank::new();
        for _ in 0..8 {
            for (scalar, banked) in scalars.iter_mut().zip(bankeds.iter_mut()) {
                let a = scalar.render(0.0625);
                let b = banked.render_with_bank(0.0625, Some(&mut bank));
                assert_eq!(a, b);
            }
            bank.clear();
        }
        // 2 sources x 8 frames computed once, then shared by 3 more mixers.
        assert_eq!(bank.misses(), 16);
        assert_eq!(bank.hits(), 48);
    }
}
