//! Sound sources and their synthesized waveforms.

use serde::{Deserialize, Serialize};
use sim_math::Vec3;

/// Identifies a source registered with the mixer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u32);

/// How the source behaves over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceKind {
    /// A looping, continuous sound (engine, ambient construction-site noise).
    Continuous,
    /// A one-shot effect that plays for a fixed duration and then stops
    /// (collision clang, alarm beep).
    OneShot {
        /// Duration of the effect in seconds.
        duration: f64,
    },
}

/// The synthesized waveform of a source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Pure tone at a frequency in hertz.
    Sine {
        /// Tone frequency.
        frequency: f64,
    },
    /// Band-limited pseudo-noise (engine rumble, background noise).
    Rumble {
        /// Characteristic frequency of the rumble.
        frequency: f64,
    },
    /// Exponentially decaying strike (collision clang).
    Strike {
        /// Fundamental frequency.
        frequency: f64,
        /// Decay rate per second.
        decay: f64,
    },
}

impl Waveform {
    /// Sample the waveform at time `t` seconds after the source started.
    pub fn sample(&self, t: f64) -> f64 {
        use std::f64::consts::TAU;
        match self {
            Waveform::Sine { frequency } => (TAU * frequency * t).sin(),
            Waveform::Rumble { frequency } => {
                // Sum of detuned sines approximates a rough rumble deterministically.
                0.5 * (TAU * frequency * t).sin()
                    + 0.3 * (TAU * frequency * 1.83 * t).sin()
                    + 0.2 * (TAU * frequency * 0.61 * t + 1.3).sin()
            }
            Waveform::Strike { frequency, decay } => {
                (TAU * frequency * t).sin() * (-decay * t).exp()
            }
        }
    }
}

/// A sound source registered with the mixer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoundSource {
    /// Behaviour over time.
    pub kind: SourceKind,
    /// Waveform to synthesize.
    pub waveform: Waveform,
    /// Base gain in `[0, 1]`.
    pub gain: f64,
    /// World position, or `None` for non-positional (interface) sounds.
    pub position: Option<Vec3>,
    /// Seconds the source has been playing.
    pub age: f64,
}

impl SoundSource {
    /// Whether the source has finished playing.
    pub fn finished(&self) -> bool {
        match self.kind {
            SourceKind::Continuous => false,
            SourceKind::OneShot { duration } => self.age >= duration,
        }
    }

    /// Current sample value (before attenuation).
    pub fn sample(&self) -> f64 {
        self.waveform.sample(self.age) * self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveforms_are_bounded() {
        for wf in [
            Waveform::Sine { frequency: 440.0 },
            Waveform::Rumble { frequency: 55.0 },
            Waveform::Strike { frequency: 880.0, decay: 4.0 },
        ] {
            for i in 0..1000 {
                let v = wf.sample(i as f64 / 1000.0);
                assert!(v.abs() <= 1.01, "waveform {wf:?} out of range: {v}");
            }
        }
    }

    #[test]
    fn strike_decays() {
        let wf = Waveform::Strike { frequency: 200.0, decay: 6.0 };
        let early: f64 = (0..100).map(|i| wf.sample(i as f64 * 1e-3).abs()).fold(0.0, f64::max);
        let late: f64 =
            (0..100).map(|i| wf.sample(1.0 + i as f64 * 1e-3).abs()).fold(0.0, f64::max);
        assert!(late < early * 0.1);
    }

    #[test]
    fn one_shot_finishes_and_continuous_does_not() {
        let mut clang = SoundSource {
            kind: SourceKind::OneShot { duration: 0.5 },
            waveform: Waveform::Strike { frequency: 500.0, decay: 5.0 },
            gain: 1.0,
            position: None,
            age: 0.0,
        };
        assert!(!clang.finished());
        clang.age = 0.6;
        assert!(clang.finished());

        let engine = SoundSource {
            kind: SourceKind::Continuous,
            waveform: Waveform::Rumble { frequency: 40.0 },
            gain: 0.5,
            position: None,
            age: 1_000.0,
        };
        assert!(!engine.finished());
        assert!(engine.sample().abs() <= 0.51);
    }
}
