//! Audio substrate for the mobile-crane simulator.
//!
//! The original audio module used Microsoft DirectSound to produce "the static
//! sound, such as the background noise, as well as the dynamic sound effect,
//! such as collision sound or motor working noise" (paper §3.7). An OS sound
//! API is not available here, so this crate provides a deterministic software
//! mixer with the same observable behaviour: continuous (static) sources,
//! one-shot (dynamic) effects triggered by simulation events, distance
//! attenuation relative to a listener, and rendered sample buffers the audio
//! module can inspect or hand to any output device.

pub mod bank;
pub mod event;
pub mod mixer;
pub mod source;

pub use bank::WaveBank;
pub use event::SoundEvent;
pub use mixer::{Mixer, RenderedBlock};
pub use source::{SoundSource, SourceId, SourceKind, Waveform};
