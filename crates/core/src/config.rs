//! Simulator configuration.

use serde::{Deserialize, Serialize};

/// Which graphics-hardware generation the cost model emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuGeneration {
    /// The TNT2-class cards of the original rack (paper §4).
    Tnt2,
    /// A card of a couple of years later (the "further acceleration" ablation).
    NextGeneration,
}

/// Which operator model drives the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// A competent trainee following the licensing-exam course.
    Exam,
    /// Nobody at the controls (useful for frame-rate measurements).
    Idle,
    /// A careless trainee: drives fast and swings the boom violently.
    Reckless,
}

/// Which simulation backend serves the session.
///
/// The paper's core trade is fidelity versus cluster cost: a full rack per
/// trainee gives licensing-exam fidelity, but batch scoring and early training
/// runs tolerate a much cheaper approximation. The tier selects the backend
/// behind [`crate::CraneSimulator`]; both tiers run the same physics from the
/// same seed, so a session can move between them by deterministic replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FidelityTier {
    /// The paper's eight-PC rack: every display channel, every module, full
    /// integrator rate. The only tier that existed before the backend split.
    Full,
    /// A decimated rack: one display channel and one cluster frame per
    /// [`crate::backend::Coarse::DECIMATION`] session frames, order(s) of
    /// magnitude cheaper in modeled cost and score-compatible within
    /// [`crate::backend::SCORE_DRIFT_TOLERANCE`].
    Coarse,
}

impl FidelityTier {
    /// Every tier, cheapest last.
    pub const ALL: [FidelityTier; 2] = [FidelityTier::Full, FidelityTier::Coarse];
    /// Number of tiers.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for per-tier tables.
    pub fn index(self) -> usize {
        match self {
            FidelityTier::Full => 0,
            FidelityTier::Coarse => 1,
        }
    }

    /// Short tag for reports.
    pub fn tag(self) -> &'static str {
        match self {
            FidelityTier::Full => "full",
            FidelityTier::Coarse => "coarse",
        }
    }
}

impl Default for FidelityTier {
    fn default() -> Self {
        FidelityTier::Full
    }
}

/// Configuration of a simulator session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulatorConfig {
    /// Number of surround-view display channels (the paper used three).
    pub display_channels: usize,
    /// Horizontal resolution of each channel (pixels).
    pub display_width: usize,
    /// Vertical resolution of each channel (pixels).
    pub display_height: usize,
    /// Whether the software rasterizer actually shades pixels every frame
    /// (needed for screenshots; the cost model alone suffices for benchmarks).
    pub render_pixels: bool,
    /// Graphics hardware generation for the cost model.
    pub gpu: GpuGeneration,
    /// Operator model at the controls.
    pub operator: OperatorKind,
    /// Mass of the exam cargo in kilograms.
    pub cargo_mass_kg: f64,
    /// Target frame rate of the cluster executive in frames per second.
    pub target_fps: f64,
    /// Number of frames to run when [`crate::CraneSimulator::run`] is called.
    pub exam_frames: usize,
    /// Seed for every stochastic model in the session.
    pub seed: u64,
    /// Relative CPU speed of every desktop PC in the rack (1.0 = the paper's
    /// reference machine; larger is faster). Scales the *modeled* per-frame
    /// cost only — physics, telemetry and scores are speed-independent, which
    /// is what lets a serving layer migrate a session between shards of
    /// different speeds and replay it bit for bit.
    pub cpu_speed: f64,
    /// Fidelity tier: which backend serves the session. Part of the replay
    /// identity — the same seed on a different tier is a different trace.
    pub tier: FidelityTier,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            display_channels: 3,
            display_width: 640,
            display_height: 480,
            render_pixels: false,
            gpu: GpuGeneration::Tnt2,
            operator: OperatorKind::Exam,
            cargo_mass_kg: 1_500.0,
            target_fps: 16.0,
            exam_frames: 2_000,
            seed: 0x0C0D_CAFE,
            cpu_speed: 1.0,
            tier: FidelityTier::Full,
        }
    }
}

impl SimulatorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.display_channels == 0 {
            return Err("at least one display channel is required".to_owned());
        }
        if self.display_width == 0 || self.display_height == 0 {
            return Err("display resolution must be positive".to_owned());
        }
        if !(self.target_fps > 0.0) {
            return Err("target frame rate must be positive".to_owned());
        }
        if self.cargo_mass_kg < 0.0 {
            return Err("cargo mass cannot be negative".to_owned());
        }
        if !(self.cpu_speed > 0.0) {
            return Err("cpu speed must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_the_paper_setup() {
        let c = SimulatorConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.display_channels, 3);
        assert_eq!(c.target_fps, 16.0);
        assert_eq!(c.gpu, GpuGeneration::Tnt2);
        assert_eq!(c.tier, FidelityTier::Full, "the paper's rack is the default tier");
    }

    #[test]
    fn tier_indices_are_dense_and_tags_distinct() {
        for (i, tier) in FidelityTier::ALL.into_iter().enumerate() {
            assert_eq!(tier.index(), i);
        }
        assert_ne!(FidelityTier::Full.tag(), FidelityTier::Coarse.tag());
        assert_eq!(FidelityTier::default(), FidelityTier::Full);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SimulatorConfig { display_channels: 0, ..Default::default() }.validate().is_err());
        assert!(SimulatorConfig { target_fps: 0.0, ..Default::default() }.validate().is_err());
        assert!(SimulatorConfig { cargo_mass_kg: -1.0, ..Default::default() }.validate().is_err());
        assert!(SimulatorConfig { display_width: 0, ..Default::default() }.validate().is_err());
        assert!(SimulatorConfig { cpu_speed: 0.0, ..Default::default() }.validate().is_err());
        assert!(SimulatorConfig { cpu_speed: -2.0, ..Default::default() }.validate().is_err());
    }
}
