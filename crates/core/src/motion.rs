//! The motion platform controller module (paper §3.4) as a Logical Process.
//!
//! Converts the reflected crane state into motion cues, runs the washout and
//! interpolation pipeline of the `motion-platform` crate at a servo rate much
//! higher than the visual frame rate, and keeps the interpolation synchronized
//! with the displayed frames so the rider's vestibular and visual senses agree.

use cod_cb::{CbApi, CbError, ClassRegistry};
use cod_cluster::LogicalProcess;
use cod_net::Micros;
use motion_platform::{MotionController, MotionCue};
use sim_math::Vec3;

use crate::fom::{CraneFom, CraneStateMsg};
use crate::telemetry::SharedTelemetry;

/// Servo updates performed per visual frame.
const SERVO_SUBSTEPS: usize = 12;

/// Decorrelates the platform's vibration stream from the other consumers of
/// the session seed (the LAN jitter model draws from the raw seed).
const MOTION_SEED_SALT: u64 = 0x5eed;

/// The motion-platform controller Logical Process.
pub struct MotionPlatformLp {
    registry: ClassRegistry,
    fom: CraneFom,
    telemetry: SharedTelemetry,
    visual_fps: f64,
    controller: MotionController,
    crane: CraneStateMsg,
    previous_speed: f64,
    previous_yaw: f64,
    cues_processed: u64,
}

impl MotionPlatformLp {
    /// Creates the module, synchronized to `visual_fps` frames per second.
    /// `seed` is the session seed; the module salts it before seeding its
    /// vibration model.
    pub fn new(
        registry: ClassRegistry,
        fom: CraneFom,
        visual_fps: f64,
        seed: u64,
        telemetry: SharedTelemetry,
    ) -> MotionPlatformLp {
        MotionPlatformLp {
            registry,
            fom,
            telemetry,
            visual_fps,
            controller: MotionController::new(visual_fps, seed ^ MOTION_SEED_SALT),
            crane: CraneStateMsg::default(),
            previous_speed: 0.0,
            previous_yaw: 0.0,
            cues_processed: 0,
        }
    }

    /// Number of motion cues processed so far.
    pub fn cues_processed(&self) -> u64 {
        self.cues_processed
    }
}

impl LogicalProcess for MotionPlatformLp {
    fn name(&self) -> &str {
        "motion-platform"
    }

    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.subscribe_object_class(self.fom.crane_state)
    }

    fn step(&mut self, cb: &mut dyn CbApi, dt: f64) -> Result<(), CbError> {
        for reflection in cb.reflections() {
            if reflection.class == self.fom.crane_state {
                self.crane =
                    CraneStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            }
        }

        // Derive body-frame cues from the reflected state.
        let forward_accel =
            if dt > 0.0 { (self.crane.speed - self.previous_speed) / dt } else { 0.0 };
        let yaw_rate = if dt > 0.0 {
            sim_math::wrap_to_pi(self.crane.chassis_yaw - self.previous_yaw) / dt
        } else {
            0.0
        };
        self.previous_speed = self.crane.speed;
        self.previous_yaw = self.crane.chassis_yaw;

        let cue = MotionCue {
            acceleration: Vec3::new(0.0, 0.0, forward_accel),
            pitch: self.crane.chassis_pitch,
            roll: self.crane.chassis_roll,
            yaw_rate,
            engine_intensity: self.crane.engine_intensity,
        };
        self.controller.push_cue(cue);
        self.cues_processed += 1;

        // Servo loop: interpolate the pose at a much higher rate than the cue rate.
        let servo_dt = dt / SERVO_SUBSTEPS as f64;
        let mut saturated = false;
        for _ in 0..SERVO_SUBSTEPS {
            self.controller.servo_step(servo_dt);
            saturated |= self.controller.any_actuator_saturated();
        }
        self.telemetry.update(|t| t.platform_saturated |= saturated);
        Ok(())
    }

    fn last_step_cost(&self) -> Micros {
        Micros::from_millis(6)
    }

    fn begin_session(&mut self, _cb: &mut dyn CbApi, seed: u64) -> Result<(), CbError> {
        self.controller = MotionController::new(self.visual_fps, seed ^ MOTION_SEED_SALT);
        self.crane = CraneStateMsg::default();
        self.previous_speed = 0.0;
        self.previous_yaw = 0.0;
        self.cues_processed = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_cluster::{Cluster, ClusterConfig};

    #[test]
    fn motion_module_consumes_cues_in_a_cluster() {
        let (registry, fom) = CraneFom::standard();
        let telemetry = SharedTelemetry::new();
        let mut cluster = Cluster::new(ClusterConfig::default(), registry.clone());
        let pc = cluster.add_computer("motion-pc");
        cluster
            .add_lp(pc, Box::new(MotionPlatformLp::new(registry, fom, 16.0, 1, telemetry.clone())))
            .unwrap();
        cluster.initialize().unwrap();
        cluster.run_frames(20).unwrap();
        // The module processed one cue per frame even with no publisher around.
        // (Its crane state stays at defaults, which is a quiet platform.)
        assert!(!telemetry.snapshot().platform_saturated);
    }

    #[test]
    fn standalone_step_derives_accelerations() {
        let (registry, fom) = CraneFom::standard();
        let mut lp = MotionPlatformLp::new(registry, fom, 16.0, 2, SharedTelemetry::new());
        lp.crane.speed = 2.0;
        assert_eq!(lp.cues_processed(), 0);
        assert_eq!(lp.previous_speed, 0.0);
    }
}
