//! Operator models: what sits in the mockup seat.
//!
//! The physical trainer has a human trainee at the wheel; the reproduction
//! substitutes scripted operator policies so sessions are deterministic and
//! the scenario/scoring pipeline can be exercised end to end.

use crane_scene::course::Course;
use sim_math::{wrap_to_pi, Vec3};

use crate::fom::{CraneStateMsg, HookStateMsg, OperatorInputMsg, ScenarioStateMsg};

/// What the operator can observe from the cab (mirrors what the dashboard
/// module reflects from the Communication Backbone).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Observation {
    /// Latest crane state.
    pub crane: CraneStateMsg,
    /// Latest hook/cargo state.
    pub hook: HookStateMsg,
    /// Latest scenario state (phase and score).
    pub scenario: ScenarioStateMsg,
}

/// An operator policy.
pub trait Operator: Send {
    /// Policy name (for telemetry).
    fn name(&self) -> &str;

    /// Produces the control inputs for one frame of `dt` seconds.
    fn control(&mut self, observation: &Observation, dt: f64) -> OperatorInputMsg;

    /// Puts the operator back in the seat for a fresh session: any internal
    /// clock or progress state returns to its initial value. Stateless
    /// policies may keep the default no-op.
    fn reset(&mut self) {}
}

/// Nobody at the controls.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleOperator;

impl Operator for IdleOperator {
    fn name(&self) -> &str {
        "idle"
    }

    fn control(&mut self, _observation: &Observation, _dt: f64) -> OperatorInputMsg {
        OperatorInputMsg::default()
    }
}

/// A careless trainee: full throttle, wild steering, violent boom commands.
/// Used to generate collisions and alarms for the instructor-monitor tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecklessOperator {
    time: f64,
}

impl Operator for RecklessOperator {
    fn name(&self) -> &str {
        "reckless"
    }

    fn control(&mut self, _observation: &Observation, dt: f64) -> OperatorInputMsg {
        self.time += dt;
        OperatorInputMsg {
            steering: (self.time * 0.9).sin(),
            throttle: 1.0,
            brake: 0.0,
            reverse: false,
            slew: (self.time * 0.7).sin(),
            luff: -(self.time * 0.5).cos(),
            telescope: 1.0,
            hoist: (self.time * 0.8).sin(),
        }
    }

    fn reset(&mut self) {
        self.time = 0.0;
    }
}

/// A competent trainee executing the licensing exam of Figure 9.
#[derive(Debug, Clone)]
pub struct ExamOperator {
    course: Course,
    waypoint_index: usize,
    time: f64,
}

impl ExamOperator {
    /// Creates an exam operator for the given course.
    pub fn new(course: Course) -> ExamOperator {
        ExamOperator { course, waypoint_index: 0, time: 0.0 }
    }

    /// Index of the driving waypoint currently targeted.
    pub fn waypoint_index(&self) -> usize {
        self.waypoint_index
    }

    fn drive_toward(
        &mut self,
        target: Vec3,
        observation: &Observation,
        slow_down: bool,
    ) -> OperatorInputMsg {
        let crane = &observation.crane;
        let to_target = target - crane.chassis_position;
        let distance = to_target.horizontal().length();
        let desired_heading = to_target.x.atan2(to_target.z);
        let heading_error = wrap_to_pi(desired_heading - crane.chassis_yaw);

        let steering = (heading_error * 1.5).clamp(-1.0, 1.0);
        let target_speed = if slow_down { (distance * 0.4).min(3.0) } else { 6.0 };
        let speed_error = target_speed - crane.speed;
        OperatorInputMsg {
            steering,
            throttle: (speed_error * 0.6).clamp(0.0, 1.0),
            brake: (-speed_error * 0.4).clamp(0.0, 1.0),
            reverse: false,
            ..Default::default()
        }
    }

    fn boom_toward(
        &self,
        target: Vec3,
        observation: &Observation,
        target_hook_height: f64,
    ) -> OperatorInputMsg {
        let crane = &observation.crane;
        let hook = &observation.hook;
        // Desired slew: at slew 0 the boom points along the chassis -Z axis, so
        // the world heading of the boom is `yaw + slew + pi`; solve for the slew
        // that points it at the target.
        let to_target = target - crane.chassis_position;
        let target_heading = to_target.x.atan2(to_target.z);
        let desired_slew = wrap_to_pi(target_heading + std::f64::consts::PI - crane.chassis_yaw);
        let slew_error = wrap_to_pi(desired_slew - crane.slew_angle);

        // Desired working radius vs current: trim with the telescope.
        let desired_radius = to_target.horizontal().length();
        let current_radius = (crane.boom_tip - crane.chassis_position).horizontal().length();
        let radius_error = desired_radius - current_radius;

        // Hook height control with the hoist (positive hoist pays out cable).
        let height_error = hook.hook_position.y - target_hook_height;

        OperatorInputMsg {
            slew: (slew_error * 2.0).clamp(-1.0, 1.0),
            telescope: (radius_error * 0.8).clamp(-1.0, 1.0),
            luff: (-radius_error * 0.3).clamp(-0.4, 0.4),
            hoist: (height_error * 0.8).clamp(-1.0, 1.0),
            brake: 1.0,
            ..Default::default()
        }
    }
}

impl Operator for ExamOperator {
    fn name(&self) -> &str {
        "exam"
    }

    fn control(&mut self, observation: &Observation, dt: f64) -> OperatorInputMsg {
        self.time += dt;
        let phase = observation.scenario.phase.as_str();
        match phase {
            "Driving" => {
                let waypoints = &self.course.driving_waypoints;
                if self.waypoint_index < waypoints.len() {
                    let target = waypoints[self.waypoint_index];
                    let distance =
                        (target - observation.crane.chassis_position).horizontal().length();
                    if distance < 4.0 {
                        self.waypoint_index += 1;
                    }
                }
                let last = self.waypoint_index + 1 >= self.course.driving_waypoints.len();
                let target =
                    self.course.driving_waypoints.get(self.waypoint_index).copied().unwrap_or(
                        *self.course.driving_waypoints.last().expect("course has waypoints"),
                    );
                self.drive_toward(target, observation, last)
            }
            "Lifting" => {
                // Reach over the pickup circle and lower the hook to the cargo,
                // then the scenario advances once the cargo is attached and high.
                let target_height = if observation.hook.cargo_attached {
                    self.course.carry_height
                } else {
                    observation.hook.cargo_position.y + 0.5
                };
                self.boom_toward(self.course.pickup_center, observation, target_height)
            }
            "Traverse" => self.boom_toward(
                self.course.turnaround_center,
                observation,
                self.course.carry_height,
            ),
            "Return" => {
                self.boom_toward(self.course.pickup_center, observation, self.course.carry_height)
            }
            _ => OperatorInputMsg { brake: 1.0, ..Default::default() },
        }
    }

    fn reset(&mut self) {
        self.waypoint_index = 0;
        self.time = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation_at(position: Vec3, yaw: f64, phase: &str) -> Observation {
        Observation {
            crane: CraneStateMsg {
                chassis_position: position,
                chassis_yaw: yaw,
                boom_tip: position + Vec3::new(0.0, 10.0, -8.0),
                ..Default::default()
            },
            hook: HookStateMsg {
                hook_position: position + Vec3::new(0.0, 5.0, -8.0),
                cargo_position: Vec3::new(-15.0, 0.6, 60.0),
                ..Default::default()
            },
            scenario: ScenarioStateMsg { phase: phase.to_owned(), ..Default::default() },
        }
    }

    #[test]
    fn idle_operator_does_nothing() {
        let mut op = IdleOperator;
        let input = op.control(&observation_at(Vec3::ZERO, 0.0, "Driving"), 0.1);
        assert_eq!(input, OperatorInputMsg::default());
    }

    #[test]
    fn reckless_operator_floors_the_throttle() {
        let mut op = RecklessOperator::default();
        let input = op.control(&observation_at(Vec3::ZERO, 0.0, "Driving"), 0.1);
        assert_eq!(input.throttle, 1.0);
        assert!(input.slew.abs() <= 1.0);
    }

    #[test]
    fn exam_operator_accelerates_toward_the_first_waypoint() {
        let course = Course::licensing_exam();
        let mut op = ExamOperator::new(course.clone());
        let obs = observation_at(course.start_position, 0.0, "Driving");
        let input = op.control(&obs, 1.0 / 16.0);
        assert!(input.throttle > 0.3, "should accelerate, got {input:?}");
        assert!(input.steering.abs() < 0.5, "the first waypoint is straight ahead");
    }

    #[test]
    fn exam_operator_steers_toward_an_offset_waypoint() {
        let course = Course::licensing_exam();
        let mut op = ExamOperator::new(course.clone());
        // Stand far to the right of the first waypoint: it must steer left (negative x error).
        let obs = observation_at(course.start_position + Vec3::new(20.0, 0.0, 0.0), 0.0, "Driving");
        let input = op.control(&obs, 1.0 / 16.0);
        assert!(input.steering.abs() > 0.3, "expected a steering correction, got {input:?}");
    }

    #[test]
    fn exam_operator_advances_waypoints_as_it_reaches_them() {
        let course = Course::licensing_exam();
        let mut op = ExamOperator::new(course.clone());
        for (i, wp) in course.driving_waypoints.iter().enumerate() {
            let obs = observation_at(*wp, 0.0, "Driving");
            op.control(&obs, 0.1);
            assert!(op.waypoint_index() >= i.min(course.driving_waypoints.len() - 1));
        }
        assert!(op.waypoint_index() >= course.driving_waypoints.len() - 1);
    }

    #[test]
    fn exam_operator_lowers_the_hook_during_lifting() {
        let course = Course::licensing_exam();
        let mut op = ExamOperator::new(course.clone());
        let mut obs = observation_at(Vec3::new(-5.0, 0.0, 55.0), 0.0, "Lifting");
        obs.hook.hook_position = Vec3::new(-14.0, 8.0, 60.0);
        obs.hook.cargo_position = course.pickup_center + Vec3::new(0.0, 0.6, 0.0);
        let input = op.control(&obs, 1.0 / 16.0);
        assert!(input.hoist > 0.2, "hook is above the cargo: pay out cable, got {input:?}");
        assert!(input.brake > 0.5, "vehicle must hold still while lifting");
    }
}
