//! The dashboard module (paper §3.2) as a Logical Process.
//!
//! In the original trainer this module reads the physical steering wheel, gas
//! pedal, brake and the two boom joysticks, translates the signals into
//! messages for the other modules, and drives the meters and indicators when
//! messages arrive from the instructor monitor. Here the physical operator is
//! replaced by an [`Operator`] policy, and the meters are modelled with
//! rate-limited needles so fault injections and mirroring behave like the
//! original instrument cluster.

use std::collections::BTreeMap;

use cod_cb::{CbApi, CbError, ClassRegistry, ObjectId};
use cod_cluster::LogicalProcess;
use cod_net::Micros;
use sim_math::RateLimiter;

use crate::fom::{
    CraneFom, CraneStateMsg, FaultMsg, HookStateMsg, OperatorInputMsg, ScenarioStateMsg,
};
use crate::operator::{Observation, Operator};
use crate::telemetry::SharedTelemetry;

/// The instrument cluster of the mockup (speedometer, engine gauge, load-moment
/// indicator), with needle dynamics and instructor fault overrides.
#[derive(Debug)]
pub struct InstrumentPanel {
    speedometer: RateLimiter,
    engine_gauge: RateLimiter,
    load_moment: RateLimiter,
    faults: BTreeMap<String, f64>,
}

impl Default for InstrumentPanel {
    fn default() -> Self {
        InstrumentPanel {
            speedometer: RateLimiter::new(40.0),
            engine_gauge: RateLimiter::new(2.0),
            load_moment: RateLimiter::new(1.5),
            faults: BTreeMap::new(),
        }
    }
}

impl InstrumentPanel {
    /// Applies (or clears, when `value` is NaN) an instructor fault override.
    pub fn inject_fault(&mut self, fault: &FaultMsg) {
        if fault.value.is_nan() {
            self.faults.remove(&fault.instrument);
        } else {
            self.faults.insert(fault.instrument.clone(), fault.value);
        }
    }

    /// Advances the needles toward the true values and returns what the
    /// instruments display (fault overrides win).
    pub fn update(
        &mut self,
        speed_kmh: f64,
        engine: f64,
        load_moment: f64,
        dt: f64,
    ) -> (f64, f64, f64) {
        let displayed_speed = self
            .faults
            .get("speedometer")
            .copied()
            .unwrap_or_else(|| self.speedometer.update(speed_kmh, dt));
        let displayed_engine = self
            .faults
            .get("engine")
            .copied()
            .unwrap_or_else(|| self.engine_gauge.update(engine, dt));
        let displayed_moment = self
            .faults
            .get("load_moment")
            .copied()
            .unwrap_or_else(|| self.load_moment.update(load_moment, dt));
        (displayed_speed, displayed_engine, displayed_moment)
    }
}

/// The dashboard Logical Process.
pub struct DashboardLp {
    registry: ClassRegistry,
    fom: CraneFom,
    operator: Box<dyn Operator>,
    observation: Observation,
    panel: InstrumentPanel,
    input_object: Option<ObjectId>,
    telemetry: SharedTelemetry,
    last_input: OperatorInputMsg,
}

impl DashboardLp {
    /// Creates the dashboard module with an operator policy at the controls.
    pub fn new(
        registry: ClassRegistry,
        fom: CraneFom,
        operator: Box<dyn Operator>,
        telemetry: SharedTelemetry,
    ) -> DashboardLp {
        DashboardLp {
            registry,
            fom,
            operator,
            observation: Observation::default(),
            panel: InstrumentPanel::default(),
            input_object: None,
            telemetry,
            last_input: OperatorInputMsg::default(),
        }
    }

    /// The most recent control inputs sent to the cluster.
    pub fn last_input(&self) -> OperatorInputMsg {
        self.last_input
    }
}

impl LogicalProcess for DashboardLp {
    fn name(&self) -> &str {
        "dashboard"
    }

    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.publish_object_class(self.fom.operator_input)?;
        cb.subscribe_object_class(self.fom.crane_state)?;
        cb.subscribe_object_class(self.fom.hook_state)?;
        cb.subscribe_object_class(self.fom.scenario_state)?;
        cb.subscribe_interaction_class(self.fom.fault)?;
        self.input_object = Some(cb.register_object(self.fom.operator_input)?);
        Ok(())
    }

    fn step(&mut self, cb: &mut dyn CbApi, dt: f64) -> Result<(), CbError> {
        // Reflect the world state onto the operator's observation.
        for reflection in cb.reflections() {
            if reflection.class == self.fom.crane_state {
                self.observation.crane =
                    CraneStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            } else if reflection.class == self.fom.hook_state {
                self.observation.hook =
                    HookStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            } else if reflection.class == self.fom.scenario_state {
                self.observation.scenario =
                    ScenarioStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            }
        }
        // Instructor fault injections drive the meters directly (Figure 6).
        for interaction in cb.interactions() {
            if interaction.class == self.fom.fault {
                let fault =
                    FaultMsg::from_values(&self.registry, &self.fom, &interaction.parameters);
                self.panel.inject_fault(&fault);
            }
        }

        // Read the "input devices" and publish the translated message.
        let input = self.operator.control(&self.observation, dt);
        self.last_input = input;
        cb.update_attributes(
            self.input_object.expect("init registered the input object"),
            input.to_values(&self.registry, &self.fom),
        )?;

        // Drive the instrument needles and mirror them into telemetry (the
        // instructor's Dashboard window shows the same values).
        let (speed, engine, moment) = self.panel.update(
            self.observation.crane.speed.abs() * 3.6,
            self.observation.crane.engine_intensity,
            self.observation.crane.moment_utilization,
            dt,
        );
        self.telemetry.update(|t| {
            t.dashboard_window.speed_kmh = speed;
            t.dashboard_window.engine_load = engine;
            t.dashboard_window.load_moment = moment;
            t.dashboard_window.steering = input.steering;
            t.dashboard_window.reverse = input.reverse;
        });
        Ok(())
    }

    fn last_step_cost(&self) -> Micros {
        Micros::from_millis(2)
    }

    fn begin_session(&mut self, _cb: &mut dyn CbApi, _seed: u64) -> Result<(), CbError> {
        self.operator.reset();
        self.observation = Observation::default();
        self.panel = InstrumentPanel::default();
        self.last_input = OperatorInputMsg::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::RecklessOperator;
    use cod_cluster::{Cluster, ClusterConfig};

    #[test]
    fn panel_needles_are_rate_limited_and_faultable() {
        let mut panel = InstrumentPanel::default();
        let (first, _, _) = panel.update(0.0, 0.0, 0.0, 0.1);
        assert_eq!(first, 0.0);
        let (jump, _, _) = panel.update(100.0, 0.5, 0.5, 0.1);
        assert!(jump < 10.0, "needle jumped instantly to {jump}");
        panel.inject_fault(&FaultMsg { instrument: "speedometer".into(), value: 77.0 });
        let (faulted, _, _) = panel.update(0.0, 0.0, 0.0, 0.1);
        assert_eq!(faulted, 77.0);
        panel.inject_fault(&FaultMsg { instrument: "speedometer".into(), value: f64::NAN });
        let (cleared, _, _) = panel.update(0.0, 0.0, 0.0, 0.1);
        assert!(cleared < 10.0);
    }

    #[test]
    fn dashboard_publishes_operator_input() {
        let (registry, fom) = CraneFom::standard();
        let telemetry = SharedTelemetry::new();
        let mut cluster = Cluster::new(ClusterConfig::default(), registry.clone());
        let pc = cluster.add_computer("dashboard-pc");
        cluster
            .add_lp(
                pc,
                Box::new(DashboardLp::new(
                    registry,
                    fom,
                    Box::new(RecklessOperator::default()),
                    telemetry.clone(),
                )),
            )
            .unwrap();
        cluster.initialize().unwrap();
        cluster.run_frames(10).unwrap();
        let stats = cluster.computer(pc).kernel().stats().clone();
        assert_eq!(stats.updates_published, 10);
        let snap = telemetry.snapshot();
        assert!(snap.dashboard_window.engine_load >= 0.0);
    }
}
