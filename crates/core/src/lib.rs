//! The mobile-crane training simulator on a Cluster Of Desktop computers.
//!
//! This crate is the top of the reproduction: it assembles the seven modules
//! of the paper's Figure 3 — dashboard, motion platform controller, instructor
//! monitor, scenario module, dynamics model, visual display and audio module —
//! as independent Logical Processes, plugs them into the Communication
//! Backbone, distributes them across the eight rack-mounted desktop computers
//! of Figure 11, and runs training or licensing-exam sessions on the result.
//!
//! Quick start:
//!
//! ```
//! use crane_sim::{CraneSimulator, SimulatorConfig};
//!
//! let config = SimulatorConfig { exam_frames: 200, ..SimulatorConfig::default() };
//! let mut simulator = CraneSimulator::new(config).expect("simulator builds");
//! simulator.run().expect("session runs");
//! let report = simulator.report();
//! assert!(report.frames_run >= 200);
//! assert!(report.synchronized_fps > 5.0);
//! ```

pub mod audio;
pub mod backend;
pub mod config;
pub mod dashboard;
pub mod dynamics;
pub mod fom;
pub mod instructor;
pub mod motion;
pub mod operator;
pub mod scenario;
pub mod simulator;
pub mod telemetry;
pub mod visual;

pub use backend::{Coarse, FullFidelity, SimBackend, SCORE_DRIFT_TOLERANCE};
pub use config::{FidelityTier, GpuGeneration, OperatorKind, SimulatorConfig};
pub use fom::CraneFom;
pub use operator::{ExamOperator, IdleOperator, Observation, Operator, RecklessOperator};
pub use simulator::{
    step_frames_batch, step_frames_batch_traced, BatchStepStats, CraneSimulator, SessionReport,
};
pub use telemetry::{FrameDigest, SharedTelemetry, TelemetrySnapshot, TelemetryTrace};
