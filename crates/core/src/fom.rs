//! The federation object model of the crane simulator.
//!
//! Every module exchanges state through the object and interaction classes
//! declared here, mirroring how the original system routed "event messages"
//! between its seven modules over the Communication Backbone.

use cod_cb::{AttributeValues, CbError, ClassRegistry, InteractionClassId, ObjectClassId, Value};
use cod_cluster::FrameSyncFom;
use serde::{Deserialize, Serialize};
use sim_math::Vec3;

/// Handles to every class the crane simulator declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CraneFom {
    /// Crane chassis + superstructure state published by the dynamics module.
    pub crane_state: ObjectClassId,
    /// Hook / cargo state published by the dynamics module.
    pub hook_state: ObjectClassId,
    /// Operator inputs published by the dashboard module.
    pub operator_input: ObjectClassId,
    /// Scenario phase and score published by the scenario module.
    pub scenario_state: ObjectClassId,
    /// Collision events sent by the dynamics module.
    pub collision: InteractionClassId,
    /// Alarm events sent by the instructor monitor.
    pub alarm: InteractionClassId,
    /// Instrument fault injections sent by the instructor monitor (Figure 6:
    /// "the instrument display may be used for trouble shooting training").
    pub fault: InteractionClassId,
    /// Frame-synchronization interactions of the surround view.
    pub sync: FrameSyncFom,
}

impl CraneFom {
    /// Declares every class in `registry`.
    ///
    /// # Errors
    ///
    /// Returns an error if any class name is already taken.
    pub fn register(registry: &mut ClassRegistry) -> Result<CraneFom, CbError> {
        let crane_state = registry.register_object_class(
            "CraneState",
            &[
                "chassis_position",
                "chassis_yaw",
                "chassis_pitch",
                "chassis_roll",
                "speed",
                "engine_intensity",
                "slew_angle",
                "luff_angle",
                "boom_length",
                "cable_length",
                "boom_tip",
                "radius_utilization",
                "moment_utilization",
            ],
        )?;
        let hook_state = registry.register_object_class(
            "HookState",
            &["hook_position", "cargo_position", "swing_angle", "cargo_attached", "cargo_mass"],
        )?;
        let operator_input = registry.register_object_class(
            "OperatorInput",
            &["steering", "throttle", "brake", "reverse", "slew", "luff", "telescope", "hoist"],
        )?;
        let scenario_state = registry.register_object_class(
            "ScenarioState",
            &["phase", "score", "elapsed", "complete", "passed", "bar_hits"],
        )?;
        let collision = registry.register_interaction_class(
            "CollisionEvent",
            &["location", "impulse", "obstacle", "scored"],
        )?;
        let alarm =
            registry.register_interaction_class("AlarmEvent", &["code", "active", "message"])?;
        let fault =
            registry.register_interaction_class("FaultInjection", &["instrument", "value"])?;
        let sync = FrameSyncFom::register(registry)?;
        Ok(CraneFom {
            crane_state,
            hook_state,
            operator_input,
            scenario_state,
            collision,
            alarm,
            fault,
            sync,
        })
    }

    /// Builds the standard registry plus handles in one call.
    pub fn standard() -> (ClassRegistry, CraneFom) {
        let mut registry = ClassRegistry::new();
        let fom = CraneFom::register(&mut registry).expect("fresh registry has no name clashes");
        (registry, fom)
    }
}

fn put(
    registry: &ClassRegistry,
    class: ObjectClassId,
    values: &mut AttributeValues,
    name: &str,
    value: Value,
) {
    let id =
        registry.attribute_id(class, name).unwrap_or_else(|| panic!("attribute {name} declared"));
    values.insert(id, value);
}

fn put_param(
    registry: &ClassRegistry,
    class: InteractionClassId,
    values: &mut AttributeValues,
    name: &str,
    value: Value,
) {
    let id =
        registry.parameter_id(class, name).unwrap_or_else(|| panic!("parameter {name} declared"));
    values.insert(id, value);
}

fn get(
    registry: &ClassRegistry,
    class: ObjectClassId,
    values: &AttributeValues,
    name: &str,
) -> Option<Value> {
    registry.attribute_id(class, name).and_then(|id| values.get(&id)).cloned()
}

fn get_param(
    registry: &ClassRegistry,
    class: InteractionClassId,
    values: &AttributeValues,
    name: &str,
) -> Option<Value> {
    registry.parameter_id(class, name).and_then(|id| values.get(&id)).cloned()
}

fn f64_of(v: Option<Value>) -> f64 {
    v.and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn vec3_of(v: Option<Value>) -> Vec3 {
    v.and_then(|v| v.as_vec3()).map(Vec3::from).unwrap_or(Vec3::ZERO)
}

fn bool_of(v: Option<Value>) -> bool {
    v.and_then(|v| v.as_bool()).unwrap_or(false)
}

fn text_of(v: Option<Value>) -> String {
    v.and_then(|v| v.as_text().map(str::to_owned)).unwrap_or_default()
}

fn u32_of(v: Option<Value>) -> u32 {
    v.and_then(|v| v.as_u32()).unwrap_or(0)
}

/// Crane state as published by the dynamics module.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CraneStateMsg {
    pub chassis_position: Vec3,
    pub chassis_yaw: f64,
    pub chassis_pitch: f64,
    pub chassis_roll: f64,
    pub speed: f64,
    pub engine_intensity: f64,
    pub slew_angle: f64,
    pub luff_angle: f64,
    pub boom_length: f64,
    pub cable_length: f64,
    pub boom_tip: Vec3,
    pub radius_utilization: f64,
    pub moment_utilization: f64,
}

impl CraneStateMsg {
    /// Encodes into attribute values.
    pub fn to_values(&self, registry: &ClassRegistry, fom: &CraneFom) -> AttributeValues {
        let mut v = AttributeValues::new();
        let c = fom.crane_state;
        put(registry, c, &mut v, "chassis_position", Value::Vec3(self.chassis_position.into()));
        put(registry, c, &mut v, "chassis_yaw", Value::F64(self.chassis_yaw));
        put(registry, c, &mut v, "chassis_pitch", Value::F64(self.chassis_pitch));
        put(registry, c, &mut v, "chassis_roll", Value::F64(self.chassis_roll));
        put(registry, c, &mut v, "speed", Value::F64(self.speed));
        put(registry, c, &mut v, "engine_intensity", Value::F64(self.engine_intensity));
        put(registry, c, &mut v, "slew_angle", Value::F64(self.slew_angle));
        put(registry, c, &mut v, "luff_angle", Value::F64(self.luff_angle));
        put(registry, c, &mut v, "boom_length", Value::F64(self.boom_length));
        put(registry, c, &mut v, "cable_length", Value::F64(self.cable_length));
        put(registry, c, &mut v, "boom_tip", Value::Vec3(self.boom_tip.into()));
        put(registry, c, &mut v, "radius_utilization", Value::F64(self.radius_utilization));
        put(registry, c, &mut v, "moment_utilization", Value::F64(self.moment_utilization));
        v
    }

    /// Decodes from attribute values (missing attributes default to zero).
    pub fn from_values(
        registry: &ClassRegistry,
        fom: &CraneFom,
        values: &AttributeValues,
    ) -> CraneStateMsg {
        let c = fom.crane_state;
        CraneStateMsg {
            chassis_position: vec3_of(get(registry, c, values, "chassis_position")),
            chassis_yaw: f64_of(get(registry, c, values, "chassis_yaw")),
            chassis_pitch: f64_of(get(registry, c, values, "chassis_pitch")),
            chassis_roll: f64_of(get(registry, c, values, "chassis_roll")),
            speed: f64_of(get(registry, c, values, "speed")),
            engine_intensity: f64_of(get(registry, c, values, "engine_intensity")),
            slew_angle: f64_of(get(registry, c, values, "slew_angle")),
            luff_angle: f64_of(get(registry, c, values, "luff_angle")),
            boom_length: f64_of(get(registry, c, values, "boom_length")),
            cable_length: f64_of(get(registry, c, values, "cable_length")),
            boom_tip: vec3_of(get(registry, c, values, "boom_tip")),
            radius_utilization: f64_of(get(registry, c, values, "radius_utilization")),
            moment_utilization: f64_of(get(registry, c, values, "moment_utilization")),
        }
    }
}

/// Hook and cargo state as published by the dynamics module.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HookStateMsg {
    pub hook_position: Vec3,
    pub cargo_position: Vec3,
    pub swing_angle: f64,
    pub cargo_attached: bool,
    pub cargo_mass: f64,
}

impl HookStateMsg {
    /// Encodes into attribute values.
    pub fn to_values(&self, registry: &ClassRegistry, fom: &CraneFom) -> AttributeValues {
        let mut v = AttributeValues::new();
        let c = fom.hook_state;
        put(registry, c, &mut v, "hook_position", Value::Vec3(self.hook_position.into()));
        put(registry, c, &mut v, "cargo_position", Value::Vec3(self.cargo_position.into()));
        put(registry, c, &mut v, "swing_angle", Value::F64(self.swing_angle));
        put(registry, c, &mut v, "cargo_attached", Value::Bool(self.cargo_attached));
        put(registry, c, &mut v, "cargo_mass", Value::F64(self.cargo_mass));
        v
    }

    /// Decodes from attribute values.
    pub fn from_values(
        registry: &ClassRegistry,
        fom: &CraneFom,
        values: &AttributeValues,
    ) -> HookStateMsg {
        let c = fom.hook_state;
        HookStateMsg {
            hook_position: vec3_of(get(registry, c, values, "hook_position")),
            cargo_position: vec3_of(get(registry, c, values, "cargo_position")),
            swing_angle: f64_of(get(registry, c, values, "swing_angle")),
            cargo_attached: bool_of(get(registry, c, values, "cargo_attached")),
            cargo_mass: f64_of(get(registry, c, values, "cargo_mass")),
        }
    }
}

/// Operator inputs as published by the dashboard module.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OperatorInputMsg {
    pub steering: f64,
    pub throttle: f64,
    pub brake: f64,
    pub reverse: bool,
    pub slew: f64,
    pub luff: f64,
    pub telescope: f64,
    pub hoist: f64,
}

impl OperatorInputMsg {
    /// Encodes into attribute values.
    pub fn to_values(&self, registry: &ClassRegistry, fom: &CraneFom) -> AttributeValues {
        let mut v = AttributeValues::new();
        let c = fom.operator_input;
        put(registry, c, &mut v, "steering", Value::F64(self.steering));
        put(registry, c, &mut v, "throttle", Value::F64(self.throttle));
        put(registry, c, &mut v, "brake", Value::F64(self.brake));
        put(registry, c, &mut v, "reverse", Value::Bool(self.reverse));
        put(registry, c, &mut v, "slew", Value::F64(self.slew));
        put(registry, c, &mut v, "luff", Value::F64(self.luff));
        put(registry, c, &mut v, "telescope", Value::F64(self.telescope));
        put(registry, c, &mut v, "hoist", Value::F64(self.hoist));
        v
    }

    /// Decodes from attribute values.
    pub fn from_values(
        registry: &ClassRegistry,
        fom: &CraneFom,
        values: &AttributeValues,
    ) -> OperatorInputMsg {
        let c = fom.operator_input;
        OperatorInputMsg {
            steering: f64_of(get(registry, c, values, "steering")),
            throttle: f64_of(get(registry, c, values, "throttle")),
            brake: f64_of(get(registry, c, values, "brake")),
            reverse: bool_of(get(registry, c, values, "reverse")),
            slew: f64_of(get(registry, c, values, "slew")),
            luff: f64_of(get(registry, c, values, "luff")),
            telescope: f64_of(get(registry, c, values, "telescope")),
            hoist: f64_of(get(registry, c, values, "hoist")),
        }
    }
}

/// Scenario phase and score as published by the scenario module.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScenarioStateMsg {
    pub phase: String,
    pub score: f64,
    pub elapsed: f64,
    pub complete: bool,
    pub passed: bool,
    pub bar_hits: u32,
}

impl ScenarioStateMsg {
    /// Encodes into attribute values.
    pub fn to_values(&self, registry: &ClassRegistry, fom: &CraneFom) -> AttributeValues {
        let mut v = AttributeValues::new();
        let c = fom.scenario_state;
        put(registry, c, &mut v, "phase", Value::Text(self.phase.clone()));
        put(registry, c, &mut v, "score", Value::F64(self.score));
        put(registry, c, &mut v, "elapsed", Value::F64(self.elapsed));
        put(registry, c, &mut v, "complete", Value::Bool(self.complete));
        put(registry, c, &mut v, "passed", Value::Bool(self.passed));
        put(registry, c, &mut v, "bar_hits", Value::U32(self.bar_hits));
        v
    }

    /// Decodes from attribute values.
    pub fn from_values(
        registry: &ClassRegistry,
        fom: &CraneFom,
        values: &AttributeValues,
    ) -> ScenarioStateMsg {
        let c = fom.scenario_state;
        ScenarioStateMsg {
            phase: text_of(get(registry, c, values, "phase")),
            score: f64_of(get(registry, c, values, "score")),
            elapsed: f64_of(get(registry, c, values, "elapsed")),
            complete: bool_of(get(registry, c, values, "complete")),
            passed: bool_of(get(registry, c, values, "passed")),
            bar_hits: u32_of(get(registry, c, values, "bar_hits")),
        }
    }
}

/// A collision event sent by the dynamics module.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CollisionMsg {
    pub location: Vec3,
    pub impulse: f64,
    pub obstacle: String,
    pub scored: bool,
}

impl CollisionMsg {
    /// Encodes into interaction parameters.
    pub fn to_values(&self, registry: &ClassRegistry, fom: &CraneFom) -> AttributeValues {
        let mut v = AttributeValues::new();
        let c = fom.collision;
        put_param(registry, c, &mut v, "location", Value::Vec3(self.location.into()));
        put_param(registry, c, &mut v, "impulse", Value::F64(self.impulse));
        put_param(registry, c, &mut v, "obstacle", Value::Text(self.obstacle.clone()));
        put_param(registry, c, &mut v, "scored", Value::Bool(self.scored));
        v
    }

    /// Decodes from interaction parameters.
    pub fn from_values(
        registry: &ClassRegistry,
        fom: &CraneFom,
        values: &AttributeValues,
    ) -> CollisionMsg {
        let c = fom.collision;
        CollisionMsg {
            location: vec3_of(get_param(registry, c, values, "location")),
            impulse: f64_of(get_param(registry, c, values, "impulse")),
            obstacle: text_of(get_param(registry, c, values, "obstacle")),
            scored: bool_of(get_param(registry, c, values, "scored")),
        }
    }
}

/// An alarm raised (or cleared) by the instructor monitor.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AlarmMsg {
    pub code: u32,
    pub active: bool,
    pub message: String,
}

/// Well-known alarm codes of the Status window (Figure 5).
pub mod alarm_codes {
    /// Derrick boom outside the safety zone.
    pub const SAFETY_ZONE: u32 = 1;
    /// Load moment above 90 % of the rated moment.
    pub const OVERLOAD: u32 = 2;
    /// A scored obstacle (bar) was struck.
    pub const BAR_COLLISION: u32 = 3;
    /// The chassis roll/pitch indicates a tip-over risk while driving.
    pub const TIP_OVER: u32 = 4;
}

impl AlarmMsg {
    /// Encodes into interaction parameters.
    pub fn to_values(&self, registry: &ClassRegistry, fom: &CraneFom) -> AttributeValues {
        let mut v = AttributeValues::new();
        let c = fom.alarm;
        put_param(registry, c, &mut v, "code", Value::U32(self.code));
        put_param(registry, c, &mut v, "active", Value::Bool(self.active));
        put_param(registry, c, &mut v, "message", Value::Text(self.message.clone()));
        v
    }

    /// Decodes from interaction parameters.
    pub fn from_values(
        registry: &ClassRegistry,
        fom: &CraneFom,
        values: &AttributeValues,
    ) -> AlarmMsg {
        let c = fom.alarm;
        AlarmMsg {
            code: u32_of(get_param(registry, c, values, "code")),
            active: bool_of(get_param(registry, c, values, "active")),
            message: text_of(get_param(registry, c, values, "message")),
        }
    }
}

/// A fault injected by the instructor into a dashboard instrument.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultMsg {
    /// Name of the instrument (e.g. "speedometer").
    pub instrument: String,
    /// Value the instrument is forced to display.
    pub value: f64,
}

impl FaultMsg {
    /// Encodes into interaction parameters.
    pub fn to_values(&self, registry: &ClassRegistry, fom: &CraneFom) -> AttributeValues {
        let mut v = AttributeValues::new();
        let c = fom.fault;
        put_param(registry, c, &mut v, "instrument", Value::Text(self.instrument.clone()));
        put_param(registry, c, &mut v, "value", Value::F64(self.value));
        v
    }

    /// Decodes from interaction parameters.
    pub fn from_values(
        registry: &ClassRegistry,
        fom: &CraneFom,
        values: &AttributeValues,
    ) -> FaultMsg {
        let c = fom.fault;
        FaultMsg {
            instrument: text_of(get_param(registry, c, values, "instrument")),
            value: f64_of(get_param(registry, c, values, "value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fom_registers_all_classes() {
        let (registry, fom) = CraneFom::standard();
        assert!(registry.object_class_count() >= 4);
        assert!(registry.interaction_class_count() >= 5);
        assert!(registry.contains_object_class(fom.crane_state));
        assert!(registry.contains_interaction_class(fom.collision));
    }

    #[test]
    fn crane_state_roundtrips() {
        let (registry, fom) = CraneFom::standard();
        let msg = CraneStateMsg {
            chassis_position: Vec3::new(1.0, 2.0, 3.0),
            chassis_yaw: 0.5,
            chassis_pitch: -0.1,
            chassis_roll: 0.05,
            speed: 4.2,
            engine_intensity: 0.7,
            slew_angle: 1.1,
            luff_angle: 0.8,
            boom_length: 14.0,
            cable_length: 6.5,
            boom_tip: Vec3::new(2.0, 12.0, 5.0),
            radius_utilization: 0.6,
            moment_utilization: 0.4,
        };
        let values = msg.to_values(&registry, &fom);
        assert_eq!(CraneStateMsg::from_values(&registry, &fom, &values), msg);
    }

    #[test]
    fn remaining_messages_roundtrip() {
        let (registry, fom) = CraneFom::standard();
        let hook = HookStateMsg {
            hook_position: Vec3::new(0.0, 5.0, 1.0),
            cargo_position: Vec3::new(0.0, 1.0, 1.0),
            swing_angle: 0.2,
            cargo_attached: true,
            cargo_mass: 1500.0,
        };
        assert_eq!(
            HookStateMsg::from_values(&registry, &fom, &hook.to_values(&registry, &fom)),
            hook
        );

        let input = OperatorInputMsg {
            steering: -0.3,
            throttle: 0.9,
            reverse: true,
            hoist: -0.5,
            ..Default::default()
        };
        assert_eq!(
            OperatorInputMsg::from_values(&registry, &fom, &input.to_values(&registry, &fom)),
            input
        );

        let scenario = ScenarioStateMsg {
            phase: "Traverse".into(),
            score: 80.0,
            elapsed: 125.0,
            complete: false,
            passed: false,
            bar_hits: 2,
        };
        assert_eq!(
            ScenarioStateMsg::from_values(&registry, &fom, &scenario.to_values(&registry, &fom)),
            scenario
        );

        let collision = CollisionMsg {
            location: Vec3::unit_x(),
            impulse: 3.0,
            obstacle: "bar-1".into(),
            scored: true,
        };
        assert_eq!(
            CollisionMsg::from_values(&registry, &fom, &collision.to_values(&registry, &fom)),
            collision
        );

        let alarm =
            AlarmMsg { code: alarm_codes::OVERLOAD, active: true, message: "overload".into() };
        assert_eq!(
            AlarmMsg::from_values(&registry, &fom, &alarm.to_values(&registry, &fom)),
            alarm
        );

        let fault = FaultMsg { instrument: "speedometer".into(), value: 55.0 };
        assert_eq!(
            FaultMsg::from_values(&registry, &fom, &fault.to_values(&registry, &fom)),
            fault
        );
    }

    #[test]
    fn missing_attributes_default_to_zero() {
        let (registry, fom) = CraneFom::standard();
        let empty = AttributeValues::new();
        let msg = CraneStateMsg::from_values(&registry, &fom, &empty);
        assert_eq!(msg.speed, 0.0);
        assert_eq!(msg.chassis_position, Vec3::ZERO);
    }
}
