//! The audio module (paper §3.7) as a Logical Process.
//!
//! Produces the static background noise of the construction site plus the
//! dynamic effects — engine load, hoist/slew motor whine, collision clangs,
//! alarm beeps — by driving the `audio-sim` mixer from the reflected state and
//! the interactions broadcast by the other modules.

use audio_sim::{Mixer, SoundEvent, WaveBank};
use cod_cb::{CbApi, CbError, ClassRegistry};
use cod_cluster::{BatchScratch, LogicalProcess};
use cod_net::Micros;

use crate::fom::{AlarmMsg, CollisionMsg, CraneFom, CraneStateMsg, OperatorInputMsg};
use crate::telemetry::SharedTelemetry;

/// The audio Logical Process.
pub struct AudioLp {
    registry: ClassRegistry,
    fom: CraneFom,
    telemetry: SharedTelemetry,
    mixer: Mixer,
    crane: CraneStateMsg,
    input: OperatorInputMsg,
    collisions_heard: u64,
}

impl AudioLp {
    /// Creates the audio module.
    pub fn new(registry: ClassRegistry, fom: CraneFom, telemetry: SharedTelemetry) -> AudioLp {
        let mut mixer = Mixer::new(11_025);
        mixer.add_background_noise();
        AudioLp {
            registry,
            fom,
            telemetry,
            mixer,
            crane: CraneStateMsg::default(),
            input: OperatorInputMsg::default(),
            collisions_heard: 0,
        }
    }

    /// Number of collision sounds triggered so far.
    pub fn collisions_heard(&self) -> u64 {
        self.collisions_heard
    }

    /// The shared body of `step` and `step_batched`: process reflections and
    /// interactions, drive the mixer sources, render the frame's block —
    /// through the cohort's [`WaveBank`] when one is passed, which is
    /// bit-identical to the unbanked render by the `render_with_bank`
    /// contract.
    fn step_impl(
        &mut self,
        cb: &mut dyn CbApi,
        dt: f64,
        bank: Option<&mut WaveBank>,
    ) -> Result<(), CbError> {
        for reflection in cb.reflections() {
            if reflection.class == self.fom.crane_state {
                self.crane =
                    CraneStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            } else if reflection.class == self.fom.operator_input {
                self.input =
                    OperatorInputMsg::from_values(&self.registry, &self.fom, &reflection.values);
            }
        }
        for interaction in cb.interactions() {
            if interaction.class == self.fom.collision {
                let collision =
                    CollisionMsg::from_values(&self.registry, &self.fom, &interaction.parameters);
                self.collisions_heard += 1;
                self.mixer.handle_event(SoundEvent::Collision {
                    location: collision.location,
                    impulse: collision.impulse,
                });
            } else if interaction.class == self.fom.alarm {
                let alarm =
                    AlarmMsg::from_values(&self.registry, &self.fom, &interaction.parameters);
                self.mixer.handle_event(SoundEvent::Alarm { active: alarm.active });
            }
        }

        // Continuous sources follow the reflected state.
        self.mixer.set_listener(self.crane.chassis_position);
        self.mixer.handle_event(SoundEvent::EngineLoad { intensity: self.crane.engine_intensity });
        let motor_active = self.input.slew.abs() > 0.05
            || self.input.luff.abs() > 0.05
            || self.input.telescope.abs() > 0.05
            || self.input.hoist.abs() > 0.05;
        self.mixer.handle_event(SoundEvent::MotorWorking { active: motor_active });

        let block = self.mixer.render_with_bank(dt.min(0.25), bank);
        self.telemetry.update(|t| t.audio_rms = block.rms());
        Ok(())
    }
}

/// The audio module's slot in the cohort's [`BatchScratch`]: one [`WaveBank`]
/// shared by every session at the current lockstep frame, cleared when the
/// frame epoch advances (ages move on, so stale columns can never hit again).
#[derive(Debug, Default)]
struct SharedWaveBank {
    epoch: u64,
    bank: WaveBank,
}

/// Reads the cohort wavebank's memo hit/miss counters out of a batch scratch
/// (zero when no audio module ever touched the slot). The counters survive the
/// per-epoch `clear()` — they accumulate over a whole batch — which is what
/// the traced batch stepper reports in its `BatchStepStats`.
pub(crate) fn wavebank_memo_stats(scratch: &mut BatchScratch) -> (u64, u64) {
    let shared: &mut SharedWaveBank = scratch.slot("audio.wavebank");
    (shared.bank.hits(), shared.bank.misses())
}

impl LogicalProcess for AudioLp {
    fn name(&self) -> &str {
        "audio"
    }

    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.subscribe_object_class(self.fom.crane_state)?;
        cb.subscribe_object_class(self.fom.operator_input)?;
        cb.subscribe_interaction_class(self.fom.collision)?;
        cb.subscribe_interaction_class(self.fom.alarm)?;
        Ok(())
    }

    fn step(&mut self, cb: &mut dyn CbApi, dt: f64) -> Result<(), CbError> {
        self.step_impl(cb, dt, None)
    }

    fn step_batched(
        &mut self,
        cb: &mut dyn CbApi,
        dt: f64,
        scratch: &mut BatchScratch,
    ) -> Result<(), CbError> {
        let epoch = scratch.frame_epoch();
        let shared: &mut SharedWaveBank = scratch.slot("audio.wavebank");
        if shared.epoch != epoch {
            shared.bank.clear();
            shared.epoch = epoch;
        }
        self.step_impl(cb, dt, Some(&mut shared.bank))
    }

    fn last_step_cost(&self) -> Micros {
        Micros::from_millis(3)
    }

    fn begin_session(&mut self, _cb: &mut dyn CbApi, _seed: u64) -> Result<(), CbError> {
        let mut mixer = Mixer::new(11_025);
        mixer.add_background_noise();
        self.mixer = mixer;
        self.crane = CraneStateMsg::default();
        self.input = OperatorInputMsg::default();
        self.collisions_heard = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_cluster::{Cluster, ClusterConfig};

    #[test]
    fn audio_module_produces_background_sound_in_a_cluster() {
        let (registry, fom) = CraneFom::standard();
        let telemetry = SharedTelemetry::new();
        let mut cluster = Cluster::new(ClusterConfig::default(), registry.clone());
        let pc = cluster.add_computer("audio-pc");
        cluster.add_lp(pc, Box::new(AudioLp::new(registry, fom, telemetry.clone()))).unwrap();
        cluster.initialize().unwrap();
        cluster.run_frames(5).unwrap();
        assert!(telemetry.snapshot().audio_rms > 0.001, "background noise should be audible");
    }

    #[test]
    fn fresh_module_has_heard_no_collisions() {
        let (registry, fom) = CraneFom::standard();
        let lp = AudioLp::new(registry, fom, SharedTelemetry::new());
        assert_eq!(lp.collisions_heard(), 0);
    }
}
