//! Shared telemetry collected from the running modules.
//!
//! The modules run as Logical Processes owned by the cluster executive, so the
//! surrounding application (examples, benches, tests) observes a session
//! through this shared, lock-protected telemetry sink instead of poking into
//! the LPs directly.

use std::collections::BTreeMap;
use std::sync::Arc;

use cod_net::{LanStats, Micros};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim_math::Fnv1a;

use crate::fom::{CollisionMsg, CraneStateMsg, HookStateMsg, ScenarioStateMsg};

/// The instructor's Status window (paper Figure 5): the quantities displayed
/// on the four sub-windows plus the dialogue boxes and alarm lamps.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatusWindow {
    /// Current swinging (slew) angle of the derrick boom, degrees.
    pub boom_swing_deg: f64,
    /// Raising (luffing) angle of the derrick boom, degrees.
    pub boom_raise_deg: f64,
    /// Current length of the plumb cable, metres.
    pub cable_length_m: f64,
    /// Elongated length of the derrick boom, metres.
    pub boom_length_m: f64,
    /// Exam score currently displayed.
    pub score: f64,
    /// Scenario phase text.
    pub phase: String,
    /// Active alarm codes.
    pub active_alarms: Vec<u32>,
}

/// The instructor's Dashboard window (paper Figure 6): the mirror of the
/// instruments inside the mockup.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DashboardWindow {
    /// Speedometer reading in km/h.
    pub speed_kmh: f64,
    /// Engine load gauge in `[0, 1]`.
    pub engine_load: f64,
    /// Load-moment indicator in `[0, ...)`, 1.0 = rated limit.
    pub load_moment: f64,
    /// Steering wheel position mirrored from the mockup.
    pub steering: f64,
    /// Whether the reverse gear lamp is lit.
    pub reverse: bool,
}

/// Everything the telemetry sink accumulates over a session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Frames the visual channels have completed.
    pub frames: u64,
    /// Latest crane state seen by any module.
    pub crane: CraneStateMsg,
    /// Latest hook/cargo state.
    pub hook: HookStateMsg,
    /// Latest scenario state (phase, score).
    pub scenario: ScenarioStateMsg,
    /// The instructor's Status window.
    pub status_window: StatusWindow,
    /// The instructor's Dashboard window.
    pub dashboard_window: DashboardWindow,
    /// All collision events observed so far.
    pub collisions: Vec<CollisionMsg>,
    /// Alarm states keyed by alarm code.
    pub alarms: BTreeMap<u32, bool>,
    /// Every alarm code that has been *raised* during the session, in order.
    pub alarm_events: Vec<u32>,
    /// Latest per-channel modeled render times.
    pub channel_frame_times: Vec<Micros>,
    /// Per-channel swap counts of the frame-sync protocol (lock-step progress).
    pub channel_frames_swapped: Vec<u64>,
    /// Latest synchronized frame period of the surround view.
    pub synchronized_period: Micros,
    /// History of hook swing amplitude samples (metres).
    pub swing_history: Vec<f64>,
    /// Latest audio output level (RMS of the last rendered block).
    pub audio_rms: f64,
    /// Whether any motion-platform actuator saturated during the session.
    pub platform_saturated: bool,
    /// Ground track of the chassis (sampled every frame by the dynamics module).
    pub crane_track: Vec<[f64; 2]>,
}

/// A cloneable handle to the shared telemetry sink.
#[derive(Debug, Clone, Default)]
pub struct SharedTelemetry {
    inner: Arc<Mutex<TelemetrySnapshot>>,
}

impl SharedTelemetry {
    /// Creates an empty sink.
    pub fn new() -> SharedTelemetry {
        SharedTelemetry::default()
    }

    /// Takes a consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.inner.lock().clone()
    }

    /// Runs a closure with mutable access to the telemetry data.
    pub fn update<R>(&self, f: impl FnOnce(&mut TelemetrySnapshot) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Clears everything recorded so far (session recycling); all clones of
    /// the handle observe the reset.
    pub fn reset(&self) {
        *self.inner.lock() = TelemetrySnapshot::default();
    }
}

/// A bit-exact digest of one executive frame, derived from the telemetry and
/// LAN counters. Floating-point fields are stored as raw IEEE-754 bits so two
/// digests compare equal exactly when the underlying runs were bit-identical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameDigest {
    /// Zero-based frame index.
    pub frame: u64,
    /// Simulation time at the end of the frame.
    pub now: Micros,
    /// Exam score bits.
    pub score_bits: u64,
    /// Scenario phase text.
    pub phase: String,
    /// Chassis position component bits.
    pub chassis_bits: [u64; 3],
    /// Latest hook-swing sample bits (zero before the first sample).
    pub swing_bits: u64,
    /// Collision events observed so far.
    pub collisions: u64,
    /// Alarm events raised so far.
    pub alarm_events: u64,
    /// Per-channel frame-sync swap counts.
    pub channel_swaps: Vec<u64>,
    /// Datagrams accepted by the LAN so far.
    pub datagrams_sent: u64,
    /// Datagrams dropped by the LAN so far (loss model plus injected faults).
    pub datagrams_dropped: u64,
}

impl FrameDigest {
    /// Digests the telemetry and LAN counters after frame `frame` ended at `now`.
    pub fn capture(frame: u64, now: Micros, snap: &TelemetrySnapshot, lan: &LanStats) -> Self {
        FrameDigest {
            frame,
            now,
            score_bits: snap.scenario.score.to_bits(),
            phase: snap.scenario.phase.clone(),
            chassis_bits: [
                snap.crane.chassis_position.x.to_bits(),
                snap.crane.chassis_position.y.to_bits(),
                snap.crane.chassis_position.z.to_bits(),
            ],
            swing_bits: snap.swing_history.last().copied().unwrap_or(0.0).to_bits(),
            collisions: snap.collisions.len() as u64,
            alarm_events: snap.alarm_events.len() as u64,
            channel_swaps: snap.channel_frames_swapped.clone(),
            datagrams_sent: lan.datagrams_sent,
            datagrams_dropped: lan.datagrams_dropped,
        }
    }

    /// A 64-bit FNV-1a fingerprint of every field. Variable-length fields are
    /// length-prefixed so neighbouring fields can never absorb their bytes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.frame);
        h.write_u64(self.now.0);
        h.write_u64(self.score_bits);
        h.write_u64(self.phase.len() as u64);
        h.write_bytes(self.phase.as_bytes());
        for bits in self.chassis_bits {
            h.write_u64(bits);
        }
        h.write_u64(self.swing_bits);
        h.write_u64(self.collisions);
        h.write_u64(self.alarm_events);
        h.write_u64(self.channel_swaps.len() as u64);
        for swaps in &self.channel_swaps {
            h.write_u64(*swaps);
        }
        h.write_u64(self.datagrams_sent);
        h.write_u64(self.datagrams_dropped);
        h.finish()
    }
}

/// A frame-by-frame trace of a session: one [`FrameDigest`] per executive
/// frame. Two runs of the same seeded scenario must produce equal traces; when
/// they do not, [`TelemetryTrace::first_divergence`] pins the first bad frame.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryTrace {
    /// The recorded digests in frame order.
    pub digests: Vec<FrameDigest>,
}

impl TelemetryTrace {
    /// An empty trace.
    pub fn new() -> TelemetryTrace {
        TelemetryTrace::default()
    }

    /// Appends one frame's digest.
    pub fn record(&mut self, digest: FrameDigest) {
        self.digests.push(digest);
    }

    /// Number of recorded frames.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// The first frame index at which the two traces differ, or `None` when
    /// they are identical (including equal length).
    pub fn first_divergence(&self, other: &TelemetryTrace) -> Option<u64> {
        for (a, b) in self.digests.iter().zip(&other.digests) {
            if a != b {
                return Some(a.frame);
            }
        }
        if self.digests.len() != other.digests.len() {
            return Some(self.digests.len().min(other.digests.len()) as u64);
        }
        None
    }

    /// A fingerprint over the whole trace, for compact reporting.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.digests.len() as u64);
        for digest in &self.digests {
            h.write_u64(digest.fingerprint());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_a_copy() {
        let t = SharedTelemetry::new();
        t.update(|d| {
            d.frames = 3;
            d.scenario.score = 90.0;
            d.alarms.insert(1, true);
        });
        let snap = t.snapshot();
        assert_eq!(snap.frames, 3);
        assert_eq!(snap.scenario.score, 90.0);
        t.update(|d| d.frames = 10);
        assert_eq!(snap.frames, 3, "snapshot must not follow later updates");
        assert_eq!(t.snapshot().frames, 10);
    }

    #[test]
    fn handles_share_the_same_sink() {
        let a = SharedTelemetry::new();
        let b = a.clone();
        a.update(|d| d.audio_rms = 0.5);
        assert_eq!(b.snapshot().audio_rms, 0.5);
    }

    fn digest(frame: u64, score: f64) -> FrameDigest {
        let mut snap = TelemetrySnapshot::default();
        snap.scenario.score = score;
        snap.channel_frames_swapped = vec![frame, frame];
        FrameDigest::capture(frame, Micros(frame * 62_500), &snap, &LanStats::default())
    }

    #[test]
    fn identical_traces_have_no_divergence_and_equal_fingerprints() {
        let mut a = TelemetryTrace::new();
        let mut b = TelemetryTrace::new();
        for i in 0..10 {
            a.record(digest(i, 100.0));
            b.record(digest(i, 100.0));
        }
        assert_eq!(a, b);
        assert_eq!(a.first_divergence(&b), None);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn divergence_reports_the_first_differing_frame() {
        let mut a = TelemetryTrace::new();
        let mut b = TelemetryTrace::new();
        for i in 0..10 {
            a.record(digest(i, 100.0));
            b.record(digest(i, if i < 7 { 100.0 } else { 95.0 }));
        }
        assert_eq!(a.first_divergence(&b), Some(7));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let mut a = TelemetryTrace::new();
        let mut b = TelemetryTrace::new();
        a.record(digest(0, 100.0));
        a.record(digest(1, 100.0));
        b.record(digest(0, 100.0));
        assert_eq!(a.first_divergence(&b), Some(1));
        assert!(!a.is_empty());
    }

    #[test]
    fn digest_is_bit_exact_about_the_score() {
        // 0.1 + 0.2 != 0.3 bit-wise: the digest must see the difference.
        assert_ne!(digest(0, 0.1 + 0.2), digest(0, 0.3));
        assert_eq!(digest(3, 42.0), digest(3, 42.0));
    }
}
