//! Shared telemetry collected from the running modules.
//!
//! The modules run as Logical Processes owned by the cluster executive, so the
//! surrounding application (examples, benches, tests) observes a session
//! through this shared, lock-protected telemetry sink instead of poking into
//! the LPs directly.

use std::collections::BTreeMap;
use std::sync::Arc;

use cod_net::Micros;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::fom::{CollisionMsg, CraneStateMsg, HookStateMsg, ScenarioStateMsg};

/// The instructor's Status window (paper Figure 5): the quantities displayed
/// on the four sub-windows plus the dialogue boxes and alarm lamps.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatusWindow {
    /// Current swinging (slew) angle of the derrick boom, degrees.
    pub boom_swing_deg: f64,
    /// Raising (luffing) angle of the derrick boom, degrees.
    pub boom_raise_deg: f64,
    /// Current length of the plumb cable, metres.
    pub cable_length_m: f64,
    /// Elongated length of the derrick boom, metres.
    pub boom_length_m: f64,
    /// Exam score currently displayed.
    pub score: f64,
    /// Scenario phase text.
    pub phase: String,
    /// Active alarm codes.
    pub active_alarms: Vec<u32>,
}

/// The instructor's Dashboard window (paper Figure 6): the mirror of the
/// instruments inside the mockup.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DashboardWindow {
    /// Speedometer reading in km/h.
    pub speed_kmh: f64,
    /// Engine load gauge in `[0, 1]`.
    pub engine_load: f64,
    /// Load-moment indicator in `[0, ...)`, 1.0 = rated limit.
    pub load_moment: f64,
    /// Steering wheel position mirrored from the mockup.
    pub steering: f64,
    /// Whether the reverse gear lamp is lit.
    pub reverse: bool,
}

/// Everything the telemetry sink accumulates over a session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Frames the visual channels have completed.
    pub frames: u64,
    /// Latest crane state seen by any module.
    pub crane: CraneStateMsg,
    /// Latest hook/cargo state.
    pub hook: HookStateMsg,
    /// Latest scenario state (phase, score).
    pub scenario: ScenarioStateMsg,
    /// The instructor's Status window.
    pub status_window: StatusWindow,
    /// The instructor's Dashboard window.
    pub dashboard_window: DashboardWindow,
    /// All collision events observed so far.
    pub collisions: Vec<CollisionMsg>,
    /// Alarm states keyed by alarm code.
    pub alarms: BTreeMap<u32, bool>,
    /// Every alarm code that has been *raised* during the session, in order.
    pub alarm_events: Vec<u32>,
    /// Latest per-channel modeled render times.
    pub channel_frame_times: Vec<Micros>,
    /// Latest synchronized frame period of the surround view.
    pub synchronized_period: Micros,
    /// History of hook swing amplitude samples (metres).
    pub swing_history: Vec<f64>,
    /// Latest audio output level (RMS of the last rendered block).
    pub audio_rms: f64,
    /// Whether any motion-platform actuator saturated during the session.
    pub platform_saturated: bool,
    /// Ground track of the chassis (sampled every frame by the dynamics module).
    pub crane_track: Vec<[f64; 2]>,
}

/// A cloneable handle to the shared telemetry sink.
#[derive(Debug, Clone, Default)]
pub struct SharedTelemetry {
    inner: Arc<Mutex<TelemetrySnapshot>>,
}

impl SharedTelemetry {
    /// Creates an empty sink.
    pub fn new() -> SharedTelemetry {
        SharedTelemetry::default()
    }

    /// Takes a consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.inner.lock().clone()
    }

    /// Runs a closure with mutable access to the telemetry data.
    pub fn update<R>(&self, f: impl FnOnce(&mut TelemetrySnapshot) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_a_copy() {
        let t = SharedTelemetry::new();
        t.update(|d| {
            d.frames = 3;
            d.scenario.score = 90.0;
            d.alarms.insert(1, true);
        });
        let snap = t.snapshot();
        assert_eq!(snap.frames, 3);
        assert_eq!(snap.scenario.score, 90.0);
        t.update(|d| d.frames = 10);
        assert_eq!(snap.frames, 3, "snapshot must not follow later updates");
        assert_eq!(t.snapshot().frames, 10);
    }

    #[test]
    fn handles_share_the_same_sink() {
        let a = SharedTelemetry::new();
        let b = a.clone();
        a.update(|d| d.audio_rms = 0.5);
        assert_eq!(b.snapshot().audio_rms, 0.5);
    }
}
