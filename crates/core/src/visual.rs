//! One visual display channel (paper §3.7, §4) as a Logical Process.
//!
//! Each of the three display computers runs one instance of this module. It
//! keeps a local copy of the training world, animates the crane nodes from the
//! reflected state, renders (or cost-models) its view, and participates in the
//! swap-lock protocol run by the synchronization server so the three monitors
//! present a consistent surround view.

use cod_cb::{CbApi, CbError, ClassRegistry};
use cod_cluster::{FrameSyncClient, LogicalProcess};
use cod_net::Micros;
use crane_scene::world::TrainingWorld;
use render_sim::{Camera, GpuCostModel, Renderer};
use sim_math::{Quat, Transform, Vec3};

use crate::fom::{CraneFom, CraneStateMsg, HookStateMsg};
use crate::telemetry::SharedTelemetry;

/// One display channel of the surround view.
pub struct VisualDisplayLp {
    name: String,
    registry: ClassRegistry,
    fom: CraneFom,
    telemetry: SharedTelemetry,

    channel: usize,
    yaw_offset: f64,
    world: TrainingWorld,
    renderer: Option<Renderer>,
    cost_model: GpuCostModel,
    sync: FrameSyncClient,

    crane: CraneStateMsg,
    hook: HookStateMsg,
    last_frame_time: Micros,
    frames_rendered: u64,
}

impl VisualDisplayLp {
    /// Creates display channel `channel` of `channel_count`, spreading the
    /// channels over roughly 120 degrees of yaw.
    ///
    /// When `render_pixels` is false the module runs the cost model only,
    /// which is what the frame-rate experiments need; set it to true to
    /// produce real images (screenshots in the examples).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        registry: ClassRegistry,
        fom: CraneFom,
        channel: usize,
        channel_count: usize,
        width: usize,
        height: usize,
        render_pixels: bool,
        cost_model: GpuCostModel,
        telemetry: SharedTelemetry,
    ) -> VisualDisplayLp {
        assert!(channel < channel_count, "channel index out of range");
        let per_channel = 120f64.to_radians() / channel_count as f64;
        let yaw_offset = (channel as f64 - (channel_count as f64 - 1.0) / 2.0) * per_channel;
        VisualDisplayLp {
            name: format!("visual-{channel}"),
            sync: FrameSyncClient::new(fom.sync, channel as u32),
            registry,
            fom,
            telemetry,
            channel,
            yaw_offset,
            world: TrainingWorld::build(),
            renderer: if render_pixels { Some(Renderer::new(width, height)) } else { None },
            cost_model,
            crane: CraneStateMsg::default(),
            hook: HookStateMsg::default(),
            last_frame_time: Micros::ZERO,
            frames_rendered: 0,
        }
    }

    /// Number of frames this channel has rendered.
    pub fn frames_rendered(&self) -> u64 {
        self.frames_rendered
    }

    /// The camera of this channel: inside the cab, turned by the channel's yaw offset.
    pub fn camera(&self) -> Camera {
        let eye = self.crane.chassis_position + Vec3::new(0.0, 3.2, 1.5);
        let mut camera = Camera {
            position: eye,
            yaw: self.crane.chassis_yaw,
            pitch: -0.05,
            ..Camera::default()
        };
        camera = camera.with_yaw_offset(self.yaw_offset);
        camera
    }

    /// Updates the local scene graph from the reflected crane and hook state.
    fn animate_scene(&mut self) {
        let crane_nodes = self.world.crane;
        let chassis_rotation = Quat::from_yaw_pitch_roll(
            self.crane.chassis_yaw,
            self.crane.chassis_pitch,
            self.crane.chassis_roll,
        );
        self.world.scene.set_local_transform(
            crane_nodes.chassis,
            Transform::new(self.crane.chassis_position, chassis_rotation),
        );
        self.world.scene.set_local_transform(
            crane_nodes.superstructure,
            Transform::new(
                Vec3::new(0.0, 1.7, -1.0),
                Quat::from_axis_angle(Vec3::unit_y(), self.crane.slew_angle),
            ),
        );
        self.world.scene.set_local_transform(
            crane_nodes.boom,
            Transform::new(
                Vec3::new(0.0, 1.2, 0.5),
                Quat::from_axis_angle(Vec3::unit_x(), -self.crane.luff_angle),
            ),
        );
        // The cargo is a root-level node: place it from the reflected state.
        self.world.scene.set_local_transform(
            crane_nodes.cargo,
            Transform::from_translation(self.hook.cargo_position),
        );
    }

    fn render_frame(&mut self) -> Micros {
        self.animate_scene();
        let frame_time = match self.renderer.as_mut() {
            Some(renderer) => {
                let camera = {
                    let eye = self.crane.chassis_position + Vec3::new(0.0, 3.2, 1.5);
                    Camera {
                        position: eye,
                        yaw: self.crane.chassis_yaw + self.yaw_offset,
                        pitch: -0.05,
                        ..Camera::default()
                    }
                };
                let stats = renderer.render(&self.world.scene, &camera);
                stats.frame_time(&self.cost_model)
            }
            None => self.cost_model.frame_time_for_scene(self.world.scene.polygon_count()),
        };
        self.frames_rendered += 1;
        frame_time
    }

    /// A PPM screenshot of the last rendered frame, if pixel rendering is enabled.
    pub fn screenshot_ppm(&self) -> Option<Vec<u8>> {
        self.renderer.as_ref().map(|r| r.framebuffer().to_ppm())
    }
}

impl LogicalProcess for VisualDisplayLp {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.subscribe_object_class(self.fom.crane_state)?;
        cb.subscribe_object_class(self.fom.hook_state)?;
        self.sync.init(cb)
    }

    fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
        for reflection in cb.reflections() {
            if reflection.class == self.fom.crane_state {
                self.crane =
                    CraneStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            } else if reflection.class == self.fom.hook_state {
                self.hook =
                    HookStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            }
        }

        if self.sync.is_waiting() {
            // Blocked on the swap lock: poll for the release, re-reporting
            // ready if the barrier looks stalled (lost LAN datagram).
            self.sync.poll_release(cb);
            self.sync.resend_ready_if_stalled(cb)?;
            self.last_frame_time = Micros(500);
        } else {
            let frame_time = self.render_frame();
            self.last_frame_time = frame_time;
            self.sync.report_ready(cb)?;
        }

        let channel = self.channel;
        let frame_time = self.last_frame_time;
        let frames = self.sync.frames_swapped();
        self.telemetry.update(|t| {
            if t.channel_frame_times.len() <= channel {
                t.channel_frame_times.resize(channel + 1, Micros::ZERO);
            }
            if t.channel_frames_swapped.len() <= channel {
                t.channel_frames_swapped.resize(channel + 1, 0);
            }
            if frame_time > Micros(1_000) {
                t.channel_frame_times[channel] = frame_time;
            }
            t.channel_frames_swapped[channel] = frames;
            t.frames = t.frames.max(frames);
        });
        Ok(())
    }

    fn last_step_cost(&self) -> Micros {
        self.last_frame_time
    }

    fn begin_session(&mut self, _cb: &mut dyn CbApi, _seed: u64) -> Result<(), CbError> {
        // The scene graph and renderer are the expensive reusable assets;
        // their transforms are overwritten from the reflected state on every
        // step, so only the reflected copies and the barrier state reset.
        self.sync.reset_session();
        self.crane = CraneStateMsg::default();
        self.hook = HookStateMsg::default();
        self.last_frame_time = Micros::ZERO;
        self.frames_rendered = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn display(render_pixels: bool) -> VisualDisplayLp {
        let (registry, fom) = CraneFom::standard();
        VisualDisplayLp::new(
            registry,
            fom,
            1,
            3,
            80,
            60,
            render_pixels,
            GpuCostModel::tnt2_class(),
            SharedTelemetry::new(),
        )
    }

    #[test]
    fn cost_model_only_channel_reports_paper_scale_frame_times() {
        let mut lp = display(false);
        let t = lp.render_frame();
        assert!(t.as_millis() > 30 && t.as_millis() < 90, "frame time {t}");
        assert_eq!(lp.frames_rendered(), 1);
        assert!(lp.screenshot_ppm().is_none());
    }

    #[test]
    fn pixel_rendering_channel_produces_a_screenshot() {
        let mut lp = display(true);
        lp.crane.chassis_position = Vec3::new(0.0, 0.0, -40.0);
        lp.render_frame();
        let ppm = lp.screenshot_ppm().expect("renderer enabled");
        assert!(ppm.starts_with(b"P6"));
        assert!(ppm.len() > 80 * 60);
    }

    #[test]
    fn channels_spread_across_the_surround_fov() {
        let (registry, fom) = CraneFom::standard();
        let telemetry = SharedTelemetry::new();
        let left = VisualDisplayLp::new(
            registry.clone(),
            fom,
            0,
            3,
            32,
            24,
            false,
            GpuCostModel::tnt2_class(),
            telemetry.clone(),
        );
        let right = VisualDisplayLp::new(
            registry,
            fom,
            2,
            3,
            32,
            24,
            false,
            GpuCostModel::tnt2_class(),
            telemetry,
        );
        assert!(left.yaw_offset < 0.0 && right.yaw_offset > 0.0);
        assert!((right.yaw_offset - left.yaw_offset).to_degrees() > 70.0);
        assert!((right.camera().yaw - left.camera().yaw).to_degrees() > 70.0);
    }

    #[test]
    #[should_panic]
    fn channel_index_must_be_in_range() {
        let (registry, fom) = CraneFom::standard();
        let _ = VisualDisplayLp::new(
            registry,
            fom,
            3,
            3,
            32,
            24,
            false,
            GpuCostModel::tnt2_class(),
            SharedTelemetry::new(),
        );
    }
}
