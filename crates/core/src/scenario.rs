//! The scenario control module (paper §3.5) as a Logical Process.
//!
//! Manages the state changes of the virtual world and evaluates the trainee:
//! drive from the starting point to the testing ground, lift the cargo out of
//! the white circle, carry it along the barred trajectory to the far side and
//! back, losing points for every bar collision. The score is published so the
//! instructor's Status window can display it live.

use cod_cb::{CbApi, CbError, ClassRegistry, ObjectId};
use cod_cluster::LogicalProcess;
use cod_net::Micros;
use crane_scene::course::{Course, CoursePhase};

use crate::fom::{CollisionMsg, CraneFom, CraneStateMsg, HookStateMsg, ScenarioStateMsg};
use crate::telemetry::SharedTelemetry;

/// Points deducted for each scored bar collision.
pub const BAR_COLLISION_PENALTY: f64 = 10.0;
/// Score required to pass the licensing exam.
pub const PASSING_SCORE: f64 = 60.0;
/// Time limit of the exam in seconds.
pub const TIME_LIMIT: f64 = 900.0;

/// The scenario / scoring Logical Process.
pub struct ScenarioLp {
    registry: ClassRegistry,
    fom: CraneFom,
    course: Course,
    telemetry: SharedTelemetry,

    phase: CoursePhase,
    score: f64,
    elapsed: f64,
    bar_hits: u32,
    crane: CraneStateMsg,
    hook: HookStateMsg,
    state_object: Option<ObjectId>,
}

impl ScenarioLp {
    /// Creates the scenario module for the licensing-exam course.
    pub fn new(registry: ClassRegistry, fom: CraneFom, telemetry: SharedTelemetry) -> ScenarioLp {
        ScenarioLp {
            registry,
            fom,
            course: Course::licensing_exam(),
            telemetry,
            phase: CoursePhase::Driving,
            score: 100.0,
            elapsed: 0.0,
            bar_hits: 0,
            crane: CraneStateMsg::default(),
            hook: HookStateMsg::default(),
            state_object: None,
        }
    }

    /// Current phase of the exam.
    pub fn phase(&self) -> CoursePhase {
        self.phase
    }

    /// Current score.
    pub fn score(&self) -> f64 {
        self.score
    }

    fn phase_name(&self) -> &'static str {
        match self.phase {
            CoursePhase::Driving => "Driving",
            CoursePhase::Lifting => "Lifting",
            CoursePhase::Traverse => "Traverse",
            CoursePhase::Return => "Return",
            CoursePhase::Complete => "Complete",
        }
    }

    /// Evaluates the phase-transition rules against the latest state. Exposed
    /// for unit testing; the LP calls it every frame.
    pub fn advance_phase(&mut self) {
        let cargo = self.hook.cargo_position;
        match self.phase {
            CoursePhase::Driving => {
                let at_ground = self
                    .crane
                    .chassis_position
                    .horizontal()
                    .distance(self.course.pickup_center.horizontal())
                    < 14.0;
                if at_ground && self.crane.speed.abs() < 0.5 {
                    self.phase = CoursePhase::Lifting;
                }
            }
            CoursePhase::Lifting => {
                if self.hook.cargo_attached && cargo.y > self.course.carry_height - 1.0 {
                    self.phase = CoursePhase::Traverse;
                }
            }
            CoursePhase::Traverse => {
                if self.course.in_turnaround_zone(cargo) {
                    self.phase = CoursePhase::Return;
                }
            }
            CoursePhase::Return => {
                if self.course.in_pickup_zone(cargo) {
                    self.phase = CoursePhase::Complete;
                }
            }
            CoursePhase::Complete => {}
        }
        if self.elapsed > TIME_LIMIT {
            self.phase = CoursePhase::Complete;
        }
    }

    fn message(&self) -> ScenarioStateMsg {
        let complete = self.phase == CoursePhase::Complete;
        ScenarioStateMsg {
            phase: self.phase_name().to_owned(),
            score: self.score,
            elapsed: self.elapsed,
            complete,
            passed: complete && self.score >= PASSING_SCORE && self.elapsed <= TIME_LIMIT,
            bar_hits: self.bar_hits,
        }
    }
}

impl LogicalProcess for ScenarioLp {
    fn name(&self) -> &str {
        "scenario"
    }

    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.publish_object_class(self.fom.scenario_state)?;
        cb.subscribe_object_class(self.fom.crane_state)?;
        cb.subscribe_object_class(self.fom.hook_state)?;
        cb.subscribe_interaction_class(self.fom.collision)?;
        self.state_object = Some(cb.register_object(self.fom.scenario_state)?);
        Ok(())
    }

    fn step(&mut self, cb: &mut dyn CbApi, dt: f64) -> Result<(), CbError> {
        self.elapsed += dt;
        for reflection in cb.reflections() {
            if reflection.class == self.fom.crane_state {
                self.crane =
                    CraneStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            } else if reflection.class == self.fom.hook_state {
                self.hook =
                    HookStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            }
        }
        for interaction in cb.interactions() {
            if interaction.class == self.fom.collision {
                let collision =
                    CollisionMsg::from_values(&self.registry, &self.fom, &interaction.parameters);
                if collision.scored {
                    self.bar_hits += 1;
                    self.score = (self.score - BAR_COLLISION_PENALTY).max(0.0);
                }
                self.telemetry.update(|t| t.collisions.push(collision));
            }
        }
        self.advance_phase();

        let message = self.message();
        cb.update_attributes(
            self.state_object.expect("init registered the scenario object"),
            message.to_values(&self.registry, &self.fom),
        )?;
        self.telemetry.update(|t| t.scenario = message.clone());
        Ok(())
    }

    fn last_step_cost(&self) -> Micros {
        Micros::from_millis(1)
    }

    fn begin_session(&mut self, _cb: &mut dyn CbApi, _seed: u64) -> Result<(), CbError> {
        self.phase = CoursePhase::Driving;
        self.score = 100.0;
        self.elapsed = 0.0;
        self.bar_hits = 0;
        self.crane = CraneStateMsg::default();
        self.hook = HookStateMsg::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_math::Vec3;

    fn scenario() -> ScenarioLp {
        let (registry, fom) = CraneFom::standard();
        ScenarioLp::new(registry, fom, SharedTelemetry::new())
    }

    #[test]
    fn exam_starts_in_the_driving_phase_with_full_score() {
        let s = scenario();
        assert_eq!(s.phase(), CoursePhase::Driving);
        assert_eq!(s.score(), 100.0);
        assert_eq!(s.message().phase, "Driving");
        assert!(!s.message().complete);
    }

    #[test]
    fn phases_advance_with_the_right_conditions() {
        let mut s = scenario();
        // Arrive at the testing ground and stop.
        s.crane.chassis_position = s.course.pickup_center + Vec3::new(5.0, 0.0, -5.0);
        s.crane.speed = 0.1;
        s.advance_phase();
        assert_eq!(s.phase(), CoursePhase::Lifting);

        // Cargo attached and lifted to carry height.
        s.hook.cargo_attached = true;
        s.hook.cargo_position = s.course.pickup_center + Vec3::new(0.0, s.course.carry_height, 0.0);
        s.advance_phase();
        assert_eq!(s.phase(), CoursePhase::Traverse);

        // Cargo reaches the turn-around zone.
        s.hook.cargo_position = s.course.turnaround_center + Vec3::new(0.5, 3.0, 0.0);
        s.advance_phase();
        assert_eq!(s.phase(), CoursePhase::Return);

        // Cargo brought back to the pickup circle.
        s.hook.cargo_position = s.course.pickup_center + Vec3::new(0.2, 0.5, 0.1);
        s.advance_phase();
        assert_eq!(s.phase(), CoursePhase::Complete);
        assert!(s.message().passed);
    }

    #[test]
    fn time_limit_ends_the_exam_without_passing() {
        let mut s = scenario();
        s.elapsed = TIME_LIMIT + 1.0;
        s.advance_phase();
        assert_eq!(s.phase(), CoursePhase::Complete);
        assert!(!s.message().passed, "running out of time must not pass the exam");
    }

    #[test]
    fn bar_hits_deduct_points_but_never_below_zero() {
        let mut s = scenario();
        for _ in 0..15 {
            s.bar_hits += 1;
            s.score = (s.score - BAR_COLLISION_PENALTY).max(0.0);
        }
        assert_eq!(s.score(), 0.0);
        assert_eq!(s.message().bar_hits, 15);
        assert!(!s.message().passed);
    }
}
