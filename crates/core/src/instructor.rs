//! The instructor monitor (paper §3.3) as a Logical Process.
//!
//! Maintains the Status window of Figure 5 (boom swing angle, boom raise
//! angle, cable length, boom elongation, live score, alarm lamps) and the
//! Dashboard window of Figure 6 (the mirror of the mockup instruments), raises
//! alarm interactions when the trainee misbehaves, and lets the instructor
//! inject instrument faults for trouble-shooting training.

use std::collections::BTreeMap;
use std::sync::Arc;

use cod_cb::{CbApi, CbError, ClassRegistry};
use cod_cluster::LogicalProcess;
use cod_net::Micros;
use parking_lot::Mutex;

use crate::fom::{
    alarm_codes, AlarmMsg, CollisionMsg, CraneFom, CraneStateMsg, FaultMsg, HookStateMsg,
    ScenarioStateMsg,
};
use crate::telemetry::{SharedTelemetry, StatusWindow};

/// A handle the instructor's console uses to inject instrument faults into the
/// running system (clicking an indicator in the Dashboard window).
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    queue: Arc<Mutex<Vec<FaultMsg>>>,
}

impl FaultInjector {
    /// Queues a fault to be sent on the instructor module's next step.
    pub fn inject(&self, fault: FaultMsg) {
        self.queue.lock().push(fault);
    }

    fn drain(&self) -> Vec<FaultMsg> {
        self.queue.lock().drain(..).collect()
    }
}

/// Chassis roll or pitch beyond which the tip-over alarm lights (radians).
const TIP_OVER_ATTITUDE: f64 = 0.14;
/// Seconds a bar-collision alarm stays lit.
const COLLISION_ALARM_HOLD: f64 = 2.0;

/// The instructor monitor Logical Process.
pub struct InstructorLp {
    registry: ClassRegistry,
    fom: CraneFom,
    telemetry: SharedTelemetry,
    injector: FaultInjector,

    crane: CraneStateMsg,
    hook: HookStateMsg,
    scenario: ScenarioStateMsg,
    alarms: BTreeMap<u32, bool>,
    collision_alarm_timer: f64,
}

impl InstructorLp {
    /// Creates the instructor module and the fault-injection handle for its console.
    pub fn new(
        registry: ClassRegistry,
        fom: CraneFom,
        telemetry: SharedTelemetry,
    ) -> (InstructorLp, FaultInjector) {
        let injector = FaultInjector::default();
        (
            InstructorLp {
                registry,
                fom,
                telemetry,
                injector: injector.clone(),
                crane: CraneStateMsg::default(),
                hook: HookStateMsg::default(),
                scenario: ScenarioStateMsg::default(),
                alarms: BTreeMap::new(),
                collision_alarm_timer: 0.0,
            },
            injector,
        )
    }

    /// Computes the desired alarm states from the latest state. Exposed for
    /// unit tests; the LP evaluates it every frame.
    pub fn desired_alarms(&self) -> BTreeMap<u32, bool> {
        let mut desired = BTreeMap::new();
        desired.insert(alarm_codes::SAFETY_ZONE, self.crane.radius_utilization > 1.0);
        desired.insert(alarm_codes::OVERLOAD, self.crane.moment_utilization >= 0.9);
        desired.insert(
            alarm_codes::TIP_OVER,
            self.crane.chassis_roll.abs() > TIP_OVER_ATTITUDE
                || self.crane.chassis_pitch.abs() > TIP_OVER_ATTITUDE,
        );
        desired.insert(alarm_codes::BAR_COLLISION, self.collision_alarm_timer > 0.0);
        desired
    }

    fn status_window(&self) -> StatusWindow {
        StatusWindow {
            boom_swing_deg: self.crane.slew_angle.to_degrees(),
            boom_raise_deg: self.crane.luff_angle.to_degrees(),
            cable_length_m: self.crane.cable_length,
            boom_length_m: self.crane.boom_length,
            score: self.scenario.score,
            phase: self.scenario.phase.clone(),
            active_alarms: self
                .alarms
                .iter()
                .filter(|(_, active)| **active)
                .map(|(code, _)| *code)
                .collect(),
        }
    }
}

impl LogicalProcess for InstructorLp {
    fn name(&self) -> &str {
        "instructor"
    }

    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.subscribe_object_class(self.fom.crane_state)?;
        cb.subscribe_object_class(self.fom.hook_state)?;
        cb.subscribe_object_class(self.fom.scenario_state)?;
        cb.subscribe_interaction_class(self.fom.collision)?;
        Ok(())
    }

    fn step(&mut self, cb: &mut dyn CbApi, dt: f64) -> Result<(), CbError> {
        for reflection in cb.reflections() {
            if reflection.class == self.fom.crane_state {
                self.crane =
                    CraneStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            } else if reflection.class == self.fom.hook_state {
                self.hook =
                    HookStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            } else if reflection.class == self.fom.scenario_state {
                self.scenario =
                    ScenarioStateMsg::from_values(&self.registry, &self.fom, &reflection.values);
            }
        }
        self.collision_alarm_timer = (self.collision_alarm_timer - dt).max(0.0);
        for interaction in cb.interactions() {
            if interaction.class == self.fom.collision {
                let collision =
                    CollisionMsg::from_values(&self.registry, &self.fom, &interaction.parameters);
                if collision.scored {
                    self.collision_alarm_timer = COLLISION_ALARM_HOLD;
                }
            }
        }

        // Raise / clear alarms on state changes.
        let desired = self.desired_alarms();
        for (code, active) in &desired {
            let previous = self.alarms.get(code).copied().unwrap_or(false);
            if previous != *active {
                let message = match *code {
                    alarm_codes::SAFETY_ZONE => "derrick boom outside the safety zone",
                    alarm_codes::OVERLOAD => "load moment above 90% of rated",
                    alarm_codes::TIP_OVER => "chassis attitude indicates tip-over risk",
                    alarm_codes::BAR_COLLISION => "course bar struck",
                    _ => "alarm",
                };
                let alarm = AlarmMsg { code: *code, active: *active, message: message.to_owned() };
                cb.send_interaction(self.fom.alarm, alarm.to_values(&self.registry, &self.fom))?;
                if *active {
                    let code = *code;
                    self.telemetry.update(|t| t.alarm_events.push(code));
                }
            }
        }
        self.alarms = desired;

        // Forward queued instructor fault injections to the dashboard.
        for fault in self.injector.drain() {
            cb.send_interaction(self.fom.fault, fault.to_values(&self.registry, &self.fom))?;
        }

        // Publish the two instructor windows into telemetry.
        let status = self.status_window();
        self.telemetry.update(|t| {
            t.status_window = status.clone();
            for (code, active) in &self.alarms {
                t.alarms.insert(*code, *active);
            }
        });
        Ok(())
    }

    fn last_step_cost(&self) -> Micros {
        Micros::from_millis(2)
    }

    fn begin_session(&mut self, _cb: &mut dyn CbApi, _seed: u64) -> Result<(), CbError> {
        self.crane = CraneStateMsg::default();
        self.hook = HookStateMsg::default();
        self.scenario = ScenarioStateMsg::default();
        self.alarms.clear();
        self.collision_alarm_timer = 0.0;
        // Faults queued by the previous session's instructor die with it.
        let _ = self.injector.drain();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instructor() -> (InstructorLp, FaultInjector) {
        let (registry, fom) = CraneFom::standard();
        InstructorLp::new(registry, fom, SharedTelemetry::new())
    }

    #[test]
    fn no_alarms_in_a_nominal_state() {
        let (mut lp, _) = instructor();
        lp.crane.radius_utilization = 0.5;
        lp.crane.moment_utilization = 0.3;
        let alarms = lp.desired_alarms();
        assert!(alarms.values().all(|a| !a));
    }

    #[test]
    fn overload_and_safety_zone_alarms_trip_on_thresholds() {
        let (mut lp, _) = instructor();
        lp.crane.radius_utilization = 1.1;
        lp.crane.moment_utilization = 0.95;
        let alarms = lp.desired_alarms();
        assert!(alarms[&alarm_codes::SAFETY_ZONE]);
        assert!(alarms[&alarm_codes::OVERLOAD]);
        assert!(!alarms[&alarm_codes::TIP_OVER]);
    }

    #[test]
    fn tip_over_alarm_follows_chassis_attitude() {
        let (mut lp, _) = instructor();
        lp.crane.chassis_roll = 0.2;
        assert!(lp.desired_alarms()[&alarm_codes::TIP_OVER]);
    }

    #[test]
    fn status_window_mirrors_the_state_in_degrees() {
        let (mut lp, _) = instructor();
        lp.crane.slew_angle = std::f64::consts::FRAC_PI_2;
        lp.crane.luff_angle = 1.0;
        lp.crane.cable_length = 7.5;
        lp.crane.boom_length = 14.0;
        lp.scenario.score = 80.0;
        lp.scenario.phase = "Traverse".into();
        let w = lp.status_window();
        assert!((w.boom_swing_deg - 90.0).abs() < 1e-9);
        assert!((w.boom_raise_deg - 57.29578).abs() < 1e-3);
        assert_eq!(w.cable_length_m, 7.5);
        assert_eq!(w.boom_length_m, 14.0);
        assert_eq!(w.score, 80.0);
        assert_eq!(w.phase, "Traverse");
    }

    #[test]
    fn fault_injector_queues_are_shared() {
        let (lp, injector) = instructor();
        injector.inject(FaultMsg { instrument: "speedometer".into(), value: 10.0 });
        assert_eq!(lp.injector.drain().len(), 1);
        assert_eq!(lp.injector.drain().len(), 0);
    }
}
