//! Pluggable simulation backends behind [`CraneSimulator`].
//!
//! The paper's core trade is fidelity versus cluster cost: a licensing exam
//! needs the full eight-PC rack, but batch scoring and early training runs
//! tolerate a much cheaper approximation. This module splits the simulator
//! into a [`SimBackend`] trait with two implementations:
//!
//! * [`FullFidelity`] — the original deployment, verbatim: one virtual
//!   computer per display channel plus sync server, dynamics, control,
//!   instructor and motion PCs, stepped once per session frame.
//! * [`Coarse`] — a decimated rack: a single display channel and one cluster
//!   frame per [`Coarse::DECIMATION`] session frames, with a proportionally
//!   longer integrator step so a session covers the same simulated duration.
//!   Order(s) of magnitude cheaper in modeled cost, score-compatible with
//!   [`FullFidelity`] within [`SCORE_DRIFT_TOLERANCE`].
//!
//! Both tiers are deterministic functions of (config, seed), so a serving
//! layer can move a live session between them with the same replay machinery
//! it uses for cross-shard migration: extract the portable state, rebuild on
//! the other tier, replay the frames done so far.
//!
//! [`CraneSimulator`]: crate::CraneSimulator

use cod_cluster::{
    frame_period_for_fps, BatchScratch, Cluster, ClusterConfig, ComputerId, FrameRecord,
    FrameSyncServer,
};
use cod_net::{FaultPlan, LanConfig, Micros};
use render_sim::GpuCostModel;

use crate::audio::AudioLp;
use crate::config::{FidelityTier, GpuGeneration, OperatorKind, SimulatorConfig};
use crate::dashboard::DashboardLp;
use crate::dynamics::DynamicsLp;
use crate::fom::CraneFom;
use crate::instructor::{FaultInjector, InstructorLp};
use crate::motion::MotionPlatformLp;
use crate::operator::{ExamOperator, IdleOperator, Operator, RecklessOperator};
use crate::scenario::ScenarioLp;
use crate::simulator::SessionReport;
use crate::telemetry::{FrameDigest, SharedTelemetry};
use crate::visual::VisualDisplayLp;
use cod_cb::{CbError, ClassRegistry};
use crane_scene::course::Course;

/// Largest final-score deviation a Coarse session may show against the Full
/// run of the same (config, seed), in score points. Pinned by experiment E12
/// and enforced by the testkit tier-transparency invariant and the
/// `fleet_report --quick` score-drift gate.
pub const SCORE_DRIFT_TOLERANCE: f64 = 25.0;

/// A simulation backend: everything the facade and the serving layer need
/// from one fidelity tier of the crane simulator.
///
/// A backend is a deterministic function of its configuration and session
/// seed: equal (config, seed) pairs stepped the same number of *session*
/// frames produce bit-identical telemetry, whatever tier they run on — which
/// is what lets a fleet promote and demote live sessions by replay.
pub trait SimBackend: Send {
    /// The tier this backend implements.
    fn tier(&self) -> FidelityTier;

    /// The configuration the backend was built with.
    fn config(&self) -> &SimulatorConfig;

    /// Runs one *session* frame and returns its step-level record. Tiers that
    /// decimate return a zero-cost record for the frames they skip.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    fn step_frame(&mut self) -> Result<FrameRecord, CbError>;

    /// [`SimBackend::step_frame`] with access to scratch shared across the
    /// same-shape cohort being advanced in lockstep (see
    /// [`crate::simulator::step_frames_batch`]). MUST be bit-identical to
    /// `step_frame`; the default ignores the scratch, so every backend is
    /// batchable — sharing work is an opt-in optimization, never a semantic
    /// change.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    fn step_frame_batched(&mut self, scratch: &mut BatchScratch) -> Result<FrameRecord, CbError> {
        let _ = scratch;
        self.step_frame()
    }

    /// Rewinds every piece of session state to the canonical session start
    /// and re-seeds the stochastic models (see
    /// [`crate::CraneSimulator::reset_for_session`]).
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module's session reset.
    fn reset_for_session(&mut self, seed: u64) -> Result<(), CbError>;

    /// Mean modeled cost of one *session* frame on a single machine hosting
    /// the backend in-process — the placement hint a serving layer uses to
    /// predict shard load. Zero until a frame has run. Tier-specific: a
    /// Coarse backend reports its decimated cost, not the full-rack one.
    fn session_cost_hint(&self) -> Micros;

    /// Session frames completed since the last reset.
    fn frames_run(&self) -> u64;

    /// The shared telemetry sink.
    fn telemetry(&self) -> &SharedTelemetry;

    /// The instructor's fault-injection console.
    fn fault_injector(&self) -> &FaultInjector;

    /// Read access to the underlying cluster.
    fn cluster(&self) -> &Cluster;

    /// Installs a fault-injection plan on the cluster LAN.
    fn set_fault_plan(&mut self, plan: FaultPlan);

    /// Plugs an additional display channel into the running system.
    ///
    /// # Errors
    ///
    /// Returns an error if the new module fails to initialize.
    fn add_extra_display(&mut self) -> Result<(), CbError>;

    /// Builds the session report from the telemetry and cluster metrics.
    fn report(&self) -> SessionReport;

    /// A bit-exact digest of the current session state, in session-frame
    /// terms. Equal digests mean bit-identical runs.
    fn telemetry_digest(&self) -> FrameDigest {
        FrameDigest::capture(
            self.frames_run(),
            self.cluster().now(),
            &self.telemetry().snapshot(),
            &self.cluster().lan_stats(),
        )
    }
}

/// The operator model for a configuration.
pub(crate) fn make_operator(kind: OperatorKind) -> Box<dyn Operator> {
    match kind {
        OperatorKind::Exam => Box::new(ExamOperator::new(Course::licensing_exam())),
        OperatorKind::Idle => Box::new(IdleOperator),
        OperatorKind::Reckless => Box::new(RecklessOperator::default()),
    }
}

/// The paper's deployment: the full eight-computer rack, one cluster frame
/// per session frame. This is the pre-refactor `CraneSimulator`, verbatim.
pub struct FullFidelity {
    config: SimulatorConfig,
    cluster: Cluster,
    telemetry: SharedTelemetry,
    fault_injector: FaultInjector,
    registry: ClassRegistry,
    fom: CraneFom,
    display_count: usize,
    barrier_overhead: Micros,
    /// Simulation time at which sessions start (the end of CB initialization);
    /// session resets rewind the whole cluster to this instant.
    session_epoch: Micros,
}

impl FullFidelity {
    /// Builds the rack described by `config` and runs the Communication
    /// Backbone initialization phase.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or a module fails to
    /// declare its publications and subscriptions.
    pub fn new(config: SimulatorConfig) -> Result<FullFidelity, CbError> {
        config.validate().map_err(CbError::Codec)?;
        let (registry, fom) = CraneFom::standard();
        let telemetry = SharedTelemetry::new();

        let cluster_config = ClusterConfig {
            lan: LanConfig::fast_ethernet(config.seed),
            frame_period: frame_period_for_fps(config.target_fps),
            init_rounds: 120,
        };
        let mut cluster = Cluster::new(cluster_config, registry.clone());
        let gpu = match config.gpu {
            GpuGeneration::Tnt2 => GpuCostModel::tnt2_class(),
            GpuGeneration::NextGeneration => GpuCostModel::next_generation(),
        };

        // The top of the rack: one computer per display channel.
        for channel in 0..config.display_channels {
            let pc =
                cluster.add_computer_with_speed(&format!("display-{channel}"), config.cpu_speed);
            cluster.add_lp(
                pc,
                Box::new(VisualDisplayLp::new(
                    registry.clone(),
                    fom,
                    channel,
                    config.display_channels,
                    config.display_width,
                    config.display_height,
                    config.render_pixels,
                    gpu,
                    telemetry.clone(),
                )),
            )?;
        }
        // The next computer: the synchronization server.
        let sync_pc = cluster.add_computer_with_speed("sync-server", config.cpu_speed);
        cluster
            .add_lp(sync_pc, Box::new(FrameSyncServer::new(fom.sync, config.display_channels)))?;

        // The remaining computers host the other modules.
        let dynamics_pc = cluster.add_computer_with_speed("dynamics-pc", config.cpu_speed);
        cluster.add_lp(
            dynamics_pc,
            Box::new(DynamicsLp::new(
                registry.clone(),
                fom,
                config.cargo_mass_kg,
                telemetry.clone(),
            )),
        )?;

        let control_pc = cluster.add_computer_with_speed("control-pc", config.cpu_speed);
        let operator = make_operator(config.operator);
        cluster.add_lp(
            control_pc,
            Box::new(DashboardLp::new(registry.clone(), fom, operator, telemetry.clone())),
        )?;
        cluster.add_lp(
            control_pc,
            Box::new(ScenarioLp::new(registry.clone(), fom, telemetry.clone())),
        )?;

        let instructor_pc = cluster.add_computer_with_speed("instructor-pc", config.cpu_speed);
        let (instructor, fault_injector) =
            InstructorLp::new(registry.clone(), fom, telemetry.clone());
        cluster.add_lp(instructor_pc, Box::new(instructor))?;
        cluster.add_lp(
            instructor_pc,
            Box::new(AudioLp::new(registry.clone(), fom, telemetry.clone())),
        )?;

        let motion_pc = cluster.add_computer_with_speed("motion-pc", config.cpu_speed);
        cluster.add_lp(
            motion_pc,
            Box::new(MotionPlatformLp::new(
                registry.clone(),
                fom,
                config.target_fps,
                config.seed,
                telemetry.clone(),
            )),
        )?;

        let mut backend = FullFidelity {
            config,
            cluster,
            telemetry,
            fault_injector,
            registry,
            fom,
            display_count: config.display_channels,
            barrier_overhead: Micros::from_millis(3),
            session_epoch: Micros::ZERO,
        };
        backend.cluster.initialize()?;
        // Every session — the first one included — starts from the canonical
        // post-initialization state, so a recycled simulator replays a fresh
        // one bit for bit.
        backend.session_epoch = backend.cluster.now();
        backend.start_session(config.seed)?;
        Ok(backend)
    }

    fn start_session(&mut self, seed: u64) -> Result<(), CbError> {
        self.config.seed = seed;
        self.telemetry.reset();
        self.cluster.begin_session(self.session_epoch, seed)
    }

    /// The module placement: for each computer, its name and resident module
    /// names.
    pub fn rack_layout(&self) -> Vec<(String, Vec<String>)> {
        (0..self.cluster.computer_count())
            .map(|i| {
                let computer = self.cluster.computer(ComputerId(i));
                (
                    computer.name().to_owned(),
                    computer.lp_names().iter().map(|s| (*s).to_owned()).collect(),
                )
            })
            .collect()
    }
}

impl SimBackend for FullFidelity {
    fn tier(&self) -> FidelityTier {
        FidelityTier::Full
    }

    fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    fn step_frame(&mut self) -> Result<FrameRecord, CbError> {
        self.cluster.run_frame()
    }

    fn step_frame_batched(&mut self, scratch: &mut BatchScratch) -> Result<FrameRecord, CbError> {
        self.cluster.run_frame_batched(scratch)
    }

    fn reset_for_session(&mut self, seed: u64) -> Result<(), CbError> {
        self.start_session(seed)
    }

    fn session_cost_hint(&self) -> Micros {
        self.cluster.metrics().mean_sequential_frame_cost()
    }

    fn frames_run(&self) -> u64 {
        self.cluster.metrics().frames_run
    }

    fn telemetry(&self) -> &SharedTelemetry {
        &self.telemetry
    }

    fn fault_injector(&self) -> &FaultInjector {
        &self.fault_injector
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.cluster.set_fault_plan(plan);
    }

    fn add_extra_display(&mut self) -> Result<(), CbError> {
        let channel = self.display_count;
        self.display_count += 1;
        let gpu = match self.config.gpu {
            GpuGeneration::Tnt2 => GpuCostModel::tnt2_class(),
            GpuGeneration::NextGeneration => GpuCostModel::next_generation(),
        };
        let pc = self
            .cluster
            .add_computer_with_speed(&format!("display-{channel}"), self.config.cpu_speed);
        self.cluster.add_lp(
            pc,
            Box::new(VisualDisplayLp::new(
                self.registry.clone(),
                self.fom,
                channel,
                self.display_count,
                self.config.display_width,
                self.config.display_height,
                self.config.render_pixels,
                gpu,
                self.telemetry.clone(),
            )),
        )?;
        Ok(())
    }

    fn report(&self) -> SessionReport {
        let snap = self.telemetry.snapshot();
        let metrics = self.cluster.metrics();
        let frame_period = self.cluster.frame_period();

        let slowest_channel =
            snap.channel_frame_times.iter().copied().max().unwrap_or(Micros::ZERO);
        let synchronized_period = if slowest_channel == Micros::ZERO {
            Micros::ZERO
        } else {
            slowest_channel + self.barrier_overhead
        };
        let fps_of = |period: Micros| {
            if period == Micros::ZERO {
                0.0
            } else {
                1.0 / period.as_secs_f64()
            }
        };

        SessionReport {
            frames_run: metrics.frames_run,
            score: snap.scenario.score,
            phase: snap.scenario.phase.clone(),
            passed: snap.scenario.passed,
            bar_hits: snap.scenario.bar_hits,
            collisions: snap.collisions.len(),
            cluster_fps: metrics.achievable_fps(frame_period),
            sequential_fps: metrics.sequential_fps(frame_period),
            synchronized_fps: fps_of(synchronized_period),
            free_running_fps: fps_of(slowest_channel),
            channel_frame_times: snap.channel_frame_times.clone(),
            max_hook_swing: snap.swing_history.iter().copied().fold(0.0, f64::max),
            platform_saturated: snap.platform_saturated,
            audio_rms: snap.audio_rms,
            established_channels: self.cluster.established_channels(),
            lan: self.cluster.lan_stats(),
        }
    }
}

/// The cheap tier: a decimated single-display rack.
///
/// Three levers make it order(s) of magnitude cheaper than [`FullFidelity`]
/// while keeping the same (seeded, deterministic) physics models:
///
/// * **One display channel** instead of three — the visual pipeline dominates
///   the full rack's modeled cost.
/// * **Frame decimation** — only every [`Coarse::DECIMATION`]-th session
///   frame steps the underlying cluster; the rest return a zero-cost record.
///   Collision checks and telemetry consequently sample at the decimated
///   rate ("aggregated collision, decimated telemetry").
/// * **Reduced integrator rate** — the inner rack runs at
///   `target_fps / DECIMATION`, so each cluster frame integrates a
///   proportionally longer `dt` and a session covers the same simulated
///   duration as its Full twin.
///
/// Scores stay comparable because the scenario grades elapsed simulated time
/// and collisions, neither of which depends on channel count; the coarser
/// integration step is the only drift source, bounded by
/// [`SCORE_DRIFT_TOLERANCE`].
pub struct Coarse {
    /// The caller's configuration (tier [`FidelityTier::Coarse`]), as
    /// distinct from the derived configuration of the inner rack.
    config: SimulatorConfig,
    rack: FullFidelity,
    /// Session frames stepped since the last reset (≥ cluster frames run).
    session_frames: u64,
}

impl Coarse {
    /// Session frames per cluster frame: the inner rack steps once every this
    /// many session frames, with a `dt` this many times longer.
    pub const DECIMATION: u64 = 8;
    /// Display channels of the decimated rack.
    pub const DISPLAY_CHANNELS: usize = 1;

    /// Builds the decimated rack for `config`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or a module fails to
    /// declare its publications and subscriptions.
    pub fn new(config: SimulatorConfig) -> Result<Coarse, CbError> {
        config.validate().map_err(CbError::Codec)?;
        let rack = FullFidelity::new(Self::derived_config(config))?;
        Ok(Coarse { config, rack, session_frames: 0 })
    }

    /// The inner rack's configuration: one display channel stepping at the
    /// decimated rate. Everything else — operator, seed, cargo, resolution —
    /// is the caller's, so the physics follow the same course.
    fn derived_config(config: SimulatorConfig) -> SimulatorConfig {
        SimulatorConfig {
            display_channels: Self::DISPLAY_CHANNELS,
            target_fps: config.target_fps / Self::DECIMATION as f64,
            ..config
        }
    }
}

impl SimBackend for Coarse {
    fn tier(&self) -> FidelityTier {
        FidelityTier::Coarse
    }

    fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    fn step_frame(&mut self) -> Result<FrameRecord, CbError> {
        let frame = self.session_frames;
        self.session_frames += 1;
        if frame % Self::DECIMATION == 0 {
            // One real cluster frame absorbs this batch of session frames.
            let mut record = self.rack.step_frame()?;
            record.frame = frame;
            Ok(record)
        } else {
            // A decimated-away frame: no modeled cost, time holds until the
            // next real step advances it by a full decimated period.
            Ok(FrameRecord { frame, now: self.rack.cluster().now(), costs: Vec::new() })
        }
    }

    fn step_frame_batched(&mut self, scratch: &mut BatchScratch) -> Result<FrameRecord, CbError> {
        // Same decimation as the scalar path; only the real cluster frames
        // touch the cohort scratch. Cohort members whose decimation phases
        // differ merely miss the memo — identity never depends on alignment.
        let frame = self.session_frames;
        self.session_frames += 1;
        if frame % Self::DECIMATION == 0 {
            let mut record = self.rack.step_frame_batched(scratch)?;
            record.frame = frame;
            Ok(record)
        } else {
            Ok(FrameRecord { frame, now: self.rack.cluster().now(), costs: Vec::new() })
        }
    }

    fn reset_for_session(&mut self, seed: u64) -> Result<(), CbError> {
        self.config.seed = seed;
        self.session_frames = 0;
        self.rack.reset_for_session(seed)
    }

    fn session_cost_hint(&self) -> Micros {
        // Mean over *session* frames: the decimated-away frames cost nothing,
        // which is exactly what makes this tier cheap to keep resident.
        if self.session_frames == 0 {
            Micros::ZERO
        } else {
            Micros(self.rack.cluster().metrics().total_sequential_cost.0 / self.session_frames)
        }
    }

    fn frames_run(&self) -> u64 {
        self.session_frames
    }

    fn telemetry(&self) -> &SharedTelemetry {
        self.rack.telemetry()
    }

    fn fault_injector(&self) -> &FaultInjector {
        self.rack.fault_injector()
    }

    fn cluster(&self) -> &Cluster {
        self.rack.cluster()
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.rack.set_fault_plan(plan);
    }

    fn add_extra_display(&mut self) -> Result<(), CbError> {
        self.rack.add_extra_display()
    }

    fn report(&self) -> SessionReport {
        // The inner rack counts cluster frames; a session is graded in
        // session frames.
        let mut report = self.rack.report();
        report.frames_run = self.session_frames;
        report
    }
}

/// Builds the backend for `config.tier`.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or a module fails to
/// declare its publications and subscriptions.
pub fn build_backend(config: SimulatorConfig) -> Result<Box<dyn SimBackend>, CbError> {
    Ok(match config.tier {
        FidelityTier::Full => Box::new(FullFidelity::new(config)?),
        FidelityTier::Coarse => Box::new(Coarse::new(config)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryTrace;
    use crate::CraneSimulator;

    fn config(tier: FidelityTier, frames: usize) -> SimulatorConfig {
        SimulatorConfig {
            tier,
            exam_frames: frames,
            display_width: 64,
            display_height: 48,
            ..SimulatorConfig::default()
        }
    }

    #[test]
    fn coarse_backend_is_an_order_of_magnitude_cheaper() {
        let frames = 64;
        let mut full = CraneSimulator::new(config(FidelityTier::Full, frames)).unwrap();
        let mut coarse = CraneSimulator::new(config(FidelityTier::Coarse, frames)).unwrap();
        full.run().unwrap();
        coarse.run().unwrap();
        assert_eq!(full.report().frames_run, frames as u64);
        assert_eq!(coarse.report().frames_run, frames as u64, "session frames, not cluster frames");
        let (f, c) = (full.session_cost_hint(), coarse.session_cost_hint());
        assert!(c > Micros::ZERO, "hint must be live after the first frame batch");
        assert!(
            f.0 >= 10 * c.0,
            "coarse must be >= 10x cheaper per session frame: full={f:?} coarse={c:?}"
        );
    }

    #[test]
    fn both_tiers_cover_the_same_simulated_duration() {
        let frames = 64;
        let mut full = CraneSimulator::new(config(FidelityTier::Full, frames)).unwrap();
        let mut coarse = CraneSimulator::new(config(FidelityTier::Coarse, frames)).unwrap();
        let (f0, c0) = (full.cluster().now(), coarse.cluster().now());
        full.run().unwrap();
        coarse.run().unwrap();
        let full_elapsed = full.cluster().now() - f0;
        let coarse_elapsed = coarse.cluster().now() - c0;
        assert_eq!(
            full_elapsed, coarse_elapsed,
            "decimation must stretch dt, not shrink the session"
        );
    }

    #[test]
    fn coarse_score_stays_within_the_pinned_tolerance() {
        for operator in [OperatorKind::Exam, OperatorKind::Reckless] {
            let mut base = config(FidelityTier::Full, 400);
            base.operator = operator;
            let mut full = CraneSimulator::new(base).unwrap();
            let mut coarse =
                CraneSimulator::new(SimulatorConfig { tier: FidelityTier::Coarse, ..base })
                    .unwrap();
            full.run().unwrap();
            coarse.run().unwrap();
            let drift = (full.report().score - coarse.report().score).abs();
            assert!(
                drift <= SCORE_DRIFT_TOLERANCE,
                "{operator:?}: drift {drift} exceeds tolerance {SCORE_DRIFT_TOLERANCE}"
            );
        }
    }

    #[test]
    fn coarse_replay_is_bit_exact_across_reset() {
        let mut sim = CraneSimulator::new(config(FidelityTier::Coarse, 48)).unwrap();
        let mut first = TelemetryTrace::new();
        for _ in 0..48 {
            sim.step_frame().unwrap();
            first.record(sim.telemetry_digest());
        }
        sim.reset_for_session(sim.config().seed).unwrap();
        let mut second = TelemetryTrace::new();
        for _ in 0..48 {
            sim.step_frame().unwrap();
            second.record(sim.telemetry_digest());
        }
        assert_eq!(first.first_divergence(&second), None, "coarse recycling must replay exactly");
    }

    #[test]
    fn decimated_frames_carry_no_cost() {
        let mut sim = CraneSimulator::new(config(FidelityTier::Coarse, 16)).unwrap();
        let mut real = 0;
        for i in 0..16u64 {
            let record = sim.step_frame().unwrap();
            assert_eq!(record.frame, i, "records are numbered in session frames");
            if record.costs.is_empty() {
                continue;
            }
            real += 1;
        }
        assert_eq!(real, 16 / Coarse::DECIMATION, "one real cluster frame per decimation batch");
    }
}
