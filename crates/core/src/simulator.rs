//! The assembled mobile-crane training simulator.
//!
//! Reproduces the deployment of the paper's §4: eight desktop computers on one
//! LAN — three display channels, one frame-synchronization server, and four
//! computers hosting the dynamics, dashboard + scenario, instructor + audio and
//! motion-platform modules — all glued together by the Communication Backbone.
//!
//! Since the fidelity-tier refactor, [`CraneSimulator`] is a thin facade over
//! a [`SimBackend`]: the deployment above lives in
//! [`crate::backend::FullFidelity`], and [`crate::backend::Coarse`] provides a
//! decimated, order(s)-of-magnitude cheaper tier behind the same API. The
//! facade dispatches on [`SimulatorConfig::tier`] at construction.

use cod_cluster::{BatchScratch, Cluster, ComputerId, FrameRecord};
use cod_net::{FaultPlan, LanStats, Micros};
use serde::{Deserialize, Serialize};

use crate::backend::{build_backend, SimBackend};
use crate::config::{FidelityTier, SimulatorConfig};
use crate::instructor::FaultInjector;
use crate::telemetry::{FrameDigest, SharedTelemetry, TelemetrySnapshot};
use cod_cb::CbError;
use crane_scene::course::Course;

/// Summary of a completed (or interrupted) training session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Session frames executed (equals cluster frames on the Full tier).
    pub frames_run: u64,
    /// Final exam score.
    pub score: f64,
    /// Final scenario phase.
    pub phase: String,
    /// Whether the exam was completed and passed.
    pub passed: bool,
    /// Number of scored bar collisions.
    pub bar_hits: u32,
    /// Total collision events observed.
    pub collisions: usize,
    /// Frame rate sustainable by the distributed cluster (pipelined execution).
    pub cluster_fps: f64,
    /// Frame rate a single computer running every module sequentially could sustain.
    pub sequential_fps: f64,
    /// Frame rate of the synchronized surround view (slowest channel + swap lock).
    pub synchronized_fps: f64,
    /// Frame rate of the slowest channel free-running (no swap lock).
    pub free_running_fps: f64,
    /// Latest per-channel modeled render times.
    pub channel_frame_times: Vec<Micros>,
    /// Largest hook swing amplitude observed, in metres.
    pub max_hook_swing: f64,
    /// Whether any motion-platform actuator saturated.
    pub platform_saturated: bool,
    /// Latest audio output level (RMS).
    pub audio_rms: f64,
    /// Virtual channels established across every CB.
    pub established_channels: usize,
    /// LAN traffic counters.
    pub lan: LanStats,
}

/// The assembled simulator: a facade over the [`SimBackend`] selected by
/// [`SimulatorConfig::tier`].
pub struct CraneSimulator {
    backend: Box<dyn SimBackend>,
}

impl CraneSimulator {
    /// Builds the deployment for the configured fidelity tier and runs the
    /// Communication Backbone initialization phase.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or a module fails to
    /// declare its publications and subscriptions.
    pub fn new(config: SimulatorConfig) -> Result<CraneSimulator, CbError> {
        Ok(CraneSimulator { backend: build_backend(config)? })
    }

    /// The fidelity tier serving this simulator.
    pub fn tier(&self) -> FidelityTier {
        self.backend.tier()
    }

    /// Read access to the backend, for code that needs tier-specific detail.
    pub fn backend(&self) -> &dyn SimBackend {
        self.backend.as_ref()
    }

    /// Recycles the simulator for a new session without tearing down the
    /// rack: the scene assets, CB kernels and established virtual channels
    /// are reused (the expensive initialization protocol does not run again)
    /// while every piece of session state — telemetry, LAN and fault
    /// counters, frame-sync barriers, module state, clocks and metrics — is
    /// rewound to the canonical session start. The configuration keeps its
    /// topology; only the session seed changes.
    ///
    /// Running `n` frames after this call produces a
    /// [`crate::TelemetryTrace`] bit-identical to a freshly built simulator
    /// with the same configuration and seed running `n` frames.
    ///
    /// Any fault plan installed for the previous session is removed; install
    /// the next session's plan after this call.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module's session reset.
    pub fn reset_for_session(&mut self, seed: u64) -> Result<(), CbError> {
        self.backend.reset_for_session(seed)
    }

    /// The configuration the simulator was built with.
    pub fn config(&self) -> &SimulatorConfig {
        self.backend.config()
    }

    /// The shared telemetry sink.
    pub fn telemetry(&self) -> &SharedTelemetry {
        self.backend.telemetry()
    }

    /// The instructor's fault-injection console.
    pub fn fault_injector(&self) -> &FaultInjector {
        self.backend.fault_injector()
    }

    /// Number of computers in the rack.
    pub fn computer_count(&self) -> usize {
        self.backend.cluster().computer_count()
    }

    /// The module placement: for each computer, its name and resident module names.
    pub fn rack_layout(&self) -> Vec<(String, Vec<String>)> {
        let cluster = self.backend.cluster();
        (0..cluster.computer_count())
            .map(|i| {
                let computer = cluster.computer(ComputerId(i));
                (
                    computer.name().to_owned(),
                    computer.lp_names().iter().map(|s| (*s).to_owned()).collect(),
                )
            })
            .collect()
    }

    /// Runs the configured number of exam frames.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    pub fn run(&mut self) -> Result<(), CbError> {
        let frames = self.backend.config().exam_frames;
        self.run_frames(frames)
    }

    /// Runs `frames` additional session frames.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    pub fn run_frames(&mut self, frames: usize) -> Result<(), CbError> {
        for _ in 0..frames {
            self.backend.step_frame()?;
        }
        Ok(())
    }

    /// Runs exactly one session frame and returns its step-level record — the
    /// hook the testkit uses to interleave trace recording and invariant
    /// checks with the executive. On a decimating tier, skipped frames return
    /// a zero-cost record.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    pub fn step_frame(&mut self) -> Result<FrameRecord, CbError> {
        self.backend.step_frame()
    }

    /// [`CraneSimulator::step_frame`] with access to scratch shared across a
    /// lockstep cohort — see [`step_frames_batch`]. Bit-identical to
    /// `step_frame` by the [`SimBackend::step_frame_batched`] contract.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    pub fn step_frame_batched(
        &mut self,
        scratch: &mut BatchScratch,
    ) -> Result<FrameRecord, CbError> {
        self.backend.step_frame_batched(scratch)
    }

    /// Read access to the underlying cluster (rack layout, metrics, kernels),
    /// used by invariant checkers to audit CB channel tables.
    pub fn cluster(&self) -> &Cluster {
        self.backend.cluster()
    }

    /// Installs a fault-injection plan on the cluster LAN. Usually called right
    /// after construction so the Communication Backbone initializes over a
    /// healthy network and the faults hit the running session.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.backend.set_fault_plan(plan);
    }

    /// Plugs an additional display channel into the running system — the
    /// dynamic-join capability the paper's §2.3 calls out ("an LP (an extra
    /// display, for example) can be dynamically added to the system without
    /// restarting the entire system").
    ///
    /// # Errors
    ///
    /// Returns an error if the new module fails to initialize.
    pub fn add_extra_display(&mut self) -> Result<(), CbError> {
        self.backend.add_extra_display()
    }

    /// A snapshot of the raw telemetry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.backend.telemetry().snapshot()
    }

    /// A bit-exact digest of the current session state, in session-frame
    /// terms (see [`SimBackend::telemetry_digest`]).
    pub fn telemetry_digest(&self) -> FrameDigest {
        self.backend.telemetry_digest()
    }

    /// Builds the session report from the telemetry and cluster metrics.
    pub fn report(&self) -> SessionReport {
        self.backend.report()
    }

    /// The exam course in use (for operators and analysis code).
    pub fn course(&self) -> Course {
        Course::licensing_exam()
    }

    /// Mean modeled cost of running one session frame of this whole session
    /// on a single machine hosting the virtual cluster in-process — the
    /// placement hint a serving layer uses to predict shard load. Zero until
    /// a frame has run. Tier-specific: a Coarse session reports its decimated
    /// cost.
    pub fn session_cost_hint(&self) -> Micros {
        self.backend.session_cost_hint()
    }
}

/// Advances a cohort of simulators frame-major and in lockstep: frame `k` of
/// every member runs before frame `k+1` of any of them, all sharing one
/// [`BatchScratch`] whose epoch advances per frame index. Each entry carries
/// its own frame budget; members whose budget is exhausted sit out the
/// remaining frames.
///
/// This is the data-parallel inner loop of the serving layer's batched
/// stepping: same-shape sessions admitted together keep their per-frame pure
/// work (waveform columns today, hoisted tables tomorrow) aligned, so the
/// scratch turns N copies of it into one. Returns the summed modeled cost of
/// each member's frames, in cohort order. Bit-identical to stepping every
/// member independently with [`CraneSimulator::step_frame`].
///
/// # Errors
///
/// Returns the first error raised by any member's executive.
pub fn step_frames_batch(
    batch: &mut [(&mut CraneSimulator, usize)],
) -> Result<Vec<Micros>, CbError> {
    step_frames_batch_traced(batch, None)
}

/// Frame-level counters collected by [`step_frames_batch_traced`]: how many
/// session frames the batch actually stepped and how the cohort's wavebank
/// memo fared. Deterministic — a pure function of the cohort and the seed —
/// so observability sinks may fold them into fingerprinted reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStepStats {
    /// Session frames stepped across all members (budget-gated, so less than
    /// `members * max_budget` when budgets are ragged).
    pub frames_stepped: u64,
    /// Wavebank memo hits across the whole batch.
    pub memo_hits: u64,
    /// Wavebank memo misses (columns rendered then shared) across the batch.
    pub memo_misses: u64,
}

impl BatchStepStats {
    /// Accumulates another batch's counters into this one.
    pub fn merge(&mut self, other: &BatchStepStats) {
        self.frames_stepped += other.frames_stepped;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }
}

/// [`step_frames_batch`] with an optional stats out-parameter. When `stats`
/// is `Some`, the counters for this batch are *added* into it (callers keep
/// one accumulator across many cohorts); the stepping itself is bit-identical
/// either way.
///
/// # Errors
///
/// Returns the first error raised by any member's executive.
pub fn step_frames_batch_traced(
    batch: &mut [(&mut CraneSimulator, usize)],
    stats: Option<&mut BatchStepStats>,
) -> Result<Vec<Micros>, CbError> {
    let mut scratch = BatchScratch::new();
    let mut costs = vec![Micros::ZERO; batch.len()];
    let mut frames_stepped = 0u64;
    let frames = batch.iter().map(|(_, budget)| *budget).max().unwrap_or(0);
    for frame in 0..frames {
        scratch.begin_frame();
        for ((sim, budget), cost) in batch.iter_mut().zip(costs.iter_mut()) {
            if frame < *budget {
                let record = sim.step_frame_batched(&mut scratch)?;
                for (_, c) in &record.costs {
                    *cost += *c;
                }
                frames_stepped += 1;
            }
        }
    }
    if let Some(stats) = stats {
        let (hits, misses) = crate::audio::wavebank_memo_stats(&mut scratch);
        stats.frames_stepped += frames_stepped;
        stats.memo_hits += hits;
        stats.memo_misses += misses;
    }
    Ok(costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OperatorKind;

    fn quick_config(operator: OperatorKind, frames: usize) -> SimulatorConfig {
        SimulatorConfig {
            operator,
            exam_frames: frames,
            display_width: 64,
            display_height: 48,
            ..SimulatorConfig::default()
        }
    }

    #[test]
    fn builds_the_eight_computer_rack_of_the_paper() {
        let simulator = CraneSimulator::new(quick_config(OperatorKind::Idle, 10)).unwrap();
        assert_eq!(simulator.tier(), FidelityTier::Full);
        assert_eq!(simulator.computer_count(), 8);
        let layout = simulator.rack_layout();
        let module_count: usize = layout.iter().map(|(_, lps)| lps.len()).sum();
        // Seven modules of Figure 3 (visual appears three times) plus the sync server.
        assert_eq!(module_count, 3 + 1 + 1 + 2 + 2 + 1);
        assert!(simulator.report().established_channels > 10, "CB discovery incomplete");
    }

    #[test]
    fn coarse_tier_builds_a_smaller_rack_behind_the_same_facade() {
        let config =
            SimulatorConfig { tier: FidelityTier::Coarse, ..quick_config(OperatorKind::Idle, 10) };
        let simulator = CraneSimulator::new(config).unwrap();
        assert_eq!(simulator.tier(), FidelityTier::Coarse);
        // One display channel instead of three: six computers, not eight.
        assert_eq!(simulator.computer_count(), 6);
        assert_eq!(simulator.config().tier, FidelityTier::Coarse);
    }

    #[test]
    fn idle_session_reproduces_the_paper_frame_rate_regime() {
        let mut simulator = CraneSimulator::new(quick_config(OperatorKind::Idle, 40)).unwrap();
        simulator.run().unwrap();
        let report = simulator.report();
        assert_eq!(report.frames_run, 40);
        assert!(
            report.synchronized_fps > 13.0 && report.synchronized_fps < 19.0,
            "synchronized fps = {}",
            report.synchronized_fps
        );
        assert!(report.free_running_fps > report.synchronized_fps);
        assert!(report.cluster_fps > report.sequential_fps, "the COD must beat one desktop PC");
        assert!(report.audio_rms > 0.0, "background noise missing");
        assert_eq!(report.channel_frame_times.len(), 3);
    }

    #[test]
    fn exam_session_starts_driving_toward_the_course() {
        let mut simulator = CraneSimulator::new(quick_config(OperatorKind::Exam, 200)).unwrap();
        simulator.run().unwrap();
        let snap = simulator.snapshot();
        let start_z = Course::licensing_exam().start_position.z;
        assert!(
            snap.crane.chassis_position.z > start_z + 5.0,
            "crane never moved: {:?}",
            snap.crane.chassis_position
        );
        assert!(snap.scenario.score <= 100.0);
        assert_eq!(snap.scenario.phase, "Driving");
        assert!(snap.status_window.boom_raise_deg > 0.0, "status window not populated");
        assert!(!snap.crane_track.is_empty());
    }

    #[test]
    fn reckless_operator_trips_instructor_alarms() {
        let mut simulator = CraneSimulator::new(quick_config(OperatorKind::Reckless, 550)).unwrap();
        simulator.run().unwrap();
        let snap = simulator.snapshot();
        assert!(
            !snap.alarm_events.is_empty(),
            "no alarm raised by a reckless operator: {:?}",
            snap.alarms
        );
    }

    #[test]
    fn extra_display_joins_the_running_system() {
        let mut simulator = CraneSimulator::new(quick_config(OperatorKind::Idle, 20)).unwrap();
        simulator.run_frames(20).unwrap();
        let before = simulator.computer_count();
        simulator.add_extra_display().unwrap();
        simulator.run_frames(60).unwrap();
        assert_eq!(simulator.computer_count(), before + 1);
        let report = simulator.report();
        // The new channel renders and reports a frame time like the others.
        assert_eq!(report.channel_frame_times.len(), 4);
        assert!(report.channel_frame_times[3] > Micros::ZERO);
    }

    #[test]
    fn cpu_speed_scales_modeled_cost_but_not_physics() {
        let base = quick_config(OperatorKind::Exam, 60);
        let mut reference = CraneSimulator::new(base).unwrap();
        let mut fast = CraneSimulator::new(SimulatorConfig { cpu_speed: 2.0, ..base }).unwrap();
        reference.run().unwrap();
        fast.run().unwrap();
        let slow_report = reference.report();
        let fast_report = fast.report();
        // Physics, scoring and telemetry are speed-independent...
        assert_eq!(slow_report.score, fast_report.score);
        assert_eq!(slow_report.passed, fast_report.passed);
        assert_eq!(slow_report.frames_run, fast_report.frames_run);
        assert_eq!(reference.snapshot().crane, fast.snapshot().crane);
        // ...while the modeled CPU cost halves on a 2x machine.
        assert!(fast.session_cost_hint() < reference.session_cost_hint());
        assert!(fast_report.sequential_fps > slow_report.sequential_fps);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = SimulatorConfig { display_channels: 0, ..SimulatorConfig::default() };
        assert!(CraneSimulator::new(bad).is_err());
    }

    fn cohort(tier: FidelityTier, n: usize, frames: usize) -> Vec<CraneSimulator> {
        (0..n)
            .map(|k| {
                let config = SimulatorConfig {
                    tier,
                    seed: 0xBA7C + k as u64,
                    ..quick_config(OperatorKind::Exam, frames)
                };
                CraneSimulator::new(config).unwrap()
            })
            .collect()
    }

    #[test]
    fn batched_cohort_is_bit_identical_to_scalar_stepping() {
        for tier in [FidelityTier::Full, FidelityTier::Coarse] {
            let frames = 24;
            let mut scalar = cohort(tier, 3, frames);
            let mut batched = cohort(tier, 3, frames);

            let mut scalar_costs = vec![Micros::ZERO; scalar.len()];
            for (sim, cost) in scalar.iter_mut().zip(scalar_costs.iter_mut()) {
                for _ in 0..frames {
                    let record = sim.step_frame().unwrap();
                    for (_, c) in &record.costs {
                        *cost += *c;
                    }
                }
            }

            let mut batch: Vec<(&mut CraneSimulator, usize)> =
                batched.iter_mut().map(|sim| (sim, frames)).collect();
            let batched_costs = step_frames_batch(&mut batch).unwrap();

            assert_eq!(scalar_costs, batched_costs, "modeled costs diverged on {tier:?}");
            for (a, b) in scalar.iter().zip(batched.iter()) {
                assert_eq!(
                    a.telemetry_digest(),
                    b.telemetry_digest(),
                    "telemetry diverged on {tier:?}"
                );
            }
        }
    }

    #[test]
    fn batch_members_with_uneven_budgets_sit_out_extra_frames() {
        let mut scalar = cohort(FidelityTier::Full, 2, 20);
        let mut batched = cohort(FidelityTier::Full, 2, 20);
        let budgets = [20usize, 7];

        for (sim, budget) in scalar.iter_mut().zip(budgets) {
            for _ in 0..budget {
                sim.step_frame().unwrap();
            }
        }
        let mut batch: Vec<(&mut CraneSimulator, usize)> =
            batched.iter_mut().zip(budgets).map(|(sim, budget)| (sim, budget)).collect();
        step_frames_batch(&mut batch).unwrap();

        for ((a, b), budget) in scalar.iter().zip(batched.iter()).zip(budgets) {
            assert_eq!(a.backend().frames_run(), budget as u64);
            assert_eq!(a.telemetry_digest(), b.telemetry_digest());
        }
    }
}
