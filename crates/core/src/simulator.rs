//! The assembled mobile-crane training simulator.
//!
//! Reproduces the deployment of the paper's §4: eight desktop computers on one
//! LAN — three display channels, one frame-synchronization server, and four
//! computers hosting the dynamics, dashboard + scenario, instructor + audio and
//! motion-platform modules — all glued together by the Communication Backbone.

use cod_cluster::{
    frame_period_for_fps, Cluster, ClusterConfig, ComputerId, FrameRecord, FrameSyncServer,
};
use cod_net::{FaultPlan, LanConfig, LanStats, Micros};
use render_sim::GpuCostModel;
use serde::{Deserialize, Serialize};

use crate::audio::AudioLp;
use crate::config::{GpuGeneration, OperatorKind, SimulatorConfig};
use crate::dashboard::DashboardLp;
use crate::dynamics::DynamicsLp;
use crate::fom::CraneFom;
use crate::instructor::{FaultInjector, InstructorLp};
use crate::motion::MotionPlatformLp;
use crate::operator::{ExamOperator, IdleOperator, Operator, RecklessOperator};
use crate::scenario::ScenarioLp;
use crate::telemetry::{SharedTelemetry, TelemetrySnapshot};
use crate::visual::VisualDisplayLp;
use cod_cb::{CbError, ClassRegistry};
use crane_scene::course::Course;

/// Summary of a completed (or interrupted) training session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Frames executed by the cluster executive.
    pub frames_run: u64,
    /// Final exam score.
    pub score: f64,
    /// Final scenario phase.
    pub phase: String,
    /// Whether the exam was completed and passed.
    pub passed: bool,
    /// Number of scored bar collisions.
    pub bar_hits: u32,
    /// Total collision events observed.
    pub collisions: usize,
    /// Frame rate sustainable by the distributed cluster (pipelined execution).
    pub cluster_fps: f64,
    /// Frame rate a single computer running every module sequentially could sustain.
    pub sequential_fps: f64,
    /// Frame rate of the synchronized surround view (slowest channel + swap lock).
    pub synchronized_fps: f64,
    /// Frame rate of the slowest channel free-running (no swap lock).
    pub free_running_fps: f64,
    /// Latest per-channel modeled render times.
    pub channel_frame_times: Vec<Micros>,
    /// Largest hook swing amplitude observed, in metres.
    pub max_hook_swing: f64,
    /// Whether any motion-platform actuator saturated.
    pub platform_saturated: bool,
    /// Latest audio output level (RMS).
    pub audio_rms: f64,
    /// Virtual channels established across every CB.
    pub established_channels: usize,
    /// LAN traffic counters.
    pub lan: LanStats,
}

/// The assembled simulator.
pub struct CraneSimulator {
    config: SimulatorConfig,
    cluster: Cluster,
    telemetry: SharedTelemetry,
    fault_injector: FaultInjector,
    registry: ClassRegistry,
    fom: CraneFom,
    display_count: usize,
    barrier_overhead: Micros,
    /// Simulation time at which sessions start (the end of CB initialization);
    /// session resets rewind the whole cluster to this instant.
    session_epoch: Micros,
}

impl CraneSimulator {
    /// Builds the full eight-computer deployment and runs the Communication
    /// Backbone initialization phase.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or a module fails to
    /// declare its publications and subscriptions.
    pub fn new(config: SimulatorConfig) -> Result<CraneSimulator, CbError> {
        config.validate().map_err(CbError::Codec)?;
        let (registry, fom) = CraneFom::standard();
        let telemetry = SharedTelemetry::new();

        let cluster_config = ClusterConfig {
            lan: LanConfig::fast_ethernet(config.seed),
            frame_period: frame_period_for_fps(config.target_fps),
            init_rounds: 120,
        };
        let mut cluster = Cluster::new(cluster_config, registry.clone());
        let gpu = match config.gpu {
            GpuGeneration::Tnt2 => GpuCostModel::tnt2_class(),
            GpuGeneration::NextGeneration => GpuCostModel::next_generation(),
        };

        // The top of the rack: one computer per display channel.
        for channel in 0..config.display_channels {
            let pc =
                cluster.add_computer_with_speed(&format!("display-{channel}"), config.cpu_speed);
            cluster.add_lp(
                pc,
                Box::new(VisualDisplayLp::new(
                    registry.clone(),
                    fom,
                    channel,
                    config.display_channels,
                    config.display_width,
                    config.display_height,
                    config.render_pixels,
                    gpu,
                    telemetry.clone(),
                )),
            )?;
        }
        // The fourth computer: the synchronization server.
        let sync_pc = cluster.add_computer_with_speed("sync-server", config.cpu_speed);
        cluster
            .add_lp(sync_pc, Box::new(FrameSyncServer::new(fom.sync, config.display_channels)))?;

        // The remaining computers host the other modules.
        let dynamics_pc = cluster.add_computer_with_speed("dynamics-pc", config.cpu_speed);
        cluster.add_lp(
            dynamics_pc,
            Box::new(DynamicsLp::new(
                registry.clone(),
                fom,
                config.cargo_mass_kg,
                telemetry.clone(),
            )),
        )?;

        let control_pc = cluster.add_computer_with_speed("control-pc", config.cpu_speed);
        let operator = make_operator(config.operator);
        cluster.add_lp(
            control_pc,
            Box::new(DashboardLp::new(registry.clone(), fom, operator, telemetry.clone())),
        )?;
        cluster.add_lp(
            control_pc,
            Box::new(ScenarioLp::new(registry.clone(), fom, telemetry.clone())),
        )?;

        let instructor_pc = cluster.add_computer_with_speed("instructor-pc", config.cpu_speed);
        let (instructor, fault_injector) =
            InstructorLp::new(registry.clone(), fom, telemetry.clone());
        cluster.add_lp(instructor_pc, Box::new(instructor))?;
        cluster.add_lp(
            instructor_pc,
            Box::new(AudioLp::new(registry.clone(), fom, telemetry.clone())),
        )?;

        let motion_pc = cluster.add_computer_with_speed("motion-pc", config.cpu_speed);
        cluster.add_lp(
            motion_pc,
            Box::new(MotionPlatformLp::new(
                registry.clone(),
                fom,
                config.target_fps,
                config.seed,
                telemetry.clone(),
            )),
        )?;

        let mut simulator = CraneSimulator {
            config,
            cluster,
            telemetry,
            fault_injector,
            registry,
            fom,
            display_count: config.display_channels,
            barrier_overhead: Micros::from_millis(3),
            session_epoch: Micros::ZERO,
        };
        simulator.cluster.initialize()?;
        // Every session — the first one included — starts from the canonical
        // post-initialization state, so a recycled simulator replays a fresh
        // one bit for bit.
        simulator.session_epoch = simulator.cluster.now();
        simulator.start_session(config.seed)?;
        Ok(simulator)
    }

    /// Recycles the simulator for a new session without tearing down the
    /// rack: the scene assets, CB kernels and established virtual channels
    /// are reused (the expensive initialization protocol does not run again)
    /// while every piece of session state — telemetry, LAN and fault
    /// counters, frame-sync barriers, module state, clocks and metrics — is
    /// rewound to the canonical session start. The configuration keeps its
    /// topology; only the session seed changes.
    ///
    /// Running `n` frames after this call produces a [`TelemetryTrace`]
    /// bit-identical to a freshly built simulator with the same configuration
    /// and seed running `n` frames.
    ///
    /// Any fault plan installed for the previous session is removed; install
    /// the next session's plan after this call.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module's session reset.
    pub fn reset_for_session(&mut self, seed: u64) -> Result<(), CbError> {
        self.start_session(seed)
    }

    fn start_session(&mut self, seed: u64) -> Result<(), CbError> {
        self.config.seed = seed;
        self.telemetry.reset();
        self.cluster.begin_session(self.session_epoch, seed)
    }

    /// The configuration the simulator was built with.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// The shared telemetry sink.
    pub fn telemetry(&self) -> &SharedTelemetry {
        &self.telemetry
    }

    /// The instructor's fault-injection console.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault_injector
    }

    /// Number of computers in the rack.
    pub fn computer_count(&self) -> usize {
        self.cluster.computer_count()
    }

    /// The module placement: for each computer, its name and resident module names.
    pub fn rack_layout(&self) -> Vec<(String, Vec<String>)> {
        (0..self.cluster.computer_count())
            .map(|i| {
                let computer = self.cluster.computer(ComputerId(i));
                (
                    computer.name().to_owned(),
                    computer.lp_names().iter().map(|s| (*s).to_owned()).collect(),
                )
            })
            .collect()
    }

    /// Runs the configured number of exam frames.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    pub fn run(&mut self) -> Result<(), CbError> {
        let frames = self.config.exam_frames;
        self.run_frames(frames)
    }

    /// Runs `frames` additional frames.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    pub fn run_frames(&mut self, frames: usize) -> Result<(), CbError> {
        self.cluster.run_frames(frames)
    }

    /// Runs exactly one frame and returns its step-level record — the hook the
    /// testkit uses to interleave trace recording and invariant checks with
    /// the executive.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by a module or the backbone.
    pub fn step_frame(&mut self) -> Result<FrameRecord, CbError> {
        self.cluster.run_frame()
    }

    /// Read access to the underlying cluster (rack layout, metrics, kernels),
    /// used by invariant checkers to audit CB channel tables.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Installs a fault-injection plan on the cluster LAN. Usually called right
    /// after construction so the Communication Backbone initializes over a
    /// healthy network and the faults hit the running session.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.cluster.set_fault_plan(plan);
    }

    /// Plugs an additional display channel into the running system — the
    /// dynamic-join capability the paper's §2.3 calls out ("an LP (an extra
    /// display, for example) can be dynamically added to the system without
    /// restarting the entire system").
    ///
    /// # Errors
    ///
    /// Returns an error if the new module fails to initialize.
    pub fn add_extra_display(&mut self) -> Result<(), CbError> {
        let channel = self.display_count;
        self.display_count += 1;
        let gpu = match self.config.gpu {
            GpuGeneration::Tnt2 => GpuCostModel::tnt2_class(),
            GpuGeneration::NextGeneration => GpuCostModel::next_generation(),
        };
        let pc = self
            .cluster
            .add_computer_with_speed(&format!("display-{channel}"), self.config.cpu_speed);
        self.cluster.add_lp(
            pc,
            Box::new(VisualDisplayLp::new(
                self.registry.clone(),
                self.fom,
                channel,
                self.display_count,
                self.config.display_width,
                self.config.display_height,
                self.config.render_pixels,
                gpu,
                self.telemetry.clone(),
            )),
        )?;
        Ok(())
    }

    /// A snapshot of the raw telemetry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Builds the session report from the telemetry and cluster metrics.
    pub fn report(&self) -> SessionReport {
        let snap = self.telemetry.snapshot();
        let metrics = self.cluster.metrics();
        let frame_period = self.cluster.frame_period();

        let slowest_channel =
            snap.channel_frame_times.iter().copied().max().unwrap_or(Micros::ZERO);
        let synchronized_period = if slowest_channel == Micros::ZERO {
            Micros::ZERO
        } else {
            slowest_channel + self.barrier_overhead
        };
        let fps_of = |period: Micros| {
            if period == Micros::ZERO {
                0.0
            } else {
                1.0 / period.as_secs_f64()
            }
        };

        SessionReport {
            frames_run: metrics.frames_run,
            score: snap.scenario.score,
            phase: snap.scenario.phase.clone(),
            passed: snap.scenario.passed,
            bar_hits: snap.scenario.bar_hits,
            collisions: snap.collisions.len(),
            cluster_fps: metrics.achievable_fps(frame_period),
            sequential_fps: metrics.sequential_fps(frame_period),
            synchronized_fps: fps_of(synchronized_period),
            free_running_fps: fps_of(slowest_channel),
            channel_frame_times: snap.channel_frame_times.clone(),
            max_hook_swing: snap.swing_history.iter().copied().fold(0.0, f64::max),
            platform_saturated: snap.platform_saturated,
            audio_rms: snap.audio_rms,
            established_channels: self.cluster.established_channels(),
            lan: self.cluster.lan_stats(),
        }
    }

    /// The exam course in use (for operators and analysis code).
    pub fn course(&self) -> Course {
        Course::licensing_exam()
    }

    /// Mean modeled cost of running one frame of this whole session on a
    /// single machine hosting the virtual cluster in-process — the placement
    /// hint a serving layer uses to predict shard load. Zero until a frame
    /// has run.
    pub fn session_cost_hint(&self) -> Micros {
        self.cluster.metrics().mean_sequential_frame_cost()
    }
}

fn make_operator(kind: OperatorKind) -> Box<dyn Operator> {
    match kind {
        OperatorKind::Exam => Box::new(ExamOperator::new(Course::licensing_exam())),
        OperatorKind::Idle => Box::new(IdleOperator),
        OperatorKind::Reckless => Box::new(RecklessOperator::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(operator: OperatorKind, frames: usize) -> SimulatorConfig {
        SimulatorConfig {
            operator,
            exam_frames: frames,
            display_width: 64,
            display_height: 48,
            ..SimulatorConfig::default()
        }
    }

    #[test]
    fn builds_the_eight_computer_rack_of_the_paper() {
        let simulator = CraneSimulator::new(quick_config(OperatorKind::Idle, 10)).unwrap();
        assert_eq!(simulator.computer_count(), 8);
        let layout = simulator.rack_layout();
        let module_count: usize = layout.iter().map(|(_, lps)| lps.len()).sum();
        // Seven modules of Figure 3 (visual appears three times) plus the sync server.
        assert_eq!(module_count, 3 + 1 + 1 + 2 + 2 + 1);
        assert!(simulator.report().established_channels > 10, "CB discovery incomplete");
    }

    #[test]
    fn idle_session_reproduces_the_paper_frame_rate_regime() {
        let mut simulator = CraneSimulator::new(quick_config(OperatorKind::Idle, 40)).unwrap();
        simulator.run().unwrap();
        let report = simulator.report();
        assert_eq!(report.frames_run, 40);
        assert!(
            report.synchronized_fps > 13.0 && report.synchronized_fps < 19.0,
            "synchronized fps = {}",
            report.synchronized_fps
        );
        assert!(report.free_running_fps > report.synchronized_fps);
        assert!(report.cluster_fps > report.sequential_fps, "the COD must beat one desktop PC");
        assert!(report.audio_rms > 0.0, "background noise missing");
        assert_eq!(report.channel_frame_times.len(), 3);
    }

    #[test]
    fn exam_session_starts_driving_toward_the_course() {
        let mut simulator = CraneSimulator::new(quick_config(OperatorKind::Exam, 200)).unwrap();
        simulator.run().unwrap();
        let snap = simulator.snapshot();
        let start_z = Course::licensing_exam().start_position.z;
        assert!(
            snap.crane.chassis_position.z > start_z + 5.0,
            "crane never moved: {:?}",
            snap.crane.chassis_position
        );
        assert!(snap.scenario.score <= 100.0);
        assert_eq!(snap.scenario.phase, "Driving");
        assert!(snap.status_window.boom_raise_deg > 0.0, "status window not populated");
        assert!(!snap.crane_track.is_empty());
    }

    #[test]
    fn reckless_operator_trips_instructor_alarms() {
        let mut simulator = CraneSimulator::new(quick_config(OperatorKind::Reckless, 550)).unwrap();
        simulator.run().unwrap();
        let snap = simulator.snapshot();
        assert!(
            !snap.alarm_events.is_empty(),
            "no alarm raised by a reckless operator: {:?}",
            snap.alarms
        );
    }

    #[test]
    fn extra_display_joins_the_running_system() {
        let mut simulator = CraneSimulator::new(quick_config(OperatorKind::Idle, 20)).unwrap();
        simulator.run_frames(20).unwrap();
        let before = simulator.computer_count();
        simulator.add_extra_display().unwrap();
        simulator.run_frames(60).unwrap();
        assert_eq!(simulator.computer_count(), before + 1);
        let report = simulator.report();
        // The new channel renders and reports a frame time like the others.
        assert_eq!(report.channel_frame_times.len(), 4);
        assert!(report.channel_frame_times[3] > Micros::ZERO);
    }

    #[test]
    fn cpu_speed_scales_modeled_cost_but_not_physics() {
        let base = quick_config(OperatorKind::Exam, 60);
        let mut reference = CraneSimulator::new(base).unwrap();
        let mut fast = CraneSimulator::new(SimulatorConfig { cpu_speed: 2.0, ..base }).unwrap();
        reference.run().unwrap();
        fast.run().unwrap();
        let slow_report = reference.report();
        let fast_report = fast.report();
        // Physics, scoring and telemetry are speed-independent...
        assert_eq!(slow_report.score, fast_report.score);
        assert_eq!(slow_report.passed, fast_report.passed);
        assert_eq!(slow_report.frames_run, fast_report.frames_run);
        assert_eq!(reference.snapshot().crane, fast.snapshot().crane);
        // ...while the modeled CPU cost halves on a 2x machine.
        assert!(fast.session_cost_hint() < reference.session_cost_hint());
        assert!(fast_report.sequential_fps > slow_report.sequential_fps);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = SimulatorConfig { display_channels: 0, ..SimulatorConfig::default() };
        assert!(CraneSimulator::new(bad).is_err());
    }
}
