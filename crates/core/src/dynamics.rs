//! The dynamics module (paper §3.6) as a Logical Process.
//!
//! Consumes operator inputs, advances the vehicle, crane rig, hook pendulum,
//! terrain following and collision detection, and publishes the crane and hook
//! state every frame. Collisions are announced as interactions so the audio
//! module can play the clang and the scenario module can deduct points.

use std::collections::BTreeMap;

use cod_cb::{CbApi, CbError, ClassRegistry, ObjectId};
use cod_cluster::LogicalProcess;
use cod_net::Micros;
use crane_physics::collision::response::resolve_contact;
use crane_physics::collision::CollisionWorld;
use crane_physics::terrain::FnTerrain;
use crane_physics::{
    CablePendulum, CraneControls, CraneRig, CraneVehicle, DriveControls, StabilityModel,
    VehicleParams,
};
use crane_scene::world::{training_ground_height, TrainingWorld};
use sim_math::Vec3;

use crate::fom::{CollisionMsg, CraneFom, CraneStateMsg, HookStateMsg, OperatorInputMsg};
use crate::telemetry::SharedTelemetry;

/// How close the empty hook must come to the cargo for the rigger to attach it.
const ATTACH_DISTANCE: f64 = 1.5;
/// Minimum simulated seconds between two scored collision events against the
/// same obstacle (debounces a scraping contact into one deduction).
const COLLISION_COOLDOWN: f64 = 2.0;

/// The dynamics model Logical Process.
pub struct DynamicsLp {
    registry: ClassRegistry,
    fom: CraneFom,
    telemetry: SharedTelemetry,

    vehicle: CraneVehicle,
    rig: CraneRig,
    pendulum: CablePendulum,
    collision: CollisionWorld,
    terrain: FnTerrain<fn(f64, f64) -> f64>,
    stability: StabilityModel,

    start_position: Vec3,
    start_heading: f64,
    cargo_rest_position: Vec3,
    cargo_mass: f64,
    cargo_attached: bool,

    input: OperatorInputMsg,
    crane_object: Option<ObjectId>,
    hook_object: Option<ObjectId>,
    collision_cooldowns: BTreeMap<String, f64>,
    elapsed: f64,
    previous_speed: f64,
    step_cost: Micros,
}

impl DynamicsLp {
    /// Creates the dynamics module for the standard training world.
    pub fn new(
        registry: ClassRegistry,
        fom: CraneFom,
        cargo_mass: f64,
        telemetry: SharedTelemetry,
    ) -> DynamicsLp {
        let world = TrainingWorld::build();
        let course = &world.course;
        let start = course.start_position;
        let vehicle = CraneVehicle::new(VehicleParams::default(), start, course.start_heading);
        let rig = CraneRig::default();
        let boom_tip = rig.boom_tip_world(&vehicle.chassis_transform());
        let pendulum = CablePendulum::new(boom_tip, rig.state.cable_length, 120.0);
        let cargo_rest_position = course.pickup_center + Vec3::new(0.0, 0.6, 0.0);
        let mut collision = CollisionWorld::from_obstacles(&world.obstacles);
        collision.build_grid(12.0);
        DynamicsLp {
            registry,
            fom,
            telemetry,
            vehicle,
            rig,
            pendulum,
            collision,
            terrain: FnTerrain::new(training_ground_height),
            stability: StabilityModel::default(),
            start_position: start,
            start_heading: course.start_heading,
            cargo_rest_position,
            cargo_mass,
            cargo_attached: false,
            input: OperatorInputMsg::default(),
            crane_object: None,
            hook_object: None,
            collision_cooldowns: BTreeMap::new(),
            elapsed: 0.0,
            previous_speed: 0.0,
            step_cost: Micros::from_millis(15),
        }
    }

    /// Whether the cargo is currently hanging from the hook.
    pub fn cargo_attached(&self) -> bool {
        self.cargo_attached
    }

    fn cargo_position(&self) -> Vec3 {
        if self.cargo_attached {
            self.pendulum.position - Vec3::new(0.0, 0.6, 0.0)
        } else {
            self.cargo_rest_position
        }
    }

    fn crane_state_msg(&self) -> CraneStateMsg {
        let chassis = self.vehicle.chassis_transform();
        let load = if self.cargo_attached { self.cargo_mass } else { 0.0 };
        let stability = self.stability.evaluate(load, self.rig.working_radius(), self.vehicle.roll);
        CraneStateMsg {
            chassis_position: self.vehicle.position,
            chassis_yaw: self.vehicle.heading,
            chassis_pitch: self.vehicle.pitch,
            chassis_roll: self.vehicle.roll,
            speed: self.vehicle.speed,
            engine_intensity: (self.input.throttle.abs() + self.vehicle.speed.abs() / 10.0)
                .clamp(0.1, 1.0),
            slew_angle: self.rig.state.slew_angle,
            luff_angle: self.rig.state.luff_angle,
            boom_length: self.rig.state.boom_length,
            cable_length: self.rig.state.cable_length,
            boom_tip: self.rig.boom_tip_world(&chassis),
            radius_utilization: self.rig.radius_utilization(),
            moment_utilization: stability.moment_utilization,
        }
    }

    fn hook_state_msg(&self, boom_tip: Vec3) -> HookStateMsg {
        HookStateMsg {
            hook_position: self.pendulum.position,
            cargo_position: self.cargo_position(),
            swing_angle: self.pendulum.swing_angle(boom_tip),
            cargo_attached: self.cargo_attached,
            cargo_mass: if self.cargo_attached { self.cargo_mass } else { 0.0 },
        }
    }
}

impl LogicalProcess for DynamicsLp {
    fn name(&self) -> &str {
        "dynamics"
    }

    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        cb.publish_object_class(self.fom.crane_state)?;
        cb.publish_object_class(self.fom.hook_state)?;
        cb.subscribe_object_class(self.fom.operator_input)?;
        self.crane_object = Some(cb.register_object(self.fom.crane_state)?);
        self.hook_object = Some(cb.register_object(self.fom.hook_state)?);
        Ok(())
    }

    fn step(&mut self, cb: &mut dyn CbApi, dt: f64) -> Result<(), CbError> {
        self.elapsed += dt;

        // 1. Pull the freshest operator input.
        for reflection in cb.reflections() {
            if reflection.class == self.fom.operator_input {
                self.input =
                    OperatorInputMsg::from_values(&self.registry, &self.fom, &reflection.values);
            }
        }

        // 2. Vehicle and crane rig kinematics.
        self.previous_speed = self.vehicle.speed;
        let drive = DriveControls {
            steering: self.input.steering,
            throttle: self.input.throttle,
            brake: self.input.brake,
            reverse: self.input.reverse,
        };
        self.vehicle.step(drive, &self.terrain, dt);
        let crane_controls = CraneControls {
            slew: self.input.slew,
            luff: self.input.luff,
            telescope: self.input.telescope,
            hoist: self.input.hoist,
        };
        self.rig.step(crane_controls, dt);

        // 3. Hook pendulum under the moving boom tip.
        let chassis = self.vehicle.chassis_transform();
        let boom_tip = self.rig.boom_tip_world(&chassis);
        self.pendulum.step(boom_tip, self.rig.state.cable_length, dt);

        // 4. Cargo pickup.
        if !self.cargo_attached
            && self.pendulum.position.distance(self.cargo_rest_position) < ATTACH_DISTANCE
        {
            self.cargo_attached = true;
            self.pendulum.attach_cargo(self.cargo_mass);
        }

        // 5. Multi-level collision detection for the hook / carried cargo.
        for cooldown in self.collision_cooldowns.values_mut() {
            *cooldown -= dt;
        }
        let probe_radius = if self.cargo_attached { 1.1 } else { 0.5 };
        let contacts = self.collision.query_sphere(self.pendulum.position, probe_radius);
        for contact in contacts {
            let resolution =
                resolve_contact(self.pendulum.position, self.pendulum.velocity, &contact, 0.3);
            self.pendulum.position = resolution.position;
            self.pendulum.velocity = resolution.velocity;
            let ready =
                self.collision_cooldowns.get(&contact.name).map(|c| *c <= 0.0).unwrap_or(true);
            if ready && resolution.impulse > 0.05 {
                self.collision_cooldowns.insert(contact.name.clone(), COLLISION_COOLDOWN);
                let msg = CollisionMsg {
                    location: contact.point,
                    impulse: resolution.impulse,
                    obstacle: contact.name.clone(),
                    scored: contact.scored,
                };
                cb.send_interaction(self.fom.collision, msg.to_values(&self.registry, &self.fom))?;
            }
        }

        // 6. Publish the new state.
        let crane_msg = self.crane_state_msg();
        let hook_msg = self.hook_state_msg(boom_tip);
        cb.update_attributes(
            self.crane_object.expect("init registered the crane object"),
            crane_msg.to_values(&self.registry, &self.fom),
        )?;
        cb.update_attributes(
            self.hook_object.expect("init registered the hook object"),
            hook_msg.to_values(&self.registry, &self.fom),
        )?;

        // 7. Telemetry.
        let swing = self.pendulum.swing_amplitude(boom_tip);
        self.telemetry.update(|t| {
            t.crane = crane_msg;
            t.hook = hook_msg;
            t.swing_history.push(swing);
            t.crane_track.push([self.vehicle.position.x, self.vehicle.position.z]);
        });
        Ok(())
    }

    fn last_step_cost(&self) -> Micros {
        self.step_cost
    }

    fn begin_session(&mut self, _cb: &mut dyn CbApi, _seed: u64) -> Result<(), CbError> {
        // Rebuild the moving bodies exactly as the constructor does; the
        // static assets (collision world, terrain, registered objects) are the
        // reusable part and stay untouched.
        self.vehicle =
            CraneVehicle::new(VehicleParams::default(), self.start_position, self.start_heading);
        self.rig = CraneRig::default();
        let boom_tip = self.rig.boom_tip_world(&self.vehicle.chassis_transform());
        self.pendulum = CablePendulum::new(boom_tip, self.rig.state.cable_length, 120.0);
        self.cargo_attached = false;
        self.input = OperatorInputMsg::default();
        self.collision_cooldowns.clear();
        self.elapsed = 0.0;
        self.previous_speed = 0.0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::CraneFom;
    use cod_cluster::{Cluster, ClusterConfig};

    fn single_pc_cluster() -> (Cluster, ClassRegistry, CraneFom, SharedTelemetry) {
        let (registry, fom) = CraneFom::standard();
        let cluster = Cluster::new(ClusterConfig::default(), registry.clone());
        (cluster, registry, fom, SharedTelemetry::new())
    }

    #[test]
    fn dynamics_publishes_state_every_frame() {
        let (mut cluster, registry, fom, telemetry) = single_pc_cluster();
        let pc = cluster.add_computer("dynamics-pc");
        cluster
            .add_lp(pc, Box::new(DynamicsLp::new(registry, fom, 1_000.0, telemetry.clone())))
            .unwrap();
        cluster.initialize().unwrap();
        cluster.run_frames(30).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.crane_track.len(), 30);
        assert!(snap.crane.cable_length > 0.0);
        assert!(snap.hook.hook_position.y > 0.0);
        assert!(!snap.hook.cargo_attached, "nothing should attach while idle at the start");
    }

    #[test]
    fn hook_starts_near_the_boom_tip_rest_position() {
        let (registry, fom) = CraneFom::standard();
        let lp = DynamicsLp::new(registry, fom, 500.0, SharedTelemetry::new());
        let chassis = lp.vehicle.chassis_transform();
        let tip = lp.rig.boom_tip_world(&chassis);
        assert!(lp.pendulum.position.y < tip.y);
        assert!((tip.horizontal() - lp.pendulum.position.horizontal()).length() < 0.5);
        assert!(!lp.cargo_attached());
    }

    #[test]
    fn cargo_position_tracks_the_hook_once_attached() {
        let (registry, fom) = CraneFom::standard();
        let mut lp = DynamicsLp::new(registry, fom, 800.0, SharedTelemetry::new());
        assert_eq!(lp.cargo_position(), lp.cargo_rest_position);
        lp.cargo_attached = true;
        lp.pendulum.position = Vec3::new(1.0, 4.0, 2.0);
        assert!(lp.cargo_position().distance(Vec3::new(1.0, 3.4, 2.0)) < 1e-9);
    }
}
