//! Multi-level collision detection (paper §3.6, after Moore & Wilhelms).
//!
//! "When the mobile crane and its lift hook are moved in the virtual
//! environment, the dynamic computation uses the multi-level collision
//! detection algorithm to effectively perceive the collision if there is any."
//!
//! The hierarchy has three levels, each cheaper than the next and each pruning
//! work for the one below:
//!
//! 1. **Bounding sphere** — one distance comparison per obstacle.
//! 2. **Axis-aligned box** — overlap test against the obstacle's AABB.
//! 3. **Exact** — closest-point computation producing the contact point,
//!    normal and penetration depth.
//!
//! An optional uniform [`broad::SpatialGrid`] prunes the level-1 candidate set
//! for large obstacle counts; the collision benchmark (experiment E7) compares
//! the hierarchy against the naive all-exact baseline.

pub mod broad;
pub mod response;

use serde::{Deserialize, Serialize};
use sim_math::Vec3;

use crane_scene::bounds::Aabb;
use crane_scene::world::Obstacle;

use self::broad::SpatialGrid;

/// Which level of the hierarchy confirmed a contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionLevel {
    /// Bounding-sphere overlap only (used for statistics, never reported as a contact).
    BoundingSphere,
    /// AABB overlap only.
    Aabb,
    /// Exact narrow-phase contact.
    Exact,
}

/// A confirmed contact against a static obstacle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contact {
    /// Index of the obstacle within the collision world.
    pub obstacle: usize,
    /// Obstacle name.
    pub name: String,
    /// Contact point on the obstacle surface (world space).
    pub point: Vec3,
    /// Contact normal pointing from the obstacle toward the query shape.
    pub normal: Vec3,
    /// Penetration depth in metres.
    pub depth: f64,
    /// Whether hitting this obstacle deducts exam points.
    pub scored: bool,
}

/// Counters describing how much work each level performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollisionStats {
    /// Level-1 bounding-sphere tests executed.
    pub sphere_tests: u64,
    /// Level-2 AABB tests executed.
    pub aabb_tests: u64,
    /// Level-3 exact tests executed.
    pub exact_tests: u64,
    /// Contacts reported.
    pub contacts: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StaticShape {
    name: String,
    aabb: Aabb,
    sphere_center: Vec3,
    sphere_radius: f64,
    scored: bool,
}

/// The set of static obstacles collision queries run against.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CollisionWorld {
    statics: Vec<StaticShape>,
    grid: Option<SpatialGrid>,
    stats: CollisionStats,
}

impl CollisionWorld {
    /// Creates an empty collision world.
    pub fn new() -> CollisionWorld {
        CollisionWorld::default()
    }

    /// Builds a collision world from the scene's obstacle list.
    pub fn from_obstacles(obstacles: &[Obstacle]) -> CollisionWorld {
        let mut world = CollisionWorld::new();
        for o in obstacles {
            world.add_static(&o.name, o.aabb, o.scored);
        }
        world
    }

    /// Adds a static obstacle described by its AABB. Returns its index.
    pub fn add_static(&mut self, name: &str, aabb: Aabb, scored: bool) -> usize {
        self.statics.push(StaticShape {
            name: name.to_owned(),
            aabb,
            sphere_center: aabb.center(),
            sphere_radius: aabb.bounding_radius(),
            scored,
        });
        self.grid = None; // the acceleration structure is stale
        self.statics.len() - 1
    }

    /// Number of obstacles.
    pub fn len(&self) -> usize {
        self.statics.len()
    }

    /// Whether the world has no obstacles.
    pub fn is_empty(&self) -> bool {
        self.statics.is_empty()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> CollisionStats {
        self.stats
    }

    /// Resets the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = CollisionStats::default();
    }

    /// Builds a uniform grid over the obstacles to prune level-1 candidates.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive.
    pub fn build_grid(&mut self, cell_size: f64) {
        self.grid = Some(SpatialGrid::build(
            cell_size,
            self.statics.iter().map(|s| s.aabb).collect::<Vec<_>>().as_slice(),
        ));
    }

    fn candidates(&self, query: &Aabb) -> Vec<usize> {
        match &self.grid {
            Some(grid) => grid.candidates(query),
            None => (0..self.statics.len()).collect(),
        }
    }

    /// Multi-level query of a sphere (the lift hook or the hanging cargo)
    /// against every obstacle. Returns all confirmed contacts.
    pub fn query_sphere(&mut self, center: Vec3, radius: f64) -> Vec<Contact> {
        let query_aabb = Aabb::from_center_half_extents(center, Vec3::splat(radius));
        let mut contacts = Vec::new();
        for index in self.candidates(&query_aabb) {
            let shape = &self.statics[index];
            // Level 1: bounding spheres.
            self.stats.sphere_tests += 1;
            let center_distance = center.distance(shape.sphere_center);
            if center_distance > radius + shape.sphere_radius {
                continue;
            }
            // Level 2: AABB overlap.
            self.stats.aabb_tests += 1;
            if !shape.aabb.intersects(&query_aabb) {
                continue;
            }
            // Level 3: exact sphere-vs-box.
            self.stats.exact_tests += 1;
            if let Some(contact) = sphere_box_contact(center, radius, &shape.aabb) {
                self.stats.contacts += 1;
                contacts.push(Contact {
                    obstacle: index,
                    name: shape.name.clone(),
                    point: contact.0,
                    normal: contact.1,
                    depth: contact.2,
                    scored: shape.scored,
                });
            }
        }
        contacts
    }

    /// Naive baseline: runs the exact test against every obstacle without any
    /// pruning. Produces the same contacts as [`CollisionWorld::query_sphere`];
    /// exists so the E7 benchmark can quantify what the hierarchy saves.
    pub fn query_sphere_naive(&mut self, center: Vec3, radius: f64) -> Vec<Contact> {
        let mut contacts = Vec::new();
        for (index, shape) in self.statics.iter().enumerate() {
            self.stats.exact_tests += 1;
            if let Some(contact) = sphere_box_contact(center, radius, &shape.aabb) {
                self.stats.contacts += 1;
                contacts.push(Contact {
                    obstacle: index,
                    name: shape.name.clone(),
                    point: contact.0,
                    normal: contact.1,
                    depth: contact.2,
                    scored: shape.scored,
                });
            }
        }
        contacts
    }

    /// Multi-level query of a moving box (the carried cargo) given by its AABB.
    pub fn query_aabb(&mut self, query: Aabb) -> Vec<Contact> {
        let query_center = query.center();
        let query_radius = query.bounding_radius();
        let mut contacts = Vec::new();
        for index in self.candidates(&query) {
            let shape = &self.statics[index];
            self.stats.sphere_tests += 1;
            if query_center.distance(shape.sphere_center) > query_radius + shape.sphere_radius {
                continue;
            }
            self.stats.aabb_tests += 1;
            if !shape.aabb.intersects(&query) {
                continue;
            }
            self.stats.exact_tests += 1;
            if let Some((point, normal, depth)) = box_box_contact(&query, &shape.aabb) {
                self.stats.contacts += 1;
                contacts.push(Contact {
                    obstacle: index,
                    name: shape.name.clone(),
                    point,
                    normal,
                    depth,
                    scored: shape.scored,
                });
            }
        }
        contacts
    }
}

/// Exact sphere-versus-box test. Returns `(point, normal, depth)` on contact.
fn sphere_box_contact(center: Vec3, radius: f64, aabb: &Aabb) -> Option<(Vec3, Vec3, f64)> {
    let closest = aabb.closest_point(center);
    let to_center = center - closest;
    let distance = to_center.length();
    if distance > radius {
        return None;
    }
    if distance > 1e-9 {
        Some((closest, to_center / distance, radius - distance))
    } else {
        // Sphere centre inside the box: push out along the smallest overlap axis.
        let half = aabb.half_extents();
        let local = center - aabb.center();
        let overlaps = [
            (half.x - local.x.abs(), Vec3::new(local.x.signum(), 0.0, 0.0)),
            (half.y - local.y.abs(), Vec3::new(0.0, local.y.signum(), 0.0)),
            (half.z - local.z.abs(), Vec3::new(0.0, 0.0, local.z.signum())),
        ];
        let (depth, normal) = overlaps
            .into_iter()
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
            .expect("three axes");
        Some((center, normal.normalized_or(Vec3::unit_y()), depth + radius))
    }
}

/// Exact box-versus-box test. Returns `(point, normal, depth)` on contact.
fn box_box_contact(a: &Aabb, b: &Aabb) -> Option<(Vec3, Vec3, f64)> {
    if !a.intersects(b) {
        return None;
    }
    let delta = a.center() - b.center();
    let overlap = a.half_extents() + b.half_extents()
        - Vec3::new(delta.x.abs(), delta.y.abs(), delta.z.abs());
    let axes = [
        (overlap.x, Vec3::new(delta.x.signum(), 0.0, 0.0)),
        (overlap.y, Vec3::new(0.0, delta.y.signum(), 0.0)),
        (overlap.z, Vec3::new(0.0, 0.0, delta.z.signum())),
    ];
    let (depth, normal) =
        axes.into_iter().min_by(|x, y| x.0.partial_cmp(&y.0).expect("finite")).expect("three axes");
    let point = b.closest_point(a.center());
    Some((point, normal.normalized_or(Vec3::unit_y()), depth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bar_world() -> CollisionWorld {
        let mut w = CollisionWorld::new();
        w.add_static(
            "bar-0",
            Aabb::new(Vec3::new(-5.0, 1.8, -0.2), Vec3::new(5.0, 2.2, 0.2)),
            true,
        );
        w.add_static(
            "building",
            Aabb::new(Vec3::new(20.0, 0.0, 20.0), Vec3::new(30.0, 10.0, 30.0)),
            false,
        );
        w
    }

    #[test]
    fn sphere_hits_the_bar_and_reports_scored_contact() {
        let mut w = bar_world();
        let contacts = w.query_sphere(Vec3::new(0.0, 2.5, 0.0), 0.5);
        assert_eq!(contacts.len(), 1);
        let c = &contacts[0];
        assert_eq!(c.name, "bar-0");
        assert!(c.scored);
        assert!(c.depth > 0.0 && c.depth <= 0.5 + 0.4);
        assert!(c.normal.y > 0.9, "hook above the bar should be pushed up");
    }

    #[test]
    fn distant_sphere_is_pruned_at_level_one() {
        let mut w = bar_world();
        let contacts = w.query_sphere(Vec3::new(100.0, 50.0, 100.0), 0.5);
        assert!(contacts.is_empty());
        let stats = w.stats();
        assert_eq!(stats.sphere_tests, 2);
        assert_eq!(stats.aabb_tests, 0, "far objects must be rejected by the sphere level");
        assert_eq!(stats.exact_tests, 0);
    }

    #[test]
    fn hierarchy_and_naive_agree_on_contacts() {
        let mut w = bar_world();
        for p in [
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(4.9, 2.0, 0.1),
            Vec3::new(25.0, 5.0, 25.0),
            Vec3::new(-8.0, 2.0, 0.0),
            Vec3::new(0.0, 10.0, 0.0),
        ] {
            let fast: Vec<usize> = w.query_sphere(p, 0.6).iter().map(|c| c.obstacle).collect();
            let naive: Vec<usize> =
                w.query_sphere_naive(p, 0.6).iter().map(|c| c.obstacle).collect();
            assert_eq!(fast, naive, "disagreement at {p:?}");
        }
    }

    #[test]
    fn hierarchy_does_fewer_exact_tests_than_naive() {
        let mut world = CollisionWorld::new();
        for i in 0..500 {
            let x = (i % 25) as f64 * 8.0;
            let z = (i / 25) as f64 * 8.0;
            world.add_static(
                &format!("obstacle-{i}"),
                Aabb::from_center_half_extents(Vec3::new(x, 1.0, z), Vec3::splat(1.0)),
                false,
            );
        }
        world.reset_stats();
        world.query_sphere(Vec3::new(40.0, 1.0, 40.0), 1.0);
        let hierarchical = world.stats().exact_tests;
        world.reset_stats();
        world.query_sphere_naive(Vec3::new(40.0, 1.0, 40.0), 1.0);
        let naive = world.stats().exact_tests;
        assert!(hierarchical * 10 < naive, "hierarchy {hierarchical} vs naive {naive}");
    }

    #[test]
    fn grid_pruning_matches_full_scan() {
        let mut with_grid = CollisionWorld::new();
        let mut without = CollisionWorld::new();
        for i in 0..200 {
            let x = (i % 20) as f64 * 5.0;
            let z = (i / 20) as f64 * 5.0;
            let aabb = Aabb::from_center_half_extents(Vec3::new(x, 1.0, z), Vec3::splat(0.8));
            with_grid.add_static(&format!("o{i}"), aabb, false);
            without.add_static(&format!("o{i}"), aabb, false);
        }
        with_grid.build_grid(10.0);
        for p in
            [Vec3::new(12.0, 1.0, 17.0), Vec3::new(50.0, 1.0, 22.0), Vec3::new(-5.0, 1.0, -5.0)]
        {
            let a: Vec<usize> = with_grid.query_sphere(p, 1.2).iter().map(|c| c.obstacle).collect();
            let b: Vec<usize> = without.query_sphere(p, 1.2).iter().map(|c| c.obstacle).collect();
            assert_eq!(a, b);
        }
        assert!(with_grid.stats().sphere_tests < without.stats().sphere_tests);
    }

    #[test]
    fn box_query_detects_cargo_bar_overlap() {
        let mut w = bar_world();
        let cargo =
            Aabb::from_center_half_extents(Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.8, 0.6, 0.8));
        let contacts = w.query_aabb(cargo);
        assert_eq!(contacts.len(), 1);
        assert!(contacts[0].depth > 0.0);
        let clear = w
            .query_aabb(Aabb::from_center_half_extents(Vec3::new(0.0, 8.0, 0.0), Vec3::splat(0.5)));
        assert!(clear.is_empty());
    }

    #[test]
    fn deep_penetration_is_handled() {
        let mut w = CollisionWorld::new();
        w.add_static("block", Aabb::from_center_half_extents(Vec3::ZERO, Vec3::splat(2.0)), false);
        let contacts = w.query_sphere(Vec3::new(0.1, 0.0, 0.0), 0.5);
        assert_eq!(contacts.len(), 1);
        assert!(contacts[0].depth >= 0.5);
        assert!(contacts[0].normal.length() > 0.99);
    }

    #[test]
    fn world_from_scene_obstacles() {
        let training = crane_scene::world::TrainingWorld::build();
        let mut w = CollisionWorld::from_obstacles(&training.obstacles);
        assert_eq!(w.len(), training.obstacles.len());
        // A sphere at a bar of the course must collide.
        let bar = &training.course.bars[0];
        let contacts = w.query_sphere(bar.center(), 0.5);
        assert!(contacts.iter().any(|c| c.scored));
    }

    proptest! {
        #[test]
        fn prop_hierarchy_never_misses_a_naive_contact(
            px in -20.0..20.0f64, py in -5.0..10.0f64, pz in -20.0..20.0f64, r in 0.1..3.0f64) {
            let mut w = bar_world();
            let p = Vec3::new(px, py, pz);
            let fast: Vec<usize> = w.query_sphere(p, r).iter().map(|c| c.obstacle).collect();
            let naive: Vec<usize> = w.query_sphere_naive(p, r).iter().map(|c| c.obstacle).collect();
            prop_assert_eq!(fast, naive);
        }
    }
}
