//! Collision response: positional correction and velocity reflection.
//!
//! The dynamics module "first animates the collision event and then sends
//! messages to the sound module and the visual display module" (paper §3.6).
//! The animation part is this: push the colliding body out of the obstacle and
//! reflect the velocity component along the contact normal.

use sim_math::Vec3;

use super::Contact;

/// Result of resolving one contact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resolution {
    /// Corrected position.
    pub position: Vec3,
    /// Corrected velocity.
    pub velocity: Vec3,
    /// Magnitude of the normal impulse per unit mass (used to scale the
    /// collision sound volume).
    pub impulse: f64,
}

/// Resolves a contact for a point body at `position` with `velocity`.
///
/// `restitution` in `[0, 1]` controls how much of the normal velocity is
/// reflected (0 = dead stop, 1 = perfect bounce).
///
/// # Panics
///
/// Panics if `restitution` is outside `[0, 1]`.
pub fn resolve_contact(
    position: Vec3,
    velocity: Vec3,
    contact: &Contact,
    restitution: f64,
) -> Resolution {
    assert!((0.0..=1.0).contains(&restitution), "restitution must be within [0, 1]");
    let normal = contact.normal.normalized_or(Vec3::unit_y());
    let corrected_position = position + normal * contact.depth;
    let normal_speed = velocity.dot(normal);
    if normal_speed >= 0.0 {
        // Already separating: only fix the penetration.
        return Resolution { position: corrected_position, velocity, impulse: 0.0 };
    }
    let impulse = -(1.0 + restitution) * normal_speed;
    Resolution { position: corrected_position, velocity: velocity + normal * impulse, impulse }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contact(normal: Vec3, depth: f64) -> Contact {
        Contact {
            obstacle: 0,
            name: "bar-0".into(),
            point: Vec3::ZERO,
            normal,
            depth,
            scored: true,
        }
    }

    #[test]
    fn penetration_is_corrected_along_the_normal() {
        let c = contact(Vec3::unit_y(), 0.3);
        let r = resolve_contact(Vec3::new(0.0, 1.0, 0.0), Vec3::ZERO, &c, 0.5);
        assert!((r.position.y - 1.3).abs() < 1e-12);
        assert_eq!(r.impulse, 0.0);
    }

    #[test]
    fn approaching_velocity_is_reflected() {
        let c = contact(Vec3::unit_y(), 0.0);
        let r = resolve_contact(Vec3::ZERO, Vec3::new(1.0, -2.0, 0.0), &c, 0.5);
        assert!((r.velocity.y - 1.0).abs() < 1e-12, "(-2) reflected with e=0.5 gives +1");
        assert!((r.velocity.x - 1.0).abs() < 1e-12, "tangential velocity unchanged");
        assert!(r.impulse > 0.0);
    }

    #[test]
    fn separating_velocity_is_untouched() {
        let c = contact(Vec3::unit_y(), 0.1);
        let v = Vec3::new(0.0, 3.0, 0.0);
        let r = resolve_contact(Vec3::ZERO, v, &c, 1.0);
        assert_eq!(r.velocity, v);
    }

    #[test]
    fn zero_restitution_kills_normal_velocity() {
        let c = contact(Vec3::unit_x(), 0.0);
        let r = resolve_contact(Vec3::ZERO, Vec3::new(-4.0, 0.5, 0.0), &c, 0.0);
        assert!(r.velocity.x.abs() < 1e-12);
        assert!((r.velocity.y - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_restitution_rejected() {
        let c = contact(Vec3::unit_y(), 0.0);
        let _ = resolve_contact(Vec3::ZERO, Vec3::ZERO, &c, 1.5);
    }
}
