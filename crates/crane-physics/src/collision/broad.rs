//! Uniform-grid broad phase over the ground plane.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crane_scene::bounds::Aabb;

/// A uniform grid over the XZ plane mapping cells to obstacle indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialGrid {
    cell_size: f64,
    cells: BTreeMap<(i64, i64), Vec<usize>>,
}

impl SpatialGrid {
    /// Builds a grid from the obstacle bounds.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive.
    pub fn build(cell_size: f64, bounds: &[Aabb]) -> SpatialGrid {
        assert!(cell_size > 0.0, "cell size must be positive");
        let mut cells: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
        for (index, aabb) in bounds.iter().enumerate() {
            if aabb.is_empty() {
                continue;
            }
            for cell in Self::cells_overlapping(cell_size, aabb) {
                cells.entry(cell).or_default().push(index);
            }
        }
        SpatialGrid { cell_size, cells }
    }

    fn cells_overlapping(cell_size: f64, aabb: &Aabb) -> Vec<(i64, i64)> {
        let min_x = (aabb.min.x / cell_size).floor() as i64;
        let max_x = (aabb.max.x / cell_size).floor() as i64;
        let min_z = (aabb.min.z / cell_size).floor() as i64;
        let max_z = (aabb.max.z / cell_size).floor() as i64;
        let mut cells = Vec::new();
        for cx in min_x..=max_x {
            for cz in min_z..=max_z {
                cells.push((cx, cz));
            }
        }
        cells
    }

    /// Obstacle indices whose bounds may overlap the query box (sorted, deduplicated).
    pub fn candidates(&self, query: &Aabb) -> Vec<usize> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for cell in Self::cells_overlapping(self.cell_size, query) {
            if let Some(indices) = self.cells.get(&cell) {
                out.extend_from_slice(indices);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_math::Vec3;

    fn grid_of_blocks() -> (SpatialGrid, Vec<Aabb>) {
        let bounds: Vec<Aabb> = (0..100)
            .map(|i| {
                let x = (i % 10) as f64 * 10.0;
                let z = (i / 10) as f64 * 10.0;
                Aabb::from_center_half_extents(Vec3::new(x, 1.0, z), Vec3::splat(1.0))
            })
            .collect();
        (SpatialGrid::build(10.0, &bounds), bounds)
    }

    #[test]
    fn candidates_contain_every_true_overlap() {
        let (grid, bounds) = grid_of_blocks();
        let query = Aabb::from_center_half_extents(Vec3::new(25.0, 1.0, 35.0), Vec3::splat(8.0));
        let candidates = grid.candidates(&query);
        for (i, b) in bounds.iter().enumerate() {
            if b.intersects(&query) {
                assert!(candidates.contains(&i), "missed true overlap {i}");
            }
        }
        assert!(candidates.len() < bounds.len(), "grid did not prune anything");
    }

    #[test]
    fn empty_query_yields_no_candidates() {
        let (grid, _) = grid_of_blocks();
        assert!(grid.candidates(&Aabb::empty()).is_empty());
        assert!(grid.occupied_cells() > 0);
    }

    #[test]
    fn large_objects_span_multiple_cells() {
        let big =
            Aabb::from_center_half_extents(Vec3::new(0.0, 0.0, 0.0), Vec3::new(25.0, 1.0, 25.0));
        let grid = SpatialGrid::build(10.0, &[big]);
        assert!(grid.occupied_cells() >= 25);
        let probe = Aabb::from_center_half_extents(Vec3::new(20.0, 0.0, -20.0), Vec3::splat(1.0));
        assert_eq!(grid.candidates(&probe), vec![0]);
    }

    #[test]
    #[should_panic]
    fn zero_cell_size_rejected() {
        let _ = SpatialGrid::build(0.0, &[]);
    }
}
