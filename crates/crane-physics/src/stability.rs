//! Tip-over stability and load-moment computation.
//!
//! Driving a mobile crane "is also a dangerous process" because "its center of
//! gravity is higher than that of other types of vehicle" (paper §3.6), and
//! overloading the boom at a long radius is the classic cause of tip-over
//! accidents the training device exists to prevent. This module computes the
//! load-moment utilization and a tip-over verdict; the instructor monitor turns
//! them into the alarm lights of Figure 5.

use serde::{Deserialize, Serialize};

use crate::GRAVITY;

/// Static properties of the crane used for stability computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityModel {
    /// Mass of the crane itself, in kilograms.
    pub crane_mass: f64,
    /// Height of the crane's own centre of gravity above ground, in metres.
    pub cg_height: f64,
    /// Half-width of the support base (outriggers or wheel track), in metres.
    pub support_half_width: f64,
    /// Rated load moment in newton-metres (manufacturer limit).
    pub rated_moment: f64,
}

impl Default for StabilityModel {
    fn default() -> Self {
        StabilityModel {
            crane_mass: 25_000.0,
            cg_height: 1.6,
            support_half_width: 2.4,
            rated_moment: 650_000.0,
        }
    }
}

/// The stability verdict for one instant of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Overturning moment produced by the suspended load, in newton-metres.
    pub load_moment: f64,
    /// Fraction of the rated moment in use (1.0 = at the limit).
    pub moment_utilization: f64,
    /// Restoring moment of the crane's own weight about the tipping edge.
    pub restoring_moment: f64,
    /// Ratio of overturning to restoring moment (>= 1.0 means tipping).
    pub tipping_ratio: f64,
    /// Whether the overload alarm should sound (>= 90 % of the rated moment).
    pub overload_alarm: bool,
    /// Whether the crane is actually tipping over.
    pub tipping: bool,
}

impl StabilityModel {
    /// Evaluates stability for a suspended `load_mass` (kg) at horizontal
    /// `working_radius` (m) while the chassis is rolled by `roll` radians
    /// (terrain side slope).
    pub fn evaluate(&self, load_mass: f64, working_radius: f64, roll: f64) -> StabilityReport {
        let load_moment = load_mass * GRAVITY * working_radius.max(0.0);
        let moment_utilization =
            if self.rated_moment > 0.0 { load_moment / self.rated_moment } else { f64::INFINITY };

        // Tipping about the edge of the support base. A side slope both shifts
        // the crane's own CG toward the edge and adds to the load's lever arm.
        let cg_shift = self.cg_height * roll.sin().abs();
        let effective_arm = (self.support_half_width - cg_shift).max(0.0);
        let restoring_moment = self.crane_mass * GRAVITY * effective_arm;
        let overturning =
            load_mass * GRAVITY * ((working_radius - self.support_half_width).max(0.0) + cg_shift);
        let tipping_ratio =
            if restoring_moment > 0.0 { overturning / restoring_moment } else { f64::INFINITY };

        StabilityReport {
            load_moment,
            moment_utilization,
            restoring_moment,
            tipping_ratio,
            overload_alarm: moment_utilization >= 0.9,
            tipping: tipping_ratio >= 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unloaded_crane_is_stable() {
        let report = StabilityModel::default().evaluate(0.0, 10.0, 0.0);
        assert_eq!(report.load_moment, 0.0);
        assert!(!report.overload_alarm);
        assert!(!report.tipping);
        assert_eq!(report.tipping_ratio, 0.0);
    }

    #[test]
    fn utilization_grows_with_mass_and_radius() {
        let m = StabilityModel::default();
        let light_short = m.evaluate(1_000.0, 5.0, 0.0);
        let heavy_short = m.evaluate(5_000.0, 5.0, 0.0);
        let heavy_long = m.evaluate(5_000.0, 15.0, 0.0);
        assert!(heavy_short.moment_utilization > light_short.moment_utilization);
        assert!(heavy_long.moment_utilization > heavy_short.moment_utilization);
    }

    #[test]
    fn overload_alarm_at_ninety_percent() {
        let m = StabilityModel::default();
        // 90 % of 650 kNm at 10 m radius needs ~5.96 t.
        assert!(!m.evaluate(5_500.0, 10.0, 0.0).overload_alarm);
        assert!(m.evaluate(6_100.0, 10.0, 0.0).overload_alarm);
    }

    #[test]
    fn extreme_load_at_long_radius_tips_the_crane() {
        let m = StabilityModel::default();
        let safe = m.evaluate(3_000.0, 8.0, 0.0);
        assert!(!safe.tipping);
        let unsafe_lift = m.evaluate(20_000.0, 20.0, 0.0);
        assert!(unsafe_lift.tipping, "ratio = {}", unsafe_lift.tipping_ratio);
    }

    #[test]
    fn side_slope_reduces_the_margin() {
        let m = StabilityModel::default();
        let flat = m.evaluate(6_000.0, 14.0, 0.0);
        let sloped = m.evaluate(6_000.0, 14.0, 12f64.to_radians());
        assert!(sloped.tipping_ratio > flat.tipping_ratio);
        assert!(sloped.restoring_moment < flat.restoring_moment);
    }

    proptest! {
        #[test]
        fn prop_reports_are_finite_and_monotone_in_mass(mass in 0.0..30_000.0f64,
                                                        radius in 0.0..25.0f64,
                                                        roll in -0.3..0.3f64) {
            let m = StabilityModel::default();
            let r = m.evaluate(mass, radius, roll);
            prop_assert!(r.load_moment.is_finite());
            prop_assert!(r.tipping_ratio.is_finite());
            let heavier = m.evaluate(mass + 1_000.0, radius, roll);
            prop_assert!(heavier.moment_utilization >= r.moment_utilization);
            prop_assert!(heavier.tipping_ratio >= r.tipping_ratio - 1e-12);
        }
    }
}
