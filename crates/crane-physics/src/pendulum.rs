//! Inertia oscillation of the lift hook (paper §3.6).
//!
//! "When the derrick boom is moving, the dynamic module computes the inertia of
//! the lift hook acts on the cable based upon the moving direction, speed and
//! weight of the cargo. When the derrick boom is stopped from moving, the same
//! computation of the inertia will be repeated and the cable is oscillated
//! until a full stop."
//!
//! The hook (plus any attached cargo) is modelled as a point mass hanging from
//! the boom tip on a stiff, damped cable constraint and integrated with small
//! fixed substeps. Moving the suspension point (the boom tip) injects inertia
//! into the bob; aerodynamic and structural damping make the oscillation decay
//! to a full stop once the boom is stationary.

use serde::{Deserialize, Serialize};
use sim_math::Vec3;

use crate::GRAVITY;

/// The hook-and-cargo pendulum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CablePendulum {
    /// World position of the bob (hook + cargo).
    pub position: Vec3,
    /// World velocity of the bob.
    pub velocity: Vec3,
    /// Mass of the hook block alone, in kilograms.
    pub hook_mass: f64,
    /// Mass of the attached cargo, in kilograms (zero when nothing is hooked).
    pub cargo_mass: f64,
    /// Structural damping ratio of the cable (dimensionless, per unit mass).
    pub damping: f64,
    /// Cable stiffness (N/m per kilogram of suspended mass).
    pub stiffness: f64,
    /// Fixed substep used internally, in seconds.
    pub substep: f64,
}

impl CablePendulum {
    /// Creates a pendulum at rest hanging `cable_length` metres below `suspension`.
    ///
    /// # Panics
    ///
    /// Panics if `hook_mass` is not positive or `cable_length` is negative.
    pub fn new(suspension: Vec3, cable_length: f64, hook_mass: f64) -> CablePendulum {
        assert!(hook_mass > 0.0, "hook mass must be positive");
        assert!(cable_length >= 0.0, "cable length cannot be negative");
        CablePendulum {
            position: suspension - Vec3::new(0.0, cable_length, 0.0),
            velocity: Vec3::ZERO,
            hook_mass,
            cargo_mass: 0.0,
            damping: 0.55,
            stiffness: 400.0,
            substep: 1.0 / 240.0,
        }
    }

    /// Total suspended mass (hook plus cargo).
    pub fn total_mass(&self) -> f64 {
        self.hook_mass + self.cargo_mass
    }

    /// Attaches a cargo of `mass` kilograms to the hook.
    ///
    /// # Panics
    ///
    /// Panics if `mass` is negative.
    pub fn attach_cargo(&mut self, mass: f64) {
        assert!(mass >= 0.0, "cargo mass cannot be negative");
        self.cargo_mass = mass;
    }

    /// Releases the cargo.
    pub fn release_cargo(&mut self) {
        self.cargo_mass = 0.0;
    }

    /// Advances the pendulum by `dt` seconds with the suspension point (boom
    /// tip) at `suspension` and the commanded cable length `cable_length`.
    pub fn step(&mut self, suspension: Vec3, cable_length: f64, dt: f64) {
        CablePendulum::step_batch(&mut [(self, suspension, cable_length)], dt);
    }

    /// Advances every lane by `dt` seconds in lockstep: one substep sweep
    /// across all pendulums, then the next substep. Each lane is
    /// `(pendulum, suspension, cable_length)`. Per lane this performs exactly
    /// the arithmetic of [`CablePendulum::step`] in exactly its order (the
    /// substep schedule depends only on `dt` and the shared `substep`), so a
    /// batch of N lanes is bit-identical to N scalar steps.
    ///
    /// # Panics
    ///
    /// Panics if the lanes do not all share the same `substep` — lockstep
    /// needs a common substep schedule.
    pub fn step_batch(lanes: &mut [(&mut CablePendulum, Vec3, f64)], dt: f64) {
        debug_assert!(dt >= 0.0);
        let Some(substep) = lanes.first().map(|(p, _, _)| p.substep) else {
            return;
        };
        assert!(
            lanes.iter().all(|(p, _, _)| p.substep == substep),
            "lockstep pendulum lanes must share a substep"
        );
        let mut remaining = dt;
        while remaining > 1e-12 {
            let h = remaining.min(substep);
            for (pendulum, suspension, cable_length) in lanes.iter_mut() {
                pendulum.substep_once(*suspension, *cable_length, h);
            }
            remaining -= h;
        }
    }

    fn substep_once(&mut self, suspension: Vec3, cable_length: f64, h: f64) {
        let to_bob = self.position - suspension;
        let distance = to_bob.length().max(1e-6);
        let direction = to_bob / distance;

        // Stiff cable: pulls the bob toward the commanded length. A cable can
        // pull but not push, so slack cable exerts no force.
        let stretch = distance - cable_length;
        let mut accel = Vec3::new(0.0, -GRAVITY, 0.0);
        if stretch > 0.0 {
            accel -= direction * (self.stiffness * stretch);
            // Damp the radial velocity so the cable does not bounce like a spring.
            let radial_speed = self.velocity.dot(direction);
            accel -= direction * (2.0 * self.stiffness.sqrt() * radial_speed);
        }
        // Pendular (tangential) damping: air drag plus cable friction.
        accel -= self.velocity * self.damping;

        self.velocity += accel * h;
        self.position += self.velocity * h;
    }

    /// Horizontal swing amplitude: distance of the bob from the vertical line
    /// through the suspension point, in metres.
    pub fn swing_amplitude(&self, suspension: Vec3) -> f64 {
        (self.position - suspension).horizontal().length()
    }

    /// Swing angle from the vertical, in radians.
    pub fn swing_angle(&self, suspension: Vec3) -> f64 {
        let to_bob = suspension - self.position;
        if to_bob.length() < 1e-9 {
            return 0.0;
        }
        to_bob.horizontal().length().atan2(to_bob.y.abs())
    }

    /// Whether the pendulum has effectively come to a full stop.
    pub fn is_at_rest(&self, suspension: Vec3) -> bool {
        self.velocity.length() < 0.02 && self.swing_amplitude(suspension) < 0.05
    }

    /// Kinetic plus potential energy relative to the suspension point (joules).
    pub fn energy(&self, suspension: Vec3) -> f64 {
        let m = self.total_mass();
        0.5 * m * self.velocity.length_squared()
            + m * GRAVITY
                * (self.position.y - (suspension.y - (self.position - suspension).length()))
    }

    /// The tension currently carried by the cable (newtons, zero when slack).
    pub fn cable_tension(&self, suspension: Vec3, cable_length: f64) -> f64 {
        let stretch = (self.position - suspension).length() - cable_length;
        if stretch <= 0.0 {
            0.0
        } else {
            self.stiffness * stretch * self.total_mass()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0 / 60.0;

    #[test]
    fn hangs_at_rest_under_a_static_boom() {
        let suspension = Vec3::new(0.0, 15.0, 0.0);
        let mut p = CablePendulum::new(suspension, 6.0, 120.0);
        for _ in 0..600 {
            p.step(suspension, 6.0, DT);
        }
        assert!(p.is_at_rest(suspension));
        assert!((p.position.x).abs() < 1e-3);
        assert!((suspension.y - p.position.y - 6.0).abs() < 0.2, "cable length held");
    }

    #[test]
    fn boom_motion_injects_inertia_oscillation() {
        let mut suspension = Vec3::new(0.0, 15.0, 0.0);
        let mut p = CablePendulum::new(suspension, 6.0, 120.0);
        p.attach_cargo(2_000.0);
        // Slew the boom tip sideways for two seconds.
        let mut max_swing: f64 = 0.0;
        for i in 0..120 {
            suspension = Vec3::new(0.05 * i as f64, 15.0, 0.0);
            p.step(suspension, 6.0, DT);
            max_swing = max_swing.max(p.swing_amplitude(suspension));
        }
        assert!(max_swing > 0.2, "boom motion should swing the cargo, got {max_swing}");
    }

    #[test]
    fn oscillation_decays_to_full_stop_after_boom_stops() {
        let mut suspension = Vec3::new(0.0, 15.0, 0.0);
        let mut p = CablePendulum::new(suspension, 6.0, 120.0);
        p.attach_cargo(1_000.0);
        for i in 0..90 {
            suspension = Vec3::new(0.08 * i as f64, 15.0, 0.0);
            p.step(suspension, 6.0, DT);
        }
        let swinging = p.swing_amplitude(suspension);
        assert!(swinging > 0.1);
        // Boom now holds still; the oscillation must die out (paper: "until a full stop").
        for _ in 0..(60 * 60) {
            p.step(suspension, 6.0, DT);
        }
        assert!(p.is_at_rest(suspension), "pendulum still swinging after a minute");
        assert!(p.swing_amplitude(suspension) < swinging / 4.0);
    }

    #[test]
    fn amplitude_decay_is_monotonic_over_windows() {
        let suspension = Vec3::new(0.0, 12.0, 0.0);
        let mut p = CablePendulum::new(suspension, 5.0, 150.0);
        // Start displaced.
        p.position += Vec3::new(1.5, 0.3, 0.0);
        let mut window_peaks = Vec::new();
        for _ in 0..6 {
            let mut peak: f64 = 0.0;
            for _ in 0..240 {
                p.step(suspension, 5.0, DT);
                peak = peak.max(p.swing_amplitude(suspension));
            }
            window_peaks.push(peak);
        }
        for pair in window_peaks.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "amplitude grew: {window_peaks:?}");
        }
    }

    #[test]
    fn heavier_cargo_swings_with_same_period_but_more_tension() {
        let suspension = Vec3::new(0.0, 20.0, 0.0);
        let mut light = CablePendulum::new(suspension, 8.0, 100.0);
        let mut heavy = CablePendulum::new(suspension, 8.0, 100.0);
        heavy.attach_cargo(5_000.0);
        light.position += Vec3::new(1.0, 0.0, 0.0);
        heavy.position += Vec3::new(1.0, 0.0, 0.0);
        for _ in 0..120 {
            light.step(suspension, 8.0, DT);
            heavy.step(suspension, 8.0, DT);
        }
        assert!(heavy.cable_tension(suspension, 8.0) > light.cable_tension(suspension, 8.0));
        assert!(heavy.total_mass() > light.total_mass());
    }

    #[test]
    fn lowering_the_cable_lowers_the_hook() {
        let suspension = Vec3::new(0.0, 15.0, 0.0);
        let mut p = CablePendulum::new(suspension, 3.0, 120.0);
        for _ in 0..240 {
            p.step(suspension, 3.0, DT);
        }
        let high = p.position.y;
        for _ in 0..1200 {
            p.step(suspension, 9.0, DT);
        }
        let low = p.position.y;
        assert!(high - low > 5.0, "hook did not follow the cable: {high} -> {low}");
    }

    #[test]
    fn slack_cable_exerts_no_tension() {
        let suspension = Vec3::new(0.0, 10.0, 0.0);
        let mut p = CablePendulum::new(suspension, 5.0, 100.0);
        // Put the bob well above its rest point: the cable is slack.
        p.position = suspension - Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(p.cable_tension(suspension, 5.0), 0.0);
    }

    #[test]
    fn batched_lanes_are_bit_identical_to_scalar_steps() {
        let make = |k: usize| {
            let suspension = Vec3::new(0.2 * k as f64, 14.0 + k as f64, -0.1 * k as f64);
            let mut p = CablePendulum::new(suspension, 5.0 + 0.5 * k as f64, 110.0);
            p.attach_cargo(400.0 * k as f64);
            p.position += Vec3::new(0.8, 0.0, 0.3 * k as f64);
            (p, suspension)
        };
        let mut batched: Vec<(CablePendulum, Vec3)> = (0..6).map(make).collect();
        let mut scalar = batched.clone();
        for frame in 0..240 {
            // Moving suspension points keep the cohort's dynamics divergent.
            let sway = 0.02 * frame as f64;
            let mut lanes: Vec<(&mut CablePendulum, Vec3, f64)> = batched
                .iter_mut()
                .enumerate()
                .map(|(k, (p, base))| (p, *base + Vec3::new(sway, 0.0, 0.0), 5.0 + 0.5 * k as f64))
                .collect();
            CablePendulum::step_batch(&mut lanes, DT);
            for (k, (p, base)) in scalar.iter_mut().enumerate() {
                p.step(*base + Vec3::new(sway, 0.0, 0.0), 5.0 + 0.5 * k as f64, DT);
            }
        }
        for (k, ((a, _), (b, _))) in batched.iter().zip(scalar.iter()).enumerate() {
            assert_eq!(a.position.x.to_bits(), b.position.x.to_bits(), "lane {k} diverged");
            assert_eq!(a.position.y.to_bits(), b.position.y.to_bits(), "lane {k} diverged");
            assert_eq!(a.position.z.to_bits(), b.position.z.to_bits(), "lane {k} diverged");
            assert_eq!(a.velocity.x.to_bits(), b.velocity.x.to_bits(), "lane {k} diverged");
            assert_eq!(a.velocity.y.to_bits(), b.velocity.y.to_bits(), "lane {k} diverged");
            assert_eq!(a.velocity.z.to_bits(), b.velocity.z.to_bits(), "lane {k} diverged");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        CablePendulum::step_batch(&mut [], DT);
    }

    #[test]
    #[should_panic]
    fn mixed_substep_batch_rejected() {
        let suspension = Vec3::new(0.0, 10.0, 0.0);
        let mut a = CablePendulum::new(suspension, 5.0, 100.0);
        let mut b = CablePendulum::new(suspension, 5.0, 100.0);
        b.substep = 1.0 / 120.0;
        CablePendulum::step_batch(&mut [(&mut a, suspension, 5.0), (&mut b, suspension, 5.0)], DT);
    }

    #[test]
    #[should_panic]
    fn zero_mass_rejected() {
        let _ = CablePendulum::new(Vec3::ZERO, 5.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_cargo_rejected() {
        let mut p = CablePendulum::new(Vec3::ZERO, 5.0, 10.0);
        p.attach_cargo(-1.0);
    }
}
