//! The articulated mobile crane: slew, luff, telescope and hoist kinematics.

use serde::{Deserialize, Serialize};
use sim_math::{clamp, Quat, Transform, Vec3};

/// Mechanical limits and rates of the crane's actuators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CraneLimits {
    /// Minimum boom luffing (elevation) angle in radians.
    pub min_luff: f64,
    /// Maximum boom luffing angle in radians.
    pub max_luff: f64,
    /// Minimum boom length in metres (fully retracted).
    pub min_boom_length: f64,
    /// Maximum boom length in metres (fully telescoped).
    pub max_boom_length: f64,
    /// Minimum hoist cable length in metres.
    pub min_cable_length: f64,
    /// Maximum hoist cable length in metres.
    pub max_cable_length: f64,
    /// Maximum slew rate in radians per second.
    pub max_slew_rate: f64,
    /// Maximum luffing rate in radians per second.
    pub max_luff_rate: f64,
    /// Maximum telescoping rate in metres per second.
    pub max_telescope_rate: f64,
    /// Maximum hoisting rate in metres per second.
    pub max_hoist_rate: f64,
    /// Maximum safe working radius in metres; beyond this the overload alarm trips.
    pub max_working_radius: f64,
}

impl Default for CraneLimits {
    fn default() -> Self {
        // Representative values for a 25 t rough-terrain mobile crane.
        CraneLimits {
            min_luff: 10f64.to_radians(),
            max_luff: 78f64.to_radians(),
            min_boom_length: 9.0,
            max_boom_length: 30.0,
            min_cable_length: 1.0,
            max_cable_length: 28.0,
            max_slew_rate: 0.35,
            max_luff_rate: 0.12,
            max_telescope_rate: 0.8,
            max_hoist_rate: 1.2,
            max_working_radius: 22.0,
        }
    }
}

/// Operator inputs to the crane superstructure (the two joysticks of §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CraneControls {
    /// Slew command in `[-1, 1]` (left joystick X).
    pub slew: f64,
    /// Luffing command in `[-1, 1]` (left joystick Y; positive raises the boom).
    pub luff: f64,
    /// Telescope command in `[-1, 1]` (right joystick Y).
    pub telescope: f64,
    /// Hoist command in `[-1, 1]` (right joystick X; positive lowers the hook).
    pub hoist: f64,
}

impl CraneControls {
    /// Clamps every channel into `[-1, 1]`.
    pub fn clamped(self) -> CraneControls {
        CraneControls {
            slew: clamp(self.slew, -1.0, 1.0),
            luff: clamp(self.luff, -1.0, 1.0),
            telescope: clamp(self.telescope, -1.0, 1.0),
            hoist: clamp(self.hoist, -1.0, 1.0),
        }
    }
}

/// Kinematic state of the crane superstructure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CraneState {
    /// Slew (swing) angle of the superstructure about +Y, in radians.
    pub slew_angle: f64,
    /// Luffing (elevation) angle of the boom above horizontal, in radians.
    pub luff_angle: f64,
    /// Boom length in metres.
    pub boom_length: f64,
    /// Hoist cable length in metres.
    pub cable_length: f64,
}

impl Default for CraneState {
    fn default() -> Self {
        CraneState {
            slew_angle: 0.0,
            luff_angle: 45f64.to_radians(),
            boom_length: 12.0,
            cable_length: 6.0,
        }
    }
}

/// The crane rig: state plus limits, plus the geometry needed for kinematics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CraneRig {
    /// Current actuator state.
    pub state: CraneState,
    /// Mechanical limits.
    pub limits: CraneLimits,
    /// Offset of the boom pivot above/behind the chassis origin, in chassis space.
    pub pivot_offset: Vec3,
}

impl Default for CraneRig {
    fn default() -> Self {
        CraneRig {
            state: CraneState::default(),
            limits: CraneLimits::default(),
            pivot_offset: Vec3::new(0.0, 2.9, -0.5),
        }
    }
}

impl CraneRig {
    /// Creates a rig with explicit state and limits.
    pub fn new(state: CraneState, limits: CraneLimits) -> CraneRig {
        CraneRig { state, limits, ..CraneRig::default() }
    }

    /// Advances the actuators by `dt` seconds under the given controls,
    /// enforcing rate and travel limits. Returns the new state.
    pub fn step(&mut self, controls: CraneControls, dt: f64) -> CraneState {
        let c = controls.clamped();
        let l = &self.limits;
        let s = &mut self.state;
        s.slew_angle += c.slew * l.max_slew_rate * dt;
        s.slew_angle = sim_math::wrap_to_pi(s.slew_angle);
        s.luff_angle = clamp(s.luff_angle + c.luff * l.max_luff_rate * dt, l.min_luff, l.max_luff);
        s.boom_length = clamp(
            s.boom_length + c.telescope * l.max_telescope_rate * dt,
            l.min_boom_length,
            l.max_boom_length,
        );
        s.cable_length = clamp(
            s.cable_length + c.hoist * l.max_hoist_rate * dt,
            l.min_cable_length,
            l.max_cable_length,
        );
        *s
    }

    /// Rotation of the superstructure relative to the chassis.
    pub fn superstructure_rotation(&self) -> Quat {
        Quat::from_axis_angle(Vec3::unit_y(), self.state.slew_angle)
    }

    /// Position of the boom pivot in chassis space.
    pub fn boom_pivot(&self) -> Vec3 {
        self.pivot_offset
    }

    /// Position of the boom tip in chassis space.
    pub fn boom_tip(&self) -> Vec3 {
        let along = Vec3::new(0.0, self.state.luff_angle.sin(), -self.state.luff_angle.cos())
            * self.state.boom_length;
        self.pivot_offset + self.superstructure_rotation().rotate(along)
    }

    /// Position of the boom tip in world space given the chassis pose.
    pub fn boom_tip_world(&self, chassis: &Transform) -> Vec3 {
        chassis.apply(self.boom_tip())
    }

    /// Where the hook would hang at rest (straight below the boom tip by the
    /// cable length), in world space.
    pub fn hook_rest_position(&self, chassis: &Transform) -> Vec3 {
        self.boom_tip_world(chassis) - Vec3::new(0.0, self.state.cable_length, 0.0)
    }

    /// Horizontal working radius: distance from the slew axis to the boom tip,
    /// measured on the ground plane (the quantity the load-moment alarm uses).
    pub fn working_radius(&self) -> f64 {
        let tip = self.boom_tip();
        (tip - self.pivot_offset).horizontal().length()
    }

    /// Whether the boom is outside the safe working envelope (the "derrick boom
    /// overshoots the safety zone" alarm of Figure 5).
    pub fn outside_safety_zone(&self) -> bool {
        self.working_radius() > self.limits.max_working_radius
            || self.state.luff_angle <= self.limits.min_luff + 1e-9
    }

    /// Fraction of the maximum working radius currently in use, in `[0, ...)`.
    pub fn radius_utilization(&self) -> f64 {
        self.working_radius() / self.limits.max_working_radius
    }

    /// Boom elongation as a fraction of the telescoping range, in `[0, 1]`
    /// (one of the Status-window gauges of Figure 5).
    pub fn boom_extension_fraction(&self) -> f64 {
        let l = &self.limits;
        (self.state.boom_length - l.min_boom_length) / (l.max_boom_length - l.min_boom_length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rates_and_limits_are_enforced() {
        let mut rig = CraneRig::default();
        let start = rig.state;
        // Full-up luff command for one second.
        rig.step(CraneControls { luff: 1.0, ..Default::default() }, 1.0);
        assert!(
            (rig.state.luff_angle - (start.luff_angle + rig.limits.max_luff_rate)).abs() < 1e-9
        );
        // Saturate at the maximum.
        for _ in 0..1000 {
            rig.step(CraneControls { luff: 1.0, ..Default::default() }, 0.1);
        }
        assert!((rig.state.luff_angle - rig.limits.max_luff).abs() < 1e-9);
        // Telescope and cable limits.
        for _ in 0..1000 {
            rig.step(CraneControls { telescope: 1.0, hoist: 1.0, ..Default::default() }, 0.1);
        }
        assert!((rig.state.boom_length - rig.limits.max_boom_length).abs() < 1e-9);
        assert!((rig.state.cable_length - rig.limits.max_cable_length).abs() < 1e-9);
    }

    #[test]
    fn controls_are_clamped() {
        let mut rig = CraneRig::default();
        let before = rig.state.slew_angle;
        rig.step(CraneControls { slew: 10.0, ..Default::default() }, 1.0);
        assert!((rig.state.slew_angle - before - rig.limits.max_slew_rate).abs() < 1e-9);
    }

    #[test]
    fn boom_tip_rises_with_luff_and_extends_with_telescope() {
        let mut rig = CraneRig::default();
        rig.state.luff_angle = 30f64.to_radians();
        rig.state.boom_length = 10.0;
        let low = rig.boom_tip();
        rig.state.luff_angle = 70f64.to_radians();
        let high = rig.boom_tip();
        assert!(high.y > low.y);
        assert!(high.horizontal().length() < low.horizontal().length());

        rig.state.boom_length = 20.0;
        let long = rig.boom_tip();
        assert!(long.y > high.y);
    }

    #[test]
    fn slew_rotates_the_tip_about_the_vertical_axis() {
        let mut rig = CraneRig::default();
        rig.state.slew_angle = 0.0;
        let before = rig.boom_tip();
        rig.state.slew_angle = std::f64::consts::FRAC_PI_2;
        let after = rig.boom_tip();
        assert!((before.y - after.y).abs() < 1e-9, "slew must not change tip height");
        assert!(
            (before - rig.pivot_offset).horizontal().length()
                - (after - rig.pivot_offset).horizontal().length()
                < 1e-9
        );
        assert!(before.horizontal().distance(after.horizontal()) > 1.0);
    }

    #[test]
    fn hook_rest_position_hangs_straight_down() {
        let rig = CraneRig::default();
        let chassis = Transform::from_translation(Vec3::new(5.0, 0.0, 7.0));
        let tip = rig.boom_tip_world(&chassis);
        let hook = rig.hook_rest_position(&chassis);
        assert!((tip.x - hook.x).abs() < 1e-12);
        assert!((tip.z - hook.z).abs() < 1e-12);
        assert!((tip.y - hook.y - rig.state.cable_length).abs() < 1e-12);
    }

    #[test]
    fn safety_zone_alarm_trips_at_long_radius_and_low_boom() {
        let mut rig = CraneRig::default();
        rig.state.luff_angle = 45f64.to_radians();
        rig.state.boom_length = 12.0;
        assert!(!rig.outside_safety_zone());
        // Lower the boom fully and telescope out: radius exceeds the safe limit.
        rig.state.luff_angle = rig.limits.min_luff;
        rig.state.boom_length = rig.limits.max_boom_length;
        assert!(rig.outside_safety_zone());
        assert!(rig.radius_utilization() > 1.0);
    }

    #[test]
    fn extension_fraction_spans_unit_interval() {
        let mut rig = CraneRig::default();
        rig.state.boom_length = rig.limits.min_boom_length;
        assert!(rig.boom_extension_fraction().abs() < 1e-12);
        rig.state.boom_length = rig.limits.max_boom_length;
        assert!((rig.boom_extension_fraction() - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_state_always_within_limits(cmds in proptest::collection::vec((-2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64), 1..200)) {
            let mut rig = CraneRig::default();
            for (slew, luff, telescope, hoist) in cmds {
                rig.step(CraneControls { slew, luff, telescope, hoist }, 0.25);
                let s = rig.state;
                let l = rig.limits;
                prop_assert!(s.luff_angle >= l.min_luff - 1e-9 && s.luff_angle <= l.max_luff + 1e-9);
                prop_assert!(s.boom_length >= l.min_boom_length - 1e-9 && s.boom_length <= l.max_boom_length + 1e-9);
                prop_assert!(s.cable_length >= l.min_cable_length - 1e-9 && s.cable_length <= l.max_cable_length + 1e-9);
                prop_assert!(s.slew_angle >= -std::f64::consts::PI - 1e-9 && s.slew_angle <= std::f64::consts::PI + 1e-9);
            }
        }
    }
}
