//! Terrain height queries and terrain following.

use sim_math::Vec3;

/// A queryable terrain surface.
pub trait Terrain: Send + Sync {
    /// Ground height at `(x, z)` in metres.
    fn height(&self, x: f64, z: f64) -> f64;

    /// Outward (upward) surface normal at `(x, z)`, estimated by central differences.
    fn normal(&self, x: f64, z: f64) -> Vec3 {
        let eps = 0.25;
        let dx = self.height(x + eps, z) - self.height(x - eps, z);
        let dz = self.height(x, z + eps) - self.height(x, z - eps);
        Vec3::new(-dx / (2.0 * eps), 1.0, -dz / (2.0 * eps)).normalized_or(Vec3::unit_y())
    }

    /// Grade (slope magnitude, rise over run) at `(x, z)`.
    fn grade(&self, x: f64, z: f64) -> f64 {
        let n = self.normal(x, z);
        let horizontal = Vec3::new(n.x, 0.0, n.z).length();
        if n.y.abs() < 1e-9 {
            f64::INFINITY
        } else {
            horizontal / n.y
        }
    }
}

/// Perfectly flat terrain at a fixed height.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlatTerrain {
    /// Ground height.
    pub height: f64,
}

impl Terrain for FlatTerrain {
    fn height(&self, _x: f64, _z: f64) -> f64 {
        self.height
    }
}

/// Terrain defined by an arbitrary height function (used to share the training
/// ground of `crane-scene` with the dynamics module).
pub struct FnTerrain<F: Fn(f64, f64) -> f64 + Send + Sync> {
    f: F,
}

impl<F: Fn(f64, f64) -> f64 + Send + Sync> FnTerrain<F> {
    /// Wraps a height function as terrain.
    pub fn new(f: F) -> FnTerrain<F> {
        FnTerrain { f }
    }
}

impl<F: Fn(f64, f64) -> f64 + Send + Sync> Terrain for FnTerrain<F> {
    fn height(&self, x: f64, z: f64) -> f64 {
        (self.f)(x, z)
    }
}

impl<F: Fn(f64, f64) -> f64 + Send + Sync> std::fmt::Debug for FnTerrain<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnTerrain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_terrain_has_vertical_normal_and_zero_grade() {
        let t = FlatTerrain { height: 2.0 };
        assert_eq!(t.height(10.0, -5.0), 2.0);
        assert!(t.normal(0.0, 0.0).distance(Vec3::unit_y()) < 1e-12);
        assert_eq!(t.grade(3.0, 4.0), 0.0);
    }

    #[test]
    fn slope_normal_tilts_against_the_gradient() {
        // Height rises with x: the normal should lean toward -x.
        let t = FnTerrain::new(|x, _z| 0.5 * x);
        let n = t.normal(0.0, 0.0);
        assert!(n.x < 0.0);
        assert!(n.y > 0.0);
        assert!((t.grade(0.0, 0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fn_terrain_matches_scene_training_ground() {
        let t = FnTerrain::new(crane_scene::world::training_ground_height);
        assert_eq!(t.height(0.0, 60.0), 0.0);
        assert_eq!(
            t.height(-12.0, -20.0),
            crane_scene::world::training_ground_height(-12.0, -20.0)
        );
    }

    #[test]
    fn terrain_is_object_safe() {
        let terrains: Vec<Box<dyn Terrain>> =
            vec![Box::new(FlatTerrain::default()), Box::new(FnTerrain::new(|x, z| x + z))];
        assert_eq!(terrains.len(), 2);
    }
}
