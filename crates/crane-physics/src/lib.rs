//! Dynamics substrate for the mobile-crane simulator.
//!
//! The paper's dynamics module (§3.6) "increases the realism of simulation by
//! calculating various physical phenomena": the inertia oscillation of the lift
//! hook on its cable, multi-level collision detection, and terrain following.
//! This crate implements each of those plus the pieces they depend on:
//!
//! * [`crane`] — the articulated mobile crane: slew / luff / telescope /
//!   hoist kinematics with actuator rate limits and safety envelope checks.
//! * [`pendulum`] — the hook-and-cargo pendulum hanging from the boom tip,
//!   integrated with a stiff cable constraint so inertia oscillation appears
//!   whenever the boom moves and decays to a full stop afterwards.
//! * [`vehicle`] — the driving model (steering wheel, gas pedal, brake) with
//!   terrain following for the chassis.
//! * [`terrain`] — height-field terrain queries shared with the scene crate.
//! * [`collision`] — the multi-level collision detection of Moore & Wilhelms
//!   referenced by the paper: bounding-sphere, then AABB, then exact tests.
//! * [`stability`] — tip-over / load-moment computation that drives the
//!   instructor's alarm lights.

pub mod collision;
pub mod crane;
pub mod pendulum;
pub mod stability;
pub mod terrain;
pub mod vehicle;

pub use collision::{CollisionWorld, Contact, DetectionLevel};
pub use crane::{CraneControls, CraneLimits, CraneRig, CraneState};
pub use pendulum::CablePendulum;
pub use stability::{StabilityModel, StabilityReport};
pub use terrain::{FlatTerrain, FnTerrain, Terrain};
pub use vehicle::{CraneVehicle, DriveControls, VehicleParams};

/// Standard gravity used throughout the dynamics module (m/s^2).
pub const GRAVITY: f64 = 9.81;
