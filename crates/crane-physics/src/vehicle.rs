//! Driving model of the mobile crane with terrain following (paper §3.6).

use serde::{Deserialize, Serialize};
use sim_math::{clamp, Quat, Transform, Vec3};

use crate::terrain::Terrain;

/// Parameters of the crane carrier vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Total vehicle mass in kilograms.
    pub mass: f64,
    /// Wheelbase in metres.
    pub wheelbase: f64,
    /// Maximum steering angle of the front axle in radians.
    pub max_steer: f64,
    /// Maximum engine drive force in newtons.
    pub max_drive_force: f64,
    /// Maximum braking force in newtons.
    pub max_brake_force: f64,
    /// Quadratic drag coefficient (N per (m/s)^2).
    pub drag: f64,
    /// Rolling resistance force in newtons.
    pub rolling_resistance: f64,
    /// Maximum forward speed in metres per second (a mobile crane is slow).
    pub max_speed: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            mass: 25_000.0,
            wheelbase: 4.2,
            max_steer: 32f64.to_radians(),
            max_drive_force: 90_000.0,
            max_brake_force: 160_000.0,
            drag: 18.0,
            rolling_resistance: 2_500.0,
            max_speed: 11.0,
        }
    }
}

/// Driver inputs from the dashboard mockup (steering wheel, gas pedal, brake).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DriveControls {
    /// Steering wheel position in `[-1, 1]` (positive steers left).
    pub steering: f64,
    /// Gas pedal in `[0, 1]`.
    pub throttle: f64,
    /// Brake pedal in `[0, 1]`.
    pub brake: f64,
    /// Reverse gear selected.
    pub reverse: bool,
}

impl DriveControls {
    /// Clamps every channel into its valid range.
    pub fn clamped(self) -> DriveControls {
        DriveControls {
            steering: clamp(self.steering, -1.0, 1.0),
            throttle: clamp(self.throttle, 0.0, 1.0),
            brake: clamp(self.brake, 0.0, 1.0),
            reverse: self.reverse,
        }
    }
}

/// The crane carrier: a bicycle-model vehicle that follows the terrain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CraneVehicle {
    /// Vehicle parameters.
    pub params: VehicleParams,
    /// Ground-plane position (x, z); y is taken from the terrain.
    pub position: Vec3,
    /// Heading angle about +Y in radians (0 faces +Z).
    pub heading: f64,
    /// Signed forward speed in metres per second (negative when reversing).
    pub speed: f64,
    /// Chassis pitch from terrain following, in radians.
    pub pitch: f64,
    /// Chassis roll from terrain following, in radians.
    pub roll: f64,
}

impl CraneVehicle {
    /// Creates a vehicle at `position` facing `heading`.
    pub fn new(params: VehicleParams, position: Vec3, heading: f64) -> CraneVehicle {
        CraneVehicle { params, position, heading, speed: 0.0, pitch: 0.0, roll: 0.0 }
    }

    /// Forward unit vector on the ground plane.
    pub fn forward(&self) -> Vec3 {
        Vec3::new(self.heading.sin(), 0.0, self.heading.cos())
    }

    /// Advances the vehicle by `dt` seconds over `terrain`.
    pub fn step(&mut self, controls: DriveControls, terrain: &dyn Terrain, dt: f64) {
        let c = controls.clamped();
        let p = self.params;

        // Longitudinal dynamics.
        let direction = if c.reverse { -1.0 } else { 1.0 };
        let drive = direction * c.throttle * p.max_drive_force;
        let brake = if self.speed.abs() > 1e-3 {
            -self.speed.signum() * c.brake * p.max_brake_force
        } else {
            0.0
        };
        let drag = -self.speed * self.speed.abs() * p.drag;
        let rolling =
            if self.speed.abs() > 1e-3 { -self.speed.signum() * p.rolling_resistance } else { 0.0 };
        // Grade resistance: gravity component along the direction of travel.
        // The terrain normal tilts away from the uphill direction, so its
        // horizontal part dotted with the forward vector is negative when
        // climbing — which is exactly the sign the resisting force needs.
        let grade = terrain.normal(self.position.x, self.position.z);
        let slope_along =
            self.forward().dot(Vec3::new(grade.x, 0.0, grade.z)) * crate::GRAVITY * p.mass;

        let force = drive + brake + drag + rolling + slope_along;
        let accel = force / p.mass;
        let new_speed = self.speed + accel * dt;
        // Braking never reverses the direction of travel by itself.
        self.speed =
            if c.throttle < 1e-6 && new_speed * self.speed < 0.0 { 0.0 } else { new_speed };
        self.speed = clamp(self.speed, -p.max_speed * 0.4, p.max_speed);

        // Bicycle-model yaw rate.
        let steer = c.steering * p.max_steer;
        if steer.abs() > 1e-6 && self.speed.abs() > 1e-3 {
            let turn_radius = p.wheelbase / steer.tan();
            self.heading = sim_math::wrap_to_pi(self.heading + self.speed / turn_radius * dt);
        }

        // Integrate ground-plane position and follow the terrain height.
        let delta = self.forward() * (self.speed * dt);
        self.position += delta;
        self.position.y = terrain.height(self.position.x, self.position.z);

        // Terrain following: derive pitch and roll from wheel contact points.
        let ahead = self.position + self.forward() * (p.wheelbase / 2.0);
        let behind = self.position - self.forward() * (p.wheelbase / 2.0);
        let right = self.forward().cross(Vec3::unit_y());
        let left_p = self.position - right * 1.3;
        let right_p = self.position + right * 1.3;
        let h_ahead = terrain.height(ahead.x, ahead.z);
        let h_behind = terrain.height(behind.x, behind.z);
        let h_left = terrain.height(left_p.x, left_p.z);
        let h_right = terrain.height(right_p.x, right_p.z);
        self.pitch = ((h_behind - h_ahead) / p.wheelbase).atan();
        self.roll = ((h_right - h_left) / 2.6).atan();
    }

    /// The chassis pose (terrain-following height, heading, pitch and roll).
    pub fn chassis_transform(&self) -> Transform {
        let rotation = Quat::from_axis_angle(Vec3::unit_y(), self.heading)
            * Quat::from_axis_angle(Vec3::unit_x(), self.pitch)
            * Quat::from_axis_angle(Vec3::unit_z(), self.roll);
        Transform::new(self.position, rotation)
    }

    /// Speed as displayed on the dashboard, in kilometres per hour.
    pub fn speed_kmh(&self) -> f64 {
        self.speed.abs() * 3.6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::{FlatTerrain, FnTerrain};

    const DT: f64 = 1.0 / 60.0;

    #[test]
    fn accelerates_and_respects_top_speed() {
        let terrain = FlatTerrain::default();
        let mut v = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        for _ in 0..(60 * 60) {
            v.step(DriveControls { throttle: 1.0, ..Default::default() }, &terrain, DT);
        }
        assert!(v.speed > 5.0);
        assert!(v.speed <= v.params.max_speed + 1e-9);
        assert!(v.position.z > 100.0, "vehicle did not move forward");
        assert!(v.speed_kmh() > 18.0);
    }

    #[test]
    fn braking_stops_without_reversing() {
        let terrain = FlatTerrain::default();
        let mut v = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        for _ in 0..600 {
            v.step(DriveControls { throttle: 1.0, ..Default::default() }, &terrain, DT);
        }
        for _ in 0..600 {
            v.step(DriveControls { brake: 1.0, ..Default::default() }, &terrain, DT);
        }
        assert!(v.speed.abs() < 1e-6, "vehicle still moving: {}", v.speed);
    }

    #[test]
    fn steering_turns_the_heading() {
        let terrain = FlatTerrain::default();
        let mut v = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        for _ in 0..600 {
            v.step(
                DriveControls { throttle: 0.6, steering: 1.0, ..Default::default() },
                &terrain,
                DT,
            );
        }
        assert!(v.heading.abs() > 0.3, "heading barely changed: {}", v.heading);
    }

    #[test]
    fn reverse_gear_moves_backwards() {
        let terrain = FlatTerrain::default();
        let mut v = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        for _ in 0..600 {
            v.step(
                DriveControls { throttle: 0.5, reverse: true, ..Default::default() },
                &terrain,
                DT,
            );
        }
        assert!(v.position.z < -1.0);
        assert!(v.speed < 0.0);
    }

    #[test]
    fn terrain_following_sets_height_pitch_and_roll() {
        // A side slope: height rises with x.
        let terrain = FnTerrain::new(|x: f64, _z: f64| 0.2 * x);
        let mut v = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        for _ in 0..300 {
            v.step(DriveControls { throttle: 0.5, ..Default::default() }, &terrain, DT);
        }
        assert!((v.position.y - 0.2 * v.position.x).abs() < 1e-9);
        assert!(v.roll.abs() > 0.05, "side slope should roll the chassis");

        // A climb: height rises with z (direction of travel).
        let climb = FnTerrain::new(|_x: f64, z: f64| 0.15 * z);
        let mut v = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        for _ in 0..300 {
            v.step(DriveControls { throttle: 1.0, ..Default::default() }, &climb, DT);
        }
        assert!(v.pitch.abs() > 0.05, "climb should pitch the chassis");
    }

    #[test]
    fn uphill_grade_slows_the_vehicle() {
        let flat = FlatTerrain::default();
        let climb = FnTerrain::new(|_x: f64, z: f64| 0.3 * z);
        let mut on_flat = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        let mut on_climb = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        // Five seconds of full throttle, before either vehicle saturates the
        // speed limiter on the climb.
        for _ in 0..300 {
            on_flat.step(DriveControls { throttle: 1.0, ..Default::default() }, &flat, DT);
            on_climb.step(DriveControls { throttle: 1.0, ..Default::default() }, &climb, DT);
        }
        assert!(
            on_climb.speed < on_flat.speed - 1.0,
            "grade resistance missing: climb {} vs flat {}",
            on_climb.speed,
            on_flat.speed
        );
    }

    #[test]
    fn chassis_transform_matches_state() {
        let terrain = FlatTerrain { height: 1.5 };
        let mut v = CraneVehicle::new(VehicleParams::default(), Vec3::new(3.0, 0.0, 4.0), 0.7);
        v.step(DriveControls::default(), &terrain, DT);
        let t = v.chassis_transform();
        assert!((t.translation.y - 1.5).abs() < 1e-12);
        let fwd = t.apply_direction(Vec3::unit_z());
        assert!(fwd.dot(v.forward()) > 0.99);
    }
}
