//! Cluster-wide invariants evaluated after every executive frame.
//!
//! These are the safety properties that must hold no matter what the LAN does
//! to the traffic: the CB channel tables of the eight computers stay mutually
//! consistent, the frame-sync protocol keeps the surround view in lock-step
//! and moving, the exam score stays in range, and no Logical Process starves.

use std::collections::BTreeMap;

use cod_cb::ChannelRole;
use cod_cluster::ComputerId;
use crane_sim::{CraneSimulator, TelemetrySnapshot};

/// Everything an invariant may look at after one frame.
pub struct FrameContext<'a> {
    /// Zero-based index of the frame that just ran.
    pub frame: u64,
    /// The simulator (cluster, kernels, metrics) after the frame.
    pub simulator: &'a CraneSimulator,
    /// Telemetry snapshot taken after the frame.
    pub snapshot: &'a TelemetrySnapshot,
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Frame at which the invariant first failed.
    pub frame: u64,
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame {}: {} — {}", self.frame, self.invariant, self.detail)
    }
}

/// A safety property checked after every frame.
pub trait Invariant {
    /// Stable name used in reports.
    fn name(&self) -> &'static str;

    /// Checks the property; returns a description of the violation if it fails.
    ///
    /// # Errors
    ///
    /// Returns the violation detail when the invariant does not hold.
    fn check(&mut self, ctx: &FrameContext<'_>) -> Result<(), String>;
}

/// The standard battery: channel-table consistency, frame-sync lock-step
/// monotonicity, score bounds and LP-starvation detection.
pub fn standard_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(ChannelTableConsistency),
        Box::new(FrameSyncMonotonic::new()),
        Box::new(ScoreBounded),
        Box::new(NoLpStarvation::new(60)),
    ]
}

/// Every fully-established subscriber-side virtual channel must have its
/// publisher-side twin (same id, class and LP pair) on some other computer,
/// and no kernel may hold two equivalent channels for the same LP pair.
pub struct ChannelTableConsistency;

impl Invariant for ChannelTableConsistency {
    fn name(&self) -> &'static str {
        "cb-channel-table-consistency"
    }

    fn check(&mut self, ctx: &FrameContext<'_>) -> Result<(), String> {
        let cluster = ctx.simulator.cluster();
        // Gather every channel entry of every kernel, keyed by channel id.
        let mut by_id: BTreeMap<u64, Vec<(usize, ChannelRole, bool)>> = BTreeMap::new();
        for i in 0..cluster.computer_count() {
            let kernel = cluster.computer(ComputerId(i)).kernel();
            let mut seen_pairs = Vec::new();
            for vc in kernel.channels().iter() {
                by_id.entry(vc.id.0).or_default().push((i, vc.role, vc.established));
                let pair = (vc.publisher_lp, vc.subscriber_lp, vc.class, vc.role);
                if seen_pairs.contains(&pair) {
                    return Err(format!(
                        "computer {i} holds duplicate channels for publisher {:?} -> \
                         subscriber {:?} (class {:?})",
                        vc.publisher_lp, vc.subscriber_lp, vc.class
                    ));
                }
                seen_pairs.push(pair);
            }
        }
        for (id, entries) in &by_id {
            let sub_established = entries
                .iter()
                .any(|(_, role, established)| *role == ChannelRole::Subscriber && *established);
            let pub_established = entries
                .iter()
                .any(|(_, role, established)| *role == ChannelRole::Publisher && *established);
            if sub_established && !pub_established {
                return Err(format!(
                    "channel {id:#x} is established on the subscriber side but has no \
                     established publisher twin"
                ));
            }
        }
        Ok(())
    }
}

/// Per-channel swap counters of the surround view must never regress and the
/// channels must stay within one frame of each other (the lock-step property
/// the fourth computer of the rack exists to enforce).
pub struct FrameSyncMonotonic {
    last: Vec<u64>,
}

impl FrameSyncMonotonic {
    /// Creates the checker with no history.
    pub fn new() -> FrameSyncMonotonic {
        FrameSyncMonotonic { last: Vec::new() }
    }
}

impl Default for FrameSyncMonotonic {
    fn default() -> Self {
        FrameSyncMonotonic::new()
    }
}

impl Invariant for FrameSyncMonotonic {
    fn name(&self) -> &'static str {
        "frame-sync-monotonicity"
    }

    fn check(&mut self, ctx: &FrameContext<'_>) -> Result<(), String> {
        let swaps = &ctx.snapshot.channel_frames_swapped;
        if swaps.is_empty() {
            return Ok(());
        }
        for (channel, (now, before)) in swaps.iter().zip(&self.last).enumerate() {
            if now < before {
                return Err(format!("channel {channel} swap counter regressed: {before} -> {now}"));
            }
        }
        self.last = swaps.clone();
        let min = swaps.iter().min().copied().unwrap_or(0);
        let max = swaps.iter().max().copied().unwrap_or(0);
        if max - min > 1 {
            return Err(format!("surround channels out of lock-step: swap counts {swaps:?}"));
        }
        Ok(())
    }
}

/// The exam score must stay finite and within `[0, 100]`.
pub struct ScoreBounded;

impl Invariant for ScoreBounded {
    fn name(&self) -> &'static str {
        "score-bounded"
    }

    fn check(&mut self, ctx: &FrameContext<'_>) -> Result<(), String> {
        let score = ctx.snapshot.scenario.score;
        if !score.is_finite() || !(0.0..=100.0).contains(&score) {
            return Err(format!("score out of bounds: {score}"));
        }
        Ok(())
    }
}

/// The slowest surround channel must make progress at least once per `window`
/// frames — a stalled swap counter means an LP is starved (typically a barrier
/// deadlock after lost datagrams).
pub struct NoLpStarvation {
    window: u64,
    last_min: u64,
    last_progress_frame: u64,
}

impl NoLpStarvation {
    /// Creates the checker with the given progress window in frames.
    pub fn new(window: u64) -> NoLpStarvation {
        NoLpStarvation { window, last_min: 0, last_progress_frame: 0 }
    }
}

impl Invariant for NoLpStarvation {
    fn name(&self) -> &'static str {
        "no-lp-starvation"
    }

    fn check(&mut self, ctx: &FrameContext<'_>) -> Result<(), String> {
        let swaps = &ctx.snapshot.channel_frames_swapped;
        if swaps.is_empty() {
            // Surround view not up yet; count from here.
            self.last_progress_frame = ctx.frame;
            return Ok(());
        }
        let min = swaps.iter().min().copied().unwrap_or(0);
        if min > self.last_min {
            self.last_min = min;
            self.last_progress_frame = ctx.frame;
        } else if ctx.frame - self.last_progress_frame > self.window {
            return Err(format!(
                "slowest surround channel stuck at {} swaps for more than {} frames",
                self.last_min, self.window
            ));
        }
        Ok(())
    }
}
