//! The scenario harness: seeded, replayable, invariant-checked session runs.
//!
//! A [`ScenarioSpec`] fully determines a run — simulator configuration
//! (including its seed), fault plan (including *its* seed) and frame count —
//! so [`run_scenario`] is a pure function of the spec: running it twice yields
//! bit-identical [`SessionReport`]s and [`TelemetryTrace`]s. When a regression
//! breaks that, `TelemetryTrace::first_divergence` pins the first bad frame.

use cod_cb::CbError;
use cod_net::FaultPlan;
use crane_sim::{CraneSimulator, FrameDigest, SessionReport, SimulatorConfig, TelemetryTrace};

use crate::invariants::{standard_invariants, FrameContext, Invariant, InvariantViolation};

/// A complete description of one reproducible scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Name used in reports and the scenario-matrix summary.
    pub name: String,
    /// Simulator configuration (carries the simulation seed).
    pub config: SimulatorConfig,
    /// Fault plan installed after CB initialization (carries the fault seed).
    pub fault_plan: FaultPlan,
    /// Number of executive frames to run.
    pub frames: usize,
}

impl ScenarioSpec {
    /// A fault-free scenario.
    pub fn new(name: &str, config: SimulatorConfig, frames: usize) -> ScenarioSpec {
        ScenarioSpec { name: name.to_owned(), config, fault_plan: FaultPlan::none(), frames }
    }

    /// Attaches a fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ScenarioSpec {
        self.fault_plan = plan;
        self
    }

    /// The seed to quote when reporting a failure of this scenario: replaying
    /// with the same `(sim_seed, fault_seed)` pair reproduces the run exactly.
    pub fn seeds(&self) -> (u64, u64) {
        (self.config.seed, self.fault_plan.seed)
    }
}

/// Everything a scenario run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Name of the scenario.
    pub name: String,
    /// The seeds the run used (quote these to reproduce a failure).
    pub seeds: (u64, u64),
    /// The final session report.
    pub report: SessionReport,
    /// The frame-by-frame telemetry trace.
    pub trace: TelemetryTrace,
    /// First violation of each invariant that failed, in frame order.
    pub violations: Vec<InvariantViolation>,
}

impl ScenarioOutcome {
    /// Whether every invariant held for the whole run.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs a scenario to completion: builds the simulator, installs the fault
/// plan, then interleaves frame execution with trace recording and the
/// standard invariant battery.
///
/// # Errors
///
/// Returns the first hard error raised by a module or the backbone (invariant
/// violations are *recorded*, not raised).
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioOutcome, CbError> {
    run_scenario_with(spec, standard_invariants())
}

/// Like [`run_scenario`] but with a caller-supplied invariant battery.
///
/// # Errors
///
/// Returns the first hard error raised by a module or the backbone.
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    mut invariants: Vec<Box<dyn Invariant>>,
) -> Result<ScenarioOutcome, CbError> {
    let mut simulator = CraneSimulator::new(spec.config)?;
    simulator.set_fault_plan(spec.fault_plan.clone());

    let mut trace = TelemetryTrace::new();
    let mut violations: Vec<InvariantViolation> = Vec::new();
    // Each invariant reports at most its first violation; afterwards it is
    // retired so a persistent failure does not flood the outcome.
    let mut fired = vec![false; invariants.len()];

    for _ in 0..spec.frames {
        let record = simulator.step_frame()?;
        let snapshot = simulator.snapshot();
        let lan = simulator.cluster().lan_stats();
        trace.record(FrameDigest::capture(record.frame, record.now, &snapshot, &lan));

        let ctx = FrameContext { frame: record.frame, simulator: &simulator, snapshot: &snapshot };
        for (invariant, fired) in invariants.iter_mut().zip(fired.iter_mut()) {
            if *fired {
                continue;
            }
            if let Err(detail) = invariant.check(&ctx) {
                *fired = true;
                violations.push(InvariantViolation {
                    frame: record.frame,
                    invariant: invariant.name(),
                    detail,
                });
            }
        }
    }

    Ok(ScenarioOutcome {
        name: spec.name.clone(),
        seeds: spec.seeds(),
        report: simulator.report(),
        trace,
        violations,
    })
}

/// Runs the scenario twice and returns the outcomes plus the first frame at
/// which their traces diverge (`None` proves determinism).
///
/// # Errors
///
/// Returns the first hard error raised by either run.
pub fn replay_check(
    spec: &ScenarioSpec,
) -> Result<(ScenarioOutcome, ScenarioOutcome, Option<u64>), CbError> {
    let first = run_scenario(spec)?;
    let second = run_scenario(spec)?;
    let divergence = first.trace.first_divergence(&second.trace);
    Ok((first, second, divergence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crane_sim::OperatorKind;

    fn tiny_config(seed: u64) -> SimulatorConfig {
        SimulatorConfig {
            operator: OperatorKind::Idle,
            display_width: 64,
            display_height: 48,
            exam_frames: 0,
            seed,
            ..SimulatorConfig::default()
        }
    }

    #[test]
    fn outcome_carries_trace_report_and_seeds() {
        let spec = ScenarioSpec::new("t", tiny_config(11), 25)
            .with_fault_plan(FaultPlan::seeded(5).with_drop_probability(0.02));
        let outcome = run_scenario(&spec).unwrap();
        assert_eq!(outcome.trace.len(), 25);
        assert_eq!(outcome.report.frames_run, 25);
        assert_eq!(outcome.seeds, (11, 5));
        assert!(outcome.passed(), "{:?}", outcome.violations);
    }

    #[test]
    fn replay_check_proves_determinism() {
        let spec = ScenarioSpec::new("replay", tiny_config(29), 30)
            .with_fault_plan(FaultPlan::seeded(13).with_drop_probability(0.05));
        let (first, second, divergence) = replay_check(&spec).unwrap();
        assert_eq!(divergence, None);
        assert_eq!(first.report, second.report);
        assert_eq!(first.trace.fingerprint(), second.trace.fingerprint());
    }

    #[test]
    fn different_fault_seeds_diverge() {
        let spec_a = ScenarioSpec::new("a", tiny_config(1), 30)
            .with_fault_plan(FaultPlan::seeded(1).with_drop_probability(0.05));
        let spec_b = ScenarioSpec::new("b", tiny_config(1), 30)
            .with_fault_plan(FaultPlan::seeded(2).with_drop_probability(0.05));
        let a = run_scenario(&spec_a).unwrap();
        let b = run_scenario(&spec_b).unwrap();
        assert!(a.trace.first_divergence(&b.trace).is_some());
        assert_ne!(a.trace.fingerprint(), b.trace.fingerprint());
    }

    #[test]
    fn a_custom_invariant_can_fail_and_is_reported_once() {
        struct AlwaysFails;
        impl Invariant for AlwaysFails {
            fn name(&self) -> &'static str {
                "always-fails"
            }
            fn check(&mut self, _ctx: &FrameContext<'_>) -> Result<(), String> {
                Err("synthetic".to_owned())
            }
        }
        let spec = ScenarioSpec::new("fail", tiny_config(3), 10);
        let outcome = run_scenario_with(&spec, vec![Box::new(AlwaysFails)]).unwrap();
        assert_eq!(outcome.violations.len(), 1, "a persistent violation must not flood");
        assert_eq!(outcome.violations[0].invariant, "always-fails");
        assert_eq!(outcome.violations[0].frame, 0);
        assert!(!outcome.passed());
    }
}
