//! Runs the cluster scenario matrix and writes `SCENARIOS_cod.json`.
//!
//! ```text
//! cargo run --release -p cod-testkit --bin scenario_matrix            # full sweep
//! cargo run --release -p cod-testkit --bin scenario_matrix -- --quick # CI smoke
//! ```
//!
//! Options: `--quick` (reduced sweep, fixed seeds), `--seed <n>` (base seed),
//! `--out <path>` (summary path, default `SCENARIOS_cod.json`). Exits non-zero
//! if any scenario violates an invariant; each row prints the `(sim_seed,
//! fault_seed)` pair that reproduces it.

use cod_testkit::{run_matrix, scenario_specs, MatrixConfig};

fn main() {
    let mut config = MatrixConfig::full();
    let mut out_path = String::from("SCENARIOS_cod.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: scenario_matrix [--quick] [--seed <n>] [--out <path>]\n\
                     \n\
                     Runs the cluster scenario matrix (operator x GPU x fault plan x size)\n\
                     under the invariant battery and writes a machine-readable summary.\n\
                     \n\
                     --quick       reduced sweep with fixed seeds (the CI smoke run)\n\
                     --seed <n>    base seed mixed into every scenario (default 3085)\n\
                     --out <path>  summary path (default SCENARIOS_cod.json)\n\
                     \n\
                     Exits non-zero if any scenario violates an invariant."
                );
                return;
            }
            "--quick" => {
                // Only flip the sweep mode: an explicit --seed survives in
                // either argument order.
                config.quick = true;
                config.frames = MatrixConfig::quick().frames;
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer argument"));
            }
            "--out" => {
                i += 1;
                out_path =
                    args.get(i).cloned().unwrap_or_else(|| die("--out needs a path argument"));
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    let specs = scenario_specs(&config);
    println!(
        "scenario matrix: {} scenarios x {} frames ({} mode, base seed {:#x})",
        specs.len(),
        config.frames,
        if config.quick { "quick" } else { "full" },
        config.seed
    );

    let summary = match run_matrix(&config) {
        Ok(summary) => summary,
        Err(err) => die(&format!("scenario run failed hard: {err}")),
    };

    println!("{}", summary.render_table());
    let (sim_seed, fault_seed) = summary.results.first().map(|r| r.seeds).unwrap_or((0, 0));
    println!(
        "reproduce any row: sim seed {sim_seed:#x}, fault seed {fault_seed:#x} (see README 'Testing')"
    );

    if let Err(err) = std::fs::write(&out_path, summary.to_json().to_pretty()) {
        die(&format!("cannot write {out_path}: {err}"));
    }
    println!("wrote {out_path}");

    if !summary.all_passed() {
        eprintln!("FAILED scenarios: {:?}", summary.failures());
        std::process::exit(1);
    }
    println!("all scenarios passed every invariant");
}

fn die(msg: &str) -> ! {
    eprintln!("scenario_matrix: {msg}");
    std::process::exit(2);
}
