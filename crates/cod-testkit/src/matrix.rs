//! The scenario matrix: operator kind x GPU generation x LAN fault plan x
//! cluster size, each cell run through the invariant-checked harness.
//!
//! The sweep is the regression net for every future scale/perf PR: it proves
//! the whole cluster still initializes, keeps lock-step, stays within score
//! bounds and starves nothing, under every fault plan of [`crate::plans`].
//! Results are written as machine-readable JSON (`SCENARIOS_cod.json`) in the
//! same spirit as the benchmark layer's `BENCH_cod.json`.

use cod_cb::CbError;
use cod_json::Json;
use crane_sim::{GpuGeneration, OperatorKind, SimulatorConfig};

use crate::harness::{run_scenario, ScenarioOutcome, ScenarioSpec};
use crate::plans::{self, NamedPlan};

/// Configuration of a matrix sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixConfig {
    /// Reduced sweep for CI smoke runs.
    pub quick: bool,
    /// Base seed mixed into every scenario's simulation and fault seeds.
    pub seed: u64,
    /// Frames per scenario.
    pub frames: usize,
}

impl MatrixConfig {
    /// The full sweep (72 scenarios).
    pub fn full() -> MatrixConfig {
        MatrixConfig { quick: false, seed: 0xC0D, frames: 240 }
    }

    /// The `--quick` sweep (6 scenarios, fixed seeds) run by CI.
    pub fn quick() -> MatrixConfig {
        MatrixConfig { quick: true, seed: 0xC0D, frames: 150 }
    }
}

fn operator_name(kind: OperatorKind) -> &'static str {
    match kind {
        OperatorKind::Exam => "exam",
        OperatorKind::Idle => "idle",
        OperatorKind::Reckless => "reckless",
    }
}

fn gpu_name(gpu: GpuGeneration) -> &'static str {
    match gpu {
        GpuGeneration::Tnt2 => "tnt2",
        GpuGeneration::NextGeneration => "nextgen",
    }
}

/// Builds the scenario list for a sweep configuration.
pub fn scenario_specs(config: &MatrixConfig) -> Vec<ScenarioSpec> {
    let (operators, gpus, channel_counts): (&[OperatorKind], &[GpuGeneration], &[usize]) =
        if config.quick {
            (&[OperatorKind::Exam, OperatorKind::Reckless], &[GpuGeneration::Tnt2], &[3])
        } else {
            (
                &[OperatorKind::Idle, OperatorKind::Exam, OperatorKind::Reckless],
                &[GpuGeneration::Tnt2, GpuGeneration::NextGeneration],
                &[2, 3],
            )
        };

    let mut specs = Vec::new();
    for operator in operators {
        for gpu in gpus {
            for channels in channel_counts {
                let plans =
                    if config.quick { plans::quick(config.seed) } else { plans::all(config.seed) };
                for NamedPlan { name, plan } in plans {
                    let sim_config = SimulatorConfig {
                        operator: *operator,
                        gpu: *gpu,
                        display_channels: *channels,
                        display_width: 64,
                        display_height: 48,
                        exam_frames: config.frames,
                        seed: config.seed ^ 0x0C0D_CAFE,
                        ..SimulatorConfig::default()
                    };
                    let id = format!(
                        "{}-{}-c{}-{}",
                        operator_name(*operator),
                        gpu_name(*gpu),
                        channels,
                        name
                    );
                    specs.push(
                        ScenarioSpec::new(&id, sim_config, config.frames).with_fault_plan(plan),
                    );
                }
            }
        }
    }
    specs
}

/// One row of the matrix summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario id (`<operator>-<gpu>-c<channels>-<plan>`).
    pub name: String,
    /// The `(sim_seed, fault_seed)` pair that reproduces the run.
    pub seeds: (u64, u64),
    /// Whether every invariant held.
    pub passed: bool,
    /// First violation, if any.
    pub first_violation: Option<String>,
    /// Frames executed.
    pub frames_run: u64,
    /// Final exam score.
    pub score: f64,
    /// Synchronized surround-view frame rate.
    pub synchronized_fps: f64,
    /// Fraction of datagram deliveries lost (loss model plus faults).
    pub drop_ratio: f64,
    /// Fingerprint of the telemetry trace (hex), for replay comparison.
    pub trace_fingerprint: u64,
}

impl ScenarioResult {
    fn from_outcome(outcome: &ScenarioOutcome) -> ScenarioResult {
        ScenarioResult {
            name: outcome.name.clone(),
            seeds: outcome.seeds,
            passed: outcome.passed(),
            first_violation: outcome.violations.first().map(ToString::to_string),
            frames_run: outcome.report.frames_run,
            score: outcome.report.score,
            synchronized_fps: outcome.report.synchronized_fps,
            drop_ratio: outcome.report.lan.drop_ratio(),
            trace_fingerprint: outcome.trace.fingerprint(),
        }
    }
}

/// The machine-readable result of a whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSummary {
    /// The sweep configuration.
    pub config: MatrixConfig,
    /// One row per scenario, in sweep order.
    pub results: Vec<ScenarioResult>,
}

impl MatrixSummary {
    /// Whether every scenario passed every invariant.
    pub fn all_passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }

    /// The failing scenario names.
    pub fn failures(&self) -> Vec<&str> {
        self.results.iter().filter(|r| !r.passed).map(|r| r.name.as_str()).collect()
    }

    /// Serializes to the `SCENARIOS_cod.json` schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_owned(), Json::Str("cod-scenarios-v1".to_owned())),
            ("quick".to_owned(), Json::Bool(self.config.quick)),
            // Seeds are full u64s, which f64 JSON numbers cannot carry exactly
            // above 2^53 — serialized as hex strings like the fingerprints.
            ("seed".to_owned(), Json::Str(format!("{:#x}", self.config.seed))),
            ("frames_per_scenario".to_owned(), Json::Num(self.config.frames as f64)),
            ("all_passed".to_owned(), Json::Bool(self.all_passed())),
            (
                "scenarios".to_owned(),
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            let mut members = vec![
                                ("name".to_owned(), Json::Str(r.name.clone())),
                                ("sim_seed".to_owned(), Json::Str(format!("{:#x}", r.seeds.0))),
                                ("fault_seed".to_owned(), Json::Str(format!("{:#x}", r.seeds.1))),
                                ("passed".to_owned(), Json::Bool(r.passed)),
                                ("frames_run".to_owned(), Json::Num(r.frames_run as f64)),
                                ("score".to_owned(), Json::Num(r.score)),
                                ("synchronized_fps".to_owned(), Json::Num(r.synchronized_fps)),
                                ("drop_ratio".to_owned(), Json::Num(r.drop_ratio)),
                                (
                                    "trace_fingerprint".to_owned(),
                                    Json::Str(format!("{:016x}", r.trace_fingerprint)),
                                ),
                            ];
                            if let Some(violation) = &r.first_violation {
                                members.push((
                                    "first_violation".to_owned(),
                                    Json::Str(violation.clone()),
                                ));
                            }
                            Json::Obj(members)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "  scenario                     | ok | frames |  score | sync fps | drop % | trace\n",
        );
        out.push_str(
            "  -----------------------------+----+--------+--------+----------+--------+-----------------\n",
        );
        for r in &self.results {
            out.push_str(&format!(
                "  {:<28} | {}  | {:>6} | {:>6.1} | {:>8.1} | {:>6.2} | {:016x}\n",
                r.name,
                if r.passed { "y" } else { "N" },
                r.frames_run,
                r.score,
                r.synchronized_fps,
                r.drop_ratio * 100.0,
                r.trace_fingerprint,
            ));
        }
        out
    }
}

/// Runs the whole sweep.
///
/// # Errors
///
/// Returns the first hard error raised by any scenario (invariant violations
/// are recorded in the summary, not raised).
pub fn run_matrix(config: &MatrixConfig) -> Result<MatrixSummary, CbError> {
    let mut results = Vec::new();
    for spec in scenario_specs(config) {
        let outcome = run_scenario(&spec)?;
        results.push(ScenarioResult::from_outcome(&outcome));
    }
    Ok(MatrixSummary { config: *config, results })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes_match_the_documented_matrix() {
        // Quick: 2 operators x 1 gpu x 1 size x 3 plans.
        assert_eq!(scenario_specs(&MatrixConfig::quick()).len(), 6);
        // Full: 3 operators x 2 gpus x 2 sizes x 6 plans.
        assert_eq!(scenario_specs(&MatrixConfig::full()).len(), 72);
    }

    #[test]
    fn scenario_names_are_unique_and_descriptive() {
        let specs = scenario_specs(&MatrixConfig::full());
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scenario names");
        assert!(specs.iter().any(|s| s.name == "exam-tnt2-c3-loss5"));
    }

    #[test]
    fn summary_json_round_trips_through_the_bench_parser() {
        let summary = MatrixSummary {
            config: MatrixConfig::quick(),
            results: vec![ScenarioResult {
                name: "exam-tnt2-c3-loss5".to_owned(),
                seeds: (1, 2),
                passed: true,
                first_violation: None,
                frames_run: 150,
                score: 100.0,
                synchronized_fps: 14.4,
                drop_ratio: 0.05,
                trace_fingerprint: 0xdead_beef,
            }],
        };
        let text = summary.to_json().to_pretty();
        let parsed = Json::parse(&text).expect("summary is valid JSON");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some("cod-scenarios-v1"));
        assert_eq!(parsed.get("all_passed").and_then(Json::as_bool), Some(true));
        let rows = parsed.get("scenarios").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("trace_fingerprint").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        // Seeds are hex strings so u64 values above 2^53 survive the artifact.
        assert_eq!(rows[0].get("sim_seed").and_then(Json::as_str), Some("0x1"));
        assert_eq!(rows[0].get("fault_seed").and_then(Json::as_str), Some("0x2"));
    }

    #[test]
    fn seeds_above_f64_precision_survive_serialization() {
        let big = (1u64 << 53) + 1;
        let summary = MatrixSummary {
            config: MatrixConfig { quick: true, seed: big, frames: 1 },
            results: vec![],
        };
        let text = summary.to_json().to_pretty();
        let parsed = Json::parse(&text).unwrap();
        let roundtrip = parsed.get("seed").and_then(Json::as_str).unwrap();
        let value = u64::from_str_radix(roundtrip.trim_start_matches("0x"), 16).unwrap();
        assert_eq!(value, big);
    }
}
