//! Compatibility shim: the canonical LAN fault plans moved to
//! [`cod_net::plans`] so the fleet serving layer can share them without a
//! dependency cycle. Existing `cod_testkit::plans` callers keep working
//! through this re-export.

pub use cod_net::plans::{
    all, baseline, dup_reorder, heavy_loss, latency_spike, light_loss, partition_blip, quick,
    NamedPlan,
};
