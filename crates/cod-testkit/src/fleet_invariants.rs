//! Fleet-level invariant checkers, mirroring the per-frame battery of
//! [`crate::invariants`] one level up: whatever the workload does, the
//! serving layer must conserve sessions (preemptions and migrations
//! re-accounted), respect shard capacity, respect priority order, starve
//! nobody, and replay bit-exactly from its seed.

use std::collections::BTreeMap;

use cod_cb::CbError;
use cod_fleet::{
    initial_tier, run_fleet, ExecutionMode, FleetConfig, FleetOutcome, FleetReport, Priority,
    SessionShape, SteppingMode,
};
use crane_sim::{
    step_frames_batch, CraneSimulator, FidelityTier, SimulatorConfig, SCORE_DRIFT_TOLERANCE,
};

use crate::matrix::{scenario_specs, MatrixConfig};

/// Checks every fleet-level safety property on a drained outcome; returns a
/// description of each violated property (empty ⇒ all held).
pub fn check_fleet_outcome(outcome: &FleetOutcome) -> Vec<String> {
    let mut violations = Vec::new();

    // Conservation: after drain no session may be pending or resident, so
    // every offered arrival is either completed or rejected, and the
    // completion list matches the ledger. Preempted sessions were re-placed
    // and re-counted in `admitted`, so the placement ledger closes as
    // admitted = completed + preempted.
    if outcome.offered != outcome.completed + outcome.rejected {
        violations.push(format!(
            "conservation: offered {} != completed {} + rejected {}",
            outcome.offered, outcome.completed, outcome.rejected
        ));
    }
    if outcome.sessions.len() as u64 != outcome.completed {
        violations.push(format!(
            "conservation: {} session outcomes vs {} completions",
            outcome.sessions.len(),
            outcome.completed
        ));
    }
    if outcome.admitted != outcome.completed + outcome.preempted {
        violations.push(format!(
            "drain: admitted {} != completed {} + preempted {} (a session is still resident)",
            outcome.admitted, outcome.completed, outcome.preempted
        ));
    }
    // Preemption/migration conservation: the fleet totals must equal the
    // per-session counters, both ways of counting the same events.
    let session_preemptions: u64 = outcome.sessions.iter().map(|s| u64::from(s.preempted)).sum();
    if session_preemptions != outcome.preempted {
        violations.push(format!(
            "preemption ledger: per-session preemptions {} != fleet total {}",
            session_preemptions, outcome.preempted
        ));
    }
    let session_migrations: u64 = outcome.sessions.iter().map(|s| u64::from(s.migrated)).sum();
    if session_migrations != outcome.migrated {
        violations.push(format!(
            "migration ledger: per-session migrations {} != fleet total {}",
            session_migrations, outcome.migrated
        ));
    }
    let shard_preempted: u64 = outcome.shard_stats.iter().map(|s| s.preempted_out).sum();
    if shard_preempted != outcome.preempted {
        violations.push(format!(
            "preemption ledger: shard extractions {} != fleet total {}",
            shard_preempted, outcome.preempted
        ));
    }
    let migrated_out: u64 = outcome.shard_stats.iter().map(|s| s.migrated_out).sum();
    let migrated_in: u64 = outcome.shard_stats.iter().map(|s| s.migrated_in).sum();
    if migrated_out != outcome.migrated || migrated_in != outcome.migrated {
        violations.push(format!(
            "migration ledger: {migrated_out} out / {migrated_in} in vs fleet total {}",
            outcome.migrated
        ));
    }
    // Retier ledger: promotions and demotions are counted three ways — per
    // session, per shard, and as fleet totals — and all three must agree.
    let session_promotions: u64 = outcome.sessions.iter().map(|s| u64::from(s.promoted)).sum();
    let session_demotions: u64 = outcome.sessions.iter().map(|s| u64::from(s.demoted)).sum();
    let shard_promotions: u64 = outcome.shard_stats.iter().map(|s| s.promoted).sum();
    let shard_demotions: u64 = outcome.shard_stats.iter().map(|s| s.demoted).sum();
    if session_promotions != outcome.promoted || shard_promotions != outcome.promoted {
        violations.push(format!(
            "retier ledger: per-session promotions {session_promotions} / shard promotions \
             {shard_promotions} vs fleet total {}",
            outcome.promoted
        ));
    }
    if session_demotions != outcome.demoted || shard_demotions != outcome.demoted {
        violations.push(format!(
            "retier ledger: per-session demotions {session_demotions} / shard demotions \
             {shard_demotions} vs fleet total {}",
            outcome.demoted
        ));
    }
    if !outcome.config.tiering && outcome.promoted + outcome.demoted > 0 {
        violations.push(format!(
            "retier ledger: {} promotions / {} demotions with tiering off",
            outcome.promoted, outcome.demoted
        ));
    }
    // Tier policy: an Interactive session never leaves the full rack, and a
    // Batch session (admitted Coarse) is never promoted above its home tier.
    for s in &outcome.sessions {
        if s.priority == Priority::Interactive
            && (s.tier != FidelityTier::Full || s.promoted + s.demoted > 0)
        {
            violations.push(format!(
                "tier policy: interactive session {} finished {:?} with {} promotions / {} \
                 demotions",
                s.id, s.tier, s.promoted, s.demoted
            ));
        }
        if initial_tier(s.priority) == FidelityTier::Coarse && s.promoted > 0 {
            violations.push(format!(
                "tier policy: {:?} session {} was promoted above its Coarse home tier",
                s.priority, s.id
            ));
        }
    }

    // Capacity: no shard may ever have hosted more sessions than it has
    // slots, and nothing may have been rejected while a slot was free.
    for (i, stats) in outcome.shard_stats.iter().enumerate() {
        if stats.peak_residents > outcome.config.shard.slots {
            violations.push(format!(
                "capacity: shard {i} peaked at {} residents, capacity {}",
                stats.peak_residents, outcome.config.shard.slots
            ));
        }
    }
    if outcome.rejected_with_free_slot > 0 {
        violations.push(format!(
            "backpressure: {} arrivals rejected while a slot was free",
            outcome.rejected_with_free_slot
        ));
    }
    if outcome.peak_pending > outcome.config.max_pending {
        violations.push(format!(
            "backpressure: queue peaked at {} over the bound {}",
            outcome.peak_pending, outcome.config.max_pending
        ));
    }

    // Priority ordering: a more urgent session never waits in the queue
    // while a less urgent one is placed. Witness from the outcomes: session
    // `a` (more urgent) already arrived strictly before `b`'s first
    // placement, yet was itself first placed only after it — the driver
    // would have had to pop `a` first.
    for a in &outcome.sessions {
        for b in &outcome.sessions {
            if a.priority > b.priority
                && a.arrived_tick < b.admitted_tick
                && a.admitted_tick > b.admitted_tick
            {
                violations.push(format!(
                    "priority: {:?} session {} (arrived t{}, admitted t{}) waited while {:?} \
                     session {} was placed at t{}",
                    a.priority,
                    a.id,
                    a.arrived_tick,
                    a.admitted_tick,
                    b.priority,
                    b.id,
                    b.admitted_tick
                ));
            }
        }
    }

    // No starvation: a session can wait in the queue at most as long as the
    // whole population ahead of it takes to drain through the fleet —
    // bounded by the queue depth plus total slots, times the longest
    // session's tick count. Every preemption can send a session back for
    // another round of the same wait.
    let ticks_per_session = outcome
        .sessions
        .iter()
        .map(|s| (s.frames as u64).div_ceil(outcome.config.shard.batch_frames as u64) + 1)
        .max()
        .unwrap_or(1);
    let ahead =
        (outcome.config.max_pending + outcome.config.shards * outcome.config.shard.slots) as u64;
    let wait_bound = ahead * ticks_per_session;
    for s in &outcome.sessions {
        let waited = s.admitted_tick - s.arrived_tick;
        if waited > wait_bound {
            violations.push(format!(
                "starvation: session {} ({}) queued for {waited} ticks (bound {wait_bound})",
                s.id, s.name
            ));
        }
        let running = s.completed_tick - s.admitted_tick;
        let run_bound =
            ticks_per_session + u64::from(s.preempted) * (wait_bound + ticks_per_session);
        if running > run_bound {
            violations.push(format!(
                "starvation: session {} ({}) took {running} ticks after first placement \
                 (bound {run_bound}, preempted {}x)",
                s.id, s.name, s.preempted
            ));
        }
    }

    violations
}

/// Runs the fleet twice from the same configuration and returns both reports
/// plus the first difference between their serialized forms (`None` proves
/// the run replays byte for byte).
///
/// # Errors
///
/// Returns the first hard error raised by either run.
pub fn fleet_replay_check(
    config: &FleetConfig,
) -> Result<(FleetReport, FleetReport, Option<usize>), CbError> {
    let first = FleetReport::from_outcome(&run_fleet(config)?);
    let second = FleetReport::from_outcome(&run_fleet(config)?);
    let a = first.to_json().to_pretty();
    let b = second.to_json().to_pretty();
    let divergence = if a == b {
        None
    } else {
        Some(a.bytes().zip(b.bytes()).position(|(x, y)| x != y).unwrap_or(a.len().min(b.len())))
    };
    Ok((first, second, divergence))
}

/// Proves wall-clock equivalence: the same configuration served under
/// [`ExecutionMode::Modeled`] and under [`ExecutionMode::WallClock`] at each
/// requested thread count must serialize to byte-identical reports — thread
/// scheduling may decide who steps a shard, never what the fleet computes.
/// Returns the modeled report plus, per thread count, the first byte where
/// that run's report diverged (`None` everywhere proves equivalence).
///
/// # Errors
///
/// Returns the first hard error raised by any run.
pub fn wallclock_equivalence_check(
    config: &FleetConfig,
    thread_counts: &[usize],
) -> Result<(FleetReport, Vec<(usize, Option<usize>)>), CbError> {
    let mut modeled_config = config.clone();
    modeled_config.execution = ExecutionMode::Modeled;
    let modeled = FleetReport::from_outcome(&run_fleet(&modeled_config)?);
    let reference = modeled.to_json().to_pretty();
    let mut divergences = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let mut pooled_config = config.clone();
        pooled_config.execution = ExecutionMode::WallClock { threads };
        let report = FleetReport::from_outcome(&run_fleet(&pooled_config)?);
        let bytes = report.to_json().to_pretty();
        let divergence = if bytes == reference {
            None
        } else {
            Some(
                reference
                    .bytes()
                    .zip(bytes.bytes())
                    .position(|(x, y)| x != y)
                    .unwrap_or(reference.len().min(bytes.len())),
            )
        };
        divergences.push((threads, divergence));
    }
    Ok((modeled, divergences))
}

/// Proves observability equivalence: the same configuration with the
/// deterministic sink armed ([`cod_fleet::ObsConfig::Deterministic`]) must
/// drain byte-identical `OBS_cod.json` bytes under [`ExecutionMode::Modeled`],
/// [`ExecutionMode::ThreadPerShard`] and [`ExecutionMode::WallClock`] at each
/// requested thread count — the sink records modeled time and seeded
/// identifiers only, so who stepped the shards must be invisible in it.
/// Returns the modeled run's report bytes plus, per mode label, the first
/// byte where that run's report diverged (`None` everywhere proves
/// equivalence).
///
/// # Errors
///
/// Returns the first hard error raised by any run.
pub fn obs_equivalence_check(
    config: &FleetConfig,
    thread_counts: &[usize],
) -> Result<(String, Vec<(String, Option<usize>)>), CbError> {
    let obs_bytes = |execution: ExecutionMode| -> Result<String, CbError> {
        let mut traced = config.clone();
        traced.execution = execution;
        traced.obs = cod_fleet::ObsConfig::Deterministic;
        let (_, _, artifacts) = cod_fleet::run_fleet_traced(&traced)?;
        let det = artifacts.det.expect("the deterministic sink was armed");
        Ok(det.to_report_json(traced.workload.seed).to_pretty())
    };
    let reference = obs_bytes(ExecutionMode::Modeled)?;
    let mut modes = vec![("thread-per-shard".to_owned(), ExecutionMode::ThreadPerShard)];
    for &threads in thread_counts {
        modes.push((format!("wallclock-{threads}"), ExecutionMode::WallClock { threads }));
    }
    let mut divergences = Vec::with_capacity(modes.len());
    for (label, execution) in modes {
        let bytes = obs_bytes(execution)?;
        let divergence = if bytes == reference {
            None
        } else {
            Some(
                reference
                    .bytes()
                    .zip(bytes.bytes())
                    .position(|(x, y)| x != y)
                    .unwrap_or(reference.len().min(bytes.len())),
            )
        };
        divergences.push((label, divergence));
    }
    Ok((reference, divergences))
}

/// Proves batched-stepping equivalence: the same configuration served with
/// [`SteppingMode::Scalar`] (the reference hot loop, modeled execution) and
/// with [`SteppingMode::Batched`] under [`ExecutionMode::Modeled`] and
/// [`ExecutionMode::WallClock`] at each requested thread count must produce
/// byte-identical serialized reports **and** identical per-session telemetry
/// digests — grouping same-shape residents into lockstep cohorts may change
/// how fast sessions are served, never what they compute. Returns the scalar
/// reference report plus a description of every divergence (empty ⇒
/// equivalent).
///
/// # Errors
///
/// Returns the first hard error raised by any run.
pub fn batch_equivalence_check(
    config: &FleetConfig,
    thread_counts: &[usize],
) -> Result<(FleetReport, Vec<String>), CbError> {
    let mut scalar_config = config.clone();
    scalar_config.shard.stepping = SteppingMode::Scalar;
    scalar_config.execution = ExecutionMode::Modeled;
    let scalar_outcome = run_fleet(&scalar_config)?;
    let reference = FleetReport::from_outcome(&scalar_outcome);
    let reference_bytes = reference.to_json().to_pretty();
    let reference_telemetry: BTreeMap<u64, u64> =
        scalar_outcome.sessions.iter().map(|s| (s.id, s.telemetry)).collect();

    let mut modes = vec![("modeled".to_owned(), ExecutionMode::Modeled)];
    for &threads in thread_counts {
        modes.push((format!("wallclock-{threads}"), ExecutionMode::WallClock { threads }));
    }

    let mut violations = Vec::new();
    for (label, execution) in modes {
        let mut batched_config = config.clone();
        batched_config.shard.stepping = SteppingMode::Batched;
        batched_config.execution = execution;
        let outcome = run_fleet(&batched_config)?;
        let telemetry: BTreeMap<u64, u64> =
            outcome.sessions.iter().map(|s| (s.id, s.telemetry)).collect();
        if telemetry != reference_telemetry {
            violations.push(format!(
                "batched ({label}): per-session telemetry digests diverged from scalar"
            ));
        }
        let bytes = FleetReport::from_outcome(&outcome).to_json().to_pretty();
        if bytes != reference_bytes {
            let at = reference_bytes
                .bytes()
                .zip(bytes.bytes())
                .position(|(x, y)| x != y)
                .unwrap_or(reference_bytes.len().min(bytes.len()));
            violations.push(format!(
                "batched ({label}): serialized report diverged from scalar at byte {at}"
            ));
        }
    }
    Ok((reference, violations))
}

/// Proves batched-stepping equivalence across every [`SessionShape`] of the
/// scenario matrix: each distinct shape the sweep exercises (deduplicated —
/// fault plans do not change a shape) gets a small same-shape cohort of
/// divergent seeds run both scalar (one [`CraneSimulator::step_frame`] loop
/// per session) and batched ([`step_frames_batch`] lockstep), and every
/// member's telemetry digest must match bit for bit. Returns a description of
/// every divergence (empty ⇒ equivalent).
///
/// # Errors
///
/// Returns the first hard error raised by any simulator.
pub fn batch_shape_coverage_check(
    matrix: &MatrixConfig,
    cohort: usize,
    frames: usize,
) -> Result<Vec<String>, CbError> {
    let mut shapes: BTreeMap<SessionShape, SimulatorConfig> = BTreeMap::new();
    for spec in scenario_specs(matrix) {
        let mut config = spec.config.clone();
        config.exam_frames = frames;
        shapes.entry(SessionShape::of(&config)).or_insert(config);
    }

    let mut violations = Vec::new();
    for (index, base) in shapes.values().enumerate() {
        let cohort_config = |k: usize| {
            let mut config = base.clone();
            config.seed ^= (k as u64) * 0x9E37_79B9;
            config
        };
        // Scalar reference: each member stepped alone, frame by frame.
        let mut scalar_digests = Vec::with_capacity(cohort);
        for k in 0..cohort {
            let mut sim = CraneSimulator::new(cohort_config(k))?;
            for _ in 0..frames {
                sim.step_frame()?;
            }
            scalar_digests.push(sim.telemetry_digest());
        }
        // Batched run: the same cohort advanced in lockstep.
        let mut sims = (0..cohort)
            .map(|k| CraneSimulator::new(cohort_config(k)))
            .collect::<Result<Vec<_>, _>>()?;
        let mut batch: Vec<(&mut CraneSimulator, usize)> =
            sims.iter_mut().map(|sim| (sim, frames)).collect();
        step_frames_batch(&mut batch)?;
        for (k, (sim, scalar)) in sims.iter().zip(&scalar_digests).enumerate() {
            if sim.telemetry_digest() != *scalar {
                violations.push(format!(
                    "matrix shape {index}: cohort member {k} diverged from its scalar twin \
                     (operator {:?}, gpu {:?}, {} channels)",
                    base.operator, base.gpu, base.display_channels
                ));
            }
        }
    }
    Ok(violations)
}

/// Proves migration transparency: the same workload served with live
/// migration on and off must produce identical physics for every session —
/// same score, same verdict, same frame count. (Modeled *costs* legitimately
/// differ: a migrated session is charged on a different machine.) Returns
/// the migrating outcome plus any per-session divergence.
///
/// # Errors
///
/// Returns the first hard error raised by either run.
pub fn migration_transparency_check(
    config: &FleetConfig,
) -> Result<(FleetOutcome, Vec<String>), CbError> {
    let mut pinned_config = config.clone();
    pinned_config.migration = false;
    let pinned = run_fleet(&pinned_config)?;
    let mut migrating_config = config.clone();
    migrating_config.migration = true;
    let migrating = run_fleet(&migrating_config)?;

    let mut violations = Vec::new();
    if pinned.completed != migrating.completed {
        violations.push(format!(
            "migration changed the completion count: {} vs {}",
            pinned.completed, migrating.completed
        ));
    }
    for s in &migrating.sessions {
        let Some(twin) = pinned.sessions.iter().find(|p| p.id == s.id) else {
            violations.push(format!("session {} completed only under migration", s.id));
            continue;
        };
        if twin.score != s.score || twin.passed != s.passed || twin.frames != s.frames {
            violations.push(format!(
                "session {} diverged under migration: score {} vs {}, passed {} vs {}, frames \
                 {} vs {}",
                s.id, twin.score, s.score, twin.passed, s.passed, twin.frames, s.frames
            ));
        }
    }
    Ok((migrating, violations))
}

/// Proves fidelity-tiering transparency: the same workload served all-Full
/// and with live tiering must complete the *same* sessions (tick-granularity
/// dynamics are tier-independent), any session finishing on the Full tier
/// must be bit-identical to its all-Full twin (its last rebuild replayed
/// every frame on the full rack), and a session finishing Coarse may drift
/// only within [`SCORE_DRIFT_TOLERANCE`]. Returns the tiered outcome plus
/// any per-session divergence.
///
/// # Errors
///
/// Returns the first hard error raised by either run.
pub fn tier_transparency_check(
    config: &FleetConfig,
) -> Result<(FleetOutcome, Vec<String>), CbError> {
    let mut full_config = config.clone();
    full_config.tiering = false;
    let full = run_fleet(&full_config)?;
    let mut tiered_config = config.clone();
    tiered_config.tiering = true;
    let tiered = run_fleet(&tiered_config)?;

    let mut violations = Vec::new();
    if full.completed != tiered.completed || full.rejected != tiered.rejected {
        violations.push(format!(
            "tiering changed the admission outcome: {} completed / {} rejected vs {} / {}",
            tiered.completed, tiered.rejected, full.completed, full.rejected
        ));
    }
    for s in &tiered.sessions {
        let Some(twin) = full.sessions.iter().find(|f| f.id == s.id) else {
            violations.push(format!("session {} completed only under tiering", s.id));
            continue;
        };
        if twin.frames != s.frames {
            violations.push(format!(
                "session {} changed length under tiering: {} frames vs {}",
                s.id, s.frames, twin.frames
            ));
        }
        if s.tier == FidelityTier::Full && (twin.score != s.score || twin.passed != s.passed) {
            violations.push(format!(
                "session {} finished Full yet diverged: score {} vs {}, passed {} vs {}",
                s.id, s.score, twin.score, s.passed, twin.passed
            ));
        }
        if (s.score - twin.score).abs() > SCORE_DRIFT_TOLERANCE {
            violations.push(format!(
                "session {} drifted {:.1} points under tiering (tolerance {})",
                s.id,
                (s.score - twin.score).abs(),
                SCORE_DRIFT_TOLERANCE
            ));
        }
    }
    Ok((tiered, violations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_fleet::{PlacementPolicy, Priority, ShardConfig, WorkloadConfig};

    fn small_config(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ShardConfig {
                slots: 2,
                batch_frames: 8,
                pool_per_shape: 1,
                ..ShardConfig::default()
            },
            shard_speeds: Vec::new(),
            placement: PlacementPolicy::SpeedWeighted,
            preemption: false,
            migration: false,
            tiering: false,
            max_pending: 4,
            workload: WorkloadConfig {
                sessions: 8,
                seed,
                base_frames: 16,
                mean_interarrival_ticks: 1,
            },
            execution: ExecutionMode::Modeled,
            obs: Default::default(),
        }
    }

    /// A heterogeneous fleet under pressure: everything on, speeds far
    /// apart, sessions long and arrivals paced so both preemption (an urgent
    /// arrival finding the fleet full) and migration (a free fast slot while
    /// a slow shard still grinds) trigger within 16 sessions.
    fn hetero_config(seed: u64) -> FleetConfig {
        let mut config = small_config(2, seed);
        config.shard_speeds = vec![2.0, 0.5];
        config.preemption = true;
        config.migration = true;
        config.workload.sessions = 16;
        config.workload.base_frames = 32;
        config.workload.mean_interarrival_ticks = 1;
        config.max_pending = 8;
        config
    }

    /// A tiered burst: everything arrives at once so admission pressure
    /// demotes the coarse-eligible residents, then the bounded queue drains
    /// to calm while a Training session is still resident, so at least one
    /// promotion fires too.
    fn tiered_burst_config(seed: u64) -> FleetConfig {
        let mut config = small_config(2, seed);
        config.tiering = true;
        config.workload.sessions = 16;
        config.workload.base_frames = 32;
        config.workload.mean_interarrival_ticks = 0;
        config.max_pending = 4;
        config
    }

    #[test]
    fn a_healthy_fleet_passes_every_invariant() {
        let outcome = run_fleet(&small_config(2, 0xF1EE7)).unwrap();
        let violations = check_fleet_outcome(&outcome);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn a_saturated_fleet_still_passes_every_invariant() {
        let mut config = small_config(1, 0xBEEF);
        config.shard.slots = 1;
        config.max_pending = 1;
        config.workload.mean_interarrival_ticks = 0;
        let outcome = run_fleet(&config).unwrap();
        assert!(outcome.rejected > 0, "saturation must shed load");
        let violations = check_fleet_outcome(&outcome);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn a_preempting_migrating_heterogeneous_fleet_passes_every_invariant() {
        let outcome = run_fleet(&hetero_config(0xC0D)).unwrap();
        assert!(outcome.preempted > 0, "pressure must trigger preemption");
        assert!(outcome.migrated > 0, "the speed gap must trigger migration");
        let violations = check_fleet_outcome(&outcome);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn replay_check_proves_bit_exact_reports() {
        let (first, second, divergence) = fleet_replay_check(&small_config(2, 0xC0D)).unwrap();
        assert_eq!(divergence, None, "fleet replay diverged");
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(first, second);
    }

    #[test]
    fn replay_check_stays_bit_exact_with_preemption_and_migration() {
        let (first, second, divergence) = fleet_replay_check(&hetero_config(0xC0D)).unwrap();
        assert_eq!(divergence, None, "heterogeneous fleet replay diverged");
        assert_eq!(first, second);
        assert!(first.migrated > 0, "the replay gate must cover at least one migration");
        assert!(first.preempted > 0, "the replay gate must cover at least one preemption");
    }

    #[test]
    fn a_tiered_burst_fleet_passes_every_invariant() {
        let outcome = run_fleet(&tiered_burst_config(0xC0D)).unwrap();
        assert!(outcome.demoted > 0, "the burst must trigger live demotion");
        assert!(outcome.promoted > 0, "the calm drain must trigger live promotion");
        let violations = check_fleet_outcome(&outcome);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn replay_check_stays_bit_exact_with_tiering() {
        let (first, second, divergence) = fleet_replay_check(&tiered_burst_config(0xC0D)).unwrap();
        assert_eq!(divergence, None, "tiered fleet replay diverged");
        assert_eq!(first, second);
        assert!(first.demoted > 0, "the replay gate must cover at least one demotion");
        assert!(first.promoted > 0, "the replay gate must cover at least one promotion");
    }

    #[test]
    fn batched_stepping_is_equivalent_on_a_mixed_fleet() {
        // The hardest fleet to keep bit-identical: heterogeneous speeds,
        // preemption and migration all reshuffling cohorts mid-run, replayed
        // scalar vs batched under modeled and pooled execution.
        let (reference, violations) =
            batch_equivalence_check(&hetero_config(0xC0D), &[1, 4]).unwrap();
        assert!(
            reference.preempted > 0 && reference.migrated > 0,
            "the check must stress the fleet"
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn batched_stepping_is_equivalent_on_a_tiered_burst() {
        // Mixed tiers: live demotion puts Coarse and Full residents on the
        // same shard, so batched cohorts split across decimated and full
        // racks.
        let (reference, violations) =
            batch_equivalence_check(&tiered_burst_config(0xC0D), &[2]).unwrap();
        assert!(reference.demoted > 0, "the check must cover mixed tiers");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn batched_stepping_covers_every_matrix_shape() {
        // Every distinct session shape of the full 72-scenario sweep, as a
        // lockstep cohort vs its scalar twins.
        let violations = batch_shape_coverage_check(&MatrixConfig::full(), 2, 10).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn wallclock_equivalence_holds_across_thread_counts() {
        let (modeled, divergences) =
            wallclock_equivalence_check(&hetero_config(0xC0D), &[1, 2, 4]).unwrap();
        assert!(modeled.preempted > 0 && modeled.migrated > 0, "the check must stress the fleet");
        for (threads, divergence) in divergences {
            assert_eq!(divergence, None, "report diverged at byte under {threads} threads");
        }
    }

    #[test]
    fn tiering_is_transparent_to_session_physics() {
        let (tiered, violations) = tier_transparency_check(&tiered_burst_config(0xC0D)).unwrap();
        assert!(tiered.demoted > 0, "the check must exercise a real demotion");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn migration_is_transparent_to_session_physics() {
        let (migrating, violations) = migration_transparency_check(&hetero_config(0xC0D)).unwrap();
        assert!(migrating.migrated > 0, "the check must exercise a real migration");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn different_seeds_produce_different_fingerprints() {
        let (a, _, _) = fleet_replay_check(&small_config(2, 1)).unwrap();
        let (b, _, _) = fleet_replay_check(&small_config(2, 2)).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn doctored_outcomes_are_caught() {
        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        outcome.rejected += 1;
        assert!(!check_fleet_outcome(&outcome).is_empty(), "broken ledger must be flagged");

        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        outcome.rejected_with_free_slot = 1;
        assert!(!check_fleet_outcome(&outcome).is_empty(), "free-slot rejection must be flagged");

        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        outcome.preempted += 1;
        assert!(
            !check_fleet_outcome(&outcome).is_empty(),
            "unaccounted preemption must be flagged"
        );

        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        outcome.migrated += 1;
        assert!(!check_fleet_outcome(&outcome).is_empty(), "unaccounted migration must be flagged");

        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        if let Some(s) = outcome.sessions.first_mut() {
            s.admitted_tick = s.arrived_tick + 10_000;
            s.completed_tick = s.admitted_tick + 1;
        }
        assert!(!check_fleet_outcome(&outcome).is_empty(), "starvation must be flagged");

        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        outcome.promoted += 1;
        assert!(!check_fleet_outcome(&outcome).is_empty(), "unaccounted promotion must be flagged");

        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        outcome.demoted += 1;
        assert!(!check_fleet_outcome(&outcome).is_empty(), "unaccounted demotion must be flagged");

        let mut outcome = run_fleet(&tiered_burst_config(0xC0D)).unwrap();
        let doctored = outcome
            .sessions
            .iter_mut()
            .find(|s| s.priority == Priority::Interactive)
            .expect("the burst workload has interactive sessions");
        doctored.tier = FidelityTier::Coarse;
        assert!(
            check_fleet_outcome(&outcome).iter().any(|v| v.starts_with("tier policy:")),
            "a coarse interactive session must be flagged"
        );
    }

    #[test]
    fn priority_inversions_are_caught() {
        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        assert!(outcome.sessions.len() >= 2, "need two sessions to doctor an inversion");
        // Doctor a textbook inversion: an interactive session that arrived
        // before a batch session's placement, yet was placed after it.
        outcome.sessions[0].priority = Priority::Interactive;
        outcome.sessions[0].arrived_tick = 0;
        outcome.sessions[0].admitted_tick = 9;
        outcome.sessions[0].completed_tick = 12;
        outcome.sessions[1].priority = Priority::Batch;
        outcome.sessions[1].arrived_tick = 1;
        outcome.sessions[1].admitted_tick = 2;
        outcome.sessions[1].completed_tick = 11;
        let violations = check_fleet_outcome(&outcome);
        assert!(
            violations.iter().any(|v| v.starts_with("priority:")),
            "priority inversion must be flagged: {violations:?}"
        );
    }
}
